"""Setuptools packaging for the repro library.

Kept deliberately minimal: the library vendors no build-time machinery and
the only install-time surface beyond the packages themselves is the
``repro-lint`` console script, which exposes the determinism-contract
linter (:mod:`repro.devtools.lint`) to developer shells and CI.
"""

from setuptools import find_packages, setup

setup(
    name="repro-conext-rrc",
    description=(
        "Reproduction of Deng & Balakrishnan, 'Traffic-aware techniques to "
        "reduce 3G/LTE wireless energy consumption' (CoNEXT 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-lint = repro.devtools.lint.cli:main",
        ],
    },
)
