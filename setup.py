"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools predates full
PEP 660 editable-install support (it lets pip fall back to the legacy
``setup.py develop`` code path).
"""

from setuptools import setup

setup()
