#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-reported vs measured, for every artefact.

The benchmark harness (``pytest benchmarks/ --benchmark-only``) prints each
reproduced table and figure; this script runs the same experiment drivers at
a moderate scale, checks the headline numbers against the paper's claims
(:mod:`repro.reporting.claims`) and writes the whole record to
``EXPERIMENTS.md``.

Run it from the repository root::

    python tools/generate_experiments_md.py [--hours 0.75] [--out EXPERIMENTS.md]

It takes a few minutes: the cross-carrier comparison replays every user
trace under six schemes on four carrier profiles.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis.experiments import (
    application_energy_breakdowns,
    application_savings,
    carrier_comparison,
    user_study,
    window_size_sweep,
)
from repro.core import MakeIdlePolicy
from repro.energy.sensitivity import dormancy_cost_sensitivity
from repro.energy.validation import run_validation
from repro.reporting import experiments_report, format_markdown_table
from repro.rrc import CARRIER_ORDER, get_profile
from repro.traces import generate_application_trace, user_trace

SCHEME_LABELS = {
    "fixed_4.5s": "4.5-second",
    "p95_iat": "95% IAT",
    "makeidle": "MakeIdle",
    "oracle": "Oracle",
    "makeidle+makeactive_learn": "MakeIdle+MakeActive (learn)",
    "makeidle+makeactive_fixed": "MakeIdle+MakeActive (fixed)",
}


def figure1_section() -> tuple[str, str, float]:
    """Figure 1: share of energy spent outside data transfer, per application."""
    profile = get_profile("att_hspa")
    breakdowns = application_energy_breakdowns(profile, duration=1800.0, seed=0)
    rows = []
    background_fractions = []
    for app, breakdown in breakdowns.items():
        non_data = breakdown.total_j - breakdown.data_j
        fraction = 100.0 * breakdown.fraction(non_data)
        if app not in ("social", "finance"):  # foreground apps in the paper
            background_fractions.append(fraction)
        rows.append(
            [
                app,
                round(100.0 * breakdown.fraction(breakdown.data_j), 1),
                round(100.0 * breakdown.fraction(breakdown.active_tail_j), 1),
                round(100.0 * breakdown.fraction(breakdown.high_idle_tail_j), 1),
                round(100.0 * breakdown.fraction(breakdown.switch_j), 1),
            ]
        )
    body = (
        "Paper: for most background applications less than 30% of the 3G energy"
        " goes to actual data transfer; about 60% or more is tail energy.\n\n"
        + format_markdown_table(
            ["app", "data %", "DCH tail %", "FACH tail %", "switch %"], rows
        )
    )
    mean_tail = (
        sum(background_fractions) / len(background_fractions)
        if background_fractions
        else 0.0
    )
    return "Figure 1 — energy breakdown per application (AT&T 3G)", body, mean_tail


def figure8_section() -> tuple[str, str, float]:
    """Figure 8: energy-estimator error for Verizon 3G and LTE."""
    rows = []
    worst = 0.0
    for carrier in ("verizon_3g", "verizon_lte"):
        outcome = run_validation(get_profile(carrier), seed=0)
        worst = max(worst, 100.0 * outcome.mean_absolute_error)
        rows.append(
            [
                carrier,
                round(100.0 * outcome.mean_error, 2),
                round(100.0 * outcome.mean_absolute_error, 2),
                round(100.0 * outcome.max_absolute_error, 2),
            ]
        )
    body = (
        "Paper: the per-second energy estimator is within 10% of the measured"
        " energy on average.\n\n"
        + format_markdown_table(
            ["carrier", "mean error %", "mean |error| %", "max |error| %"], rows
        )
    )
    return "Figure 8 — simulation energy-model error", body, worst


def figure9_section() -> tuple[str, str]:
    """Figure 9: per-application savings of every scheme."""
    table = application_savings(get_profile("att_hspa"), duration=1800.0, seed=0)
    schemes = [s for s in SCHEME_LABELS if s in next(iter(table.values()))]
    rows = [
        [app] + [round(per_app[s].saved_percent, 1) for s in schemes]
        for app, per_app in table.items()
    ]
    body = (
        "Paper: MakeIdle tracks the Oracle and beats the 4.5-second and 95% IAT"
        " baselines; the 95% IAT scheme is not robust (little or negative savings"
        " on News/IM).\n\n"
        + format_markdown_table(["app"] + [SCHEME_LABELS[s] for s in schemes], rows)
    )
    return "Figure 9 — energy savings per application (AT&T 3G)", body


def user_study_section(population: str, carrier: str, hours: float,
                       users: tuple[int, ...]) -> tuple[str, str]:
    """Figures 10/11/12/15 for one population."""
    outcome = user_study(
        population, get_profile(carrier), hours_per_day=hours, users=users
    )
    rows = []
    for uid, result in outcome.items():
        makeidle = result.savings.get("makeidle")
        combined = result.savings.get("makeidle+makeactive_learn")
        confusion = result.confusion.get("makeidle")
        delays = result.delays.get("makeidle+makeactive_learn")
        rows.append(
            [
                uid,
                round(makeidle.saved_percent, 1) if makeidle else "-",
                round(combined.saved_percent, 1) if combined else "-",
                round(confusion.false_switch_percent, 1) if confusion else "-",
                round(confusion.missed_switch_percent, 1) if confusion else "-",
                round(delays.median, 2) if delays else "-",
            ]
        )
    body = format_markdown_table(
        [
            "user",
            "MakeIdle saved %",
            "MI+MA saved %",
            "MakeIdle FP %",
            "MakeIdle FN %",
            "MA median delay (s)",
        ],
        rows,
    )
    title = (
        f"Figures 10/12/15 — per-user study ({carrier})"
        if carrier == "verizon_3g"
        else f"Figures 11/12/15 — per-user study ({carrier})"
    )
    return title, body


def figure13_section() -> tuple[str, str]:
    """Figure 13: FP/FN versus MakeIdle window size."""
    trace = user_trace("verizon_3g", 1, hours_per_day=0.5, seed=0)
    sweep = window_size_sweep(get_profile("verizon_3g"), trace,
                              window_sizes=(10, 50, 100, 200, 400))
    rows = [
        [n, round(c.false_switch_percent, 2), round(c.missed_switch_percent, 2)]
        for n, c in sweep.items()
    ]
    body = (
        "Paper: the false-positive rate falls as the window grows while the"
        " false-negative rate stays roughly flat; n = 100 is the operating point.\n\n"
        + format_markdown_table(["window n", "false switch %", "missed switch %"], rows)
    )
    return "Figure 13 — MakeIdle window-size sweep", body


def carriers_section(hours: float, users: tuple[int, ...]):
    """Figures 17/18 + Table 3 + the headline claims."""
    comparison = carrier_comparison(hours_per_day=hours, users=users)
    schemes = list(SCHEME_LABELS)
    energy_rows = []
    switch_rows = []
    delay_rows = []
    for carrier in CARRIER_ORDER:
        row = comparison[carrier]
        energy_rows.append(
            [carrier] + [round(row.saved_percent.get(s, 0.0), 1) for s in schemes]
        )
        switch_rows.append(
            [carrier]
            + [round(row.switches_normalized.get(s, 0.0), 2) for s in schemes]
        )
        delay_rows.append(
            [
                carrier,
                round(row.mean_delay_s.get("makeidle+makeactive_learn", 0.0), 2),
                round(row.median_delay_s.get("makeidle+makeactive_learn", 0.0), 2),
                round(row.mean_delay_s.get("makeidle+makeactive_fixed", 0.0), 2),
                round(row.median_delay_s.get("makeidle+makeactive_fixed", 0.0), 2),
            ]
        )
    headers = ["carrier"] + [SCHEME_LABELS[s] for s in schemes]
    fig17 = (
        "Paper: MakeIdle saves 51-66% on 3G and 67% on LTE; MakeIdle+MakeActive"
        " reaches 62-75% (3G) and 71% (LTE).\n\n"
        + format_markdown_table(headers, energy_rows)
    )
    fig18 = (
        "Paper: MakeIdle alone stays below ~3.1x the status-quo switch count;"
        " adding MakeActive brings it down to ~1.33x or less; 95% IAT explodes"
        " (up to 35x on LTE).\n\n"
        + format_markdown_table(headers, switch_rows)
    )
    table3 = (
        "Paper (Table 3): mean/median MakeActive session delays of roughly"
        " 4.4-5.1 seconds across carriers.\n\n"
        + format_markdown_table(
            [
                "carrier",
                "learn mean (s)",
                "learn median (s)",
                "fixed mean (s)",
                "fixed median (s)",
            ],
            delay_rows,
        )
    )

    makeidle_3g = [
        comparison[c].saved_percent.get("makeidle", 0.0)
        for c in CARRIER_ORDER
        if c != "verizon_lte"
    ]
    combined_3g = [
        comparison[c].saved_percent.get("makeidle+makeactive_learn", 0.0)
        for c in CARRIER_ORDER
        if c != "verizon_lte"
    ]
    lte = comparison["verizon_lte"]
    measured = {
        "makeidle_3g_savings_low": min(makeidle_3g),
        "makeidle_3g_savings_high": max(makeidle_3g),
        "makeidle_lte_savings": lte.saved_percent.get("makeidle", 0.0),
        "combined_3g_savings_high": max(combined_3g),
        "combined_lte_savings": lte.saved_percent.get(
            "makeidle+makeactive_learn", 0.0
        ),
        "makeidle_switch_overhead_max": max(
            comparison[c].switches_normalized.get("makeidle", 0.0)
            for c in CARRIER_ORDER
        ),
        "combined_switch_overhead": sum(
            comparison[c].switches_normalized.get("makeidle+makeactive_learn", 0.0)
            for c in CARRIER_ORDER
        ) / len(CARRIER_ORDER),
        "makeactive_median_delay": comparison["verizon_3g"].median_delay_s.get(
            "makeidle+makeactive_learn", 0.0
        ),
    }
    return fig17, fig18, table3, measured


def ablation_section() -> tuple[str, str]:
    """Section 6.1 ablation: dormancy-cost fraction."""
    trace = generate_application_trace("im", duration=1800.0, seed=0)
    sweep = dormancy_cost_sensitivity(trace, get_profile("att_hspa"), MakeIdlePolicy)
    rows = [
        [f"{p.parameter:.0%}", round(100.0 * p.energy_saved_fraction, 1)]
        for p in sweep.points
    ]
    body = (
        "Paper: evaluating at 10/20/40% instead of 50% 'did not change the results"
        " appreciably'.\n\n"
        + format_markdown_table(["dormancy cost fraction", "MakeIdle saved %"], rows)
        + f"\n\nMeasured spread: {100.0 * sweep.max_savings_spread:.1f} percentage points."
    )
    return "Section 6.1 ablation — fast-dormancy cost fraction", body


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=0.75,
                        help="hours of synthetic trace per user (default 0.75)")
    parser.add_argument("--users", type=int, nargs="*", default=[1, 2],
                        help="user ids to include (default 1 2)")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args()
    users = tuple(args.users)

    print("Figure 1 ...")
    fig1_title, fig1_body, tail_fraction = figure1_section()
    print("Figure 8 ...")
    fig8_title, fig8_body, model_error = figure8_section()
    print("Figure 9 ...")
    fig9 = figure9_section()
    print("Figures 10/12/15 (Verizon 3G users) ...")
    users3g = user_study_section("verizon_3g", "verizon_3g", args.hours, users)
    print("Figures 11/12/15 (Verizon LTE users) ...")
    userslte = user_study_section("verizon_lte", "verizon_lte", args.hours, users)
    print("Figure 13 ...")
    fig13 = figure13_section()
    print("Figures 17/18, Table 3, headline claims ...")
    fig17, fig18, table3, measured = carriers_section(args.hours, users)
    print("Section 6.1 ablation ...")
    ablation = ablation_section()

    measured["tail_energy_fraction"] = tail_fraction
    measured["energy_model_error"] = model_error

    preamble = (
        "This file is generated by `python tools/generate_experiments_md.py`.\n"
        "Workloads are synthetic reconstructions of the traces described in the\n"
        f"paper ({args.hours:.2f} h per user, users {list(users)}), so the\n"
        "comparison targets the shape of each result rather than exact values.\n"
        "Paper-reported numbers are quoted at the top of every section."
    )
    sections = [
        ("How to read this record", preamble),
        (fig1_title, fig1_body),
        ("Figure 3 — power profile over a state-switch cycle",
         "Reproduced by `benchmarks/test_fig03_power_profile.py`: the simulated "
         "power trace steps through transfer power, P_t1, P_t2 and idle exactly "
         "as Figure 3 does; see the benchmark output for the series."),
        (fig8_title, fig8_body),
        fig9,
        users3g,
        userslte,
        fig13,
        ("Figure 14 — MakeIdle waiting-time series",
         "Reproduced by `benchmarks/test_fig14_twait_series.py`: the chosen "
         "t_wait varies packet-by-packet within [0, t_threshold], as in the "
         "paper's example trace."),
        ("Figure 16 — MakeActive learning curve",
         "Reproduced by `benchmarks/test_fig16_learning_curve.py`: the learned "
         "delay bound falls as the number of buffered bursts grows, mirroring "
         "the loss-function trade-off of Figure 16."),
        ("Figure 17 — energy saved across carriers", fig17),
        ("Figure 18 — state switches normalised by status quo", fig18),
        ("Table 3 — MakeActive session delays", table3),
        ablation,
    ]
    report = experiments_report(sections, measured=measured,
                                title="Experiment reproduction record")
    Path(args.out).write_text(report, encoding="utf-8")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
