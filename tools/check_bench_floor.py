#!/usr/bin/env python3
"""Benchmark regression gate: fresh throughput vs. the recorded floor.

Compares each gated section's freshly measured ``packets_per_sec``
(written to ``BENCH_engine.json`` by
``benchmarks/test_engine_throughput.py``) against the *committed* value
of the same key — the recorded floor — and fails when any fresh number
drops below ``tolerance × floor``.  By default every throughput section
with a recorded floor is gated (``single_1k``, ``sharded_100k``,
``metro_250k`` and the vector-backend sections); pass ``--section`` one
or more times to gate a subset.  This is what keeps future PRs from
silently regressing the kernel hot paths: CI snapshots the committed
file before the benchmark overwrites it, then runs this gate.

The gate is tolerance-based and **skips cleanly** on constrained runners:
shared CI boxes jitter by tens of percent, so the default tolerance is
generous (anything slower than ~2.2x the floor trips it), machines with fewer than
``--min-cores`` usable cores skip (their numbers measure contention, not
the code), and ``REPRO_BENCH_GATE=skip`` force-skips.

One section is gated on *memory* instead of throughput: ``cell_1m``
records the resident set (``rss_now_mb``) of the million-device streamed
cell, and its fresh value must stay under the committed
``rss_ceiling_mb`` of the floor snapshot.  Memory does not jitter with
core contention, so this check runs even below ``--min-cores``; like the
throughput sections it skips cleanly when the (opt-in,
``REPRO_BENCH_1M=1``) section is absent from the fresh run.

Usage::

    cp BENCH_engine.json /tmp/bench_floor.json       # before the bench run
    PYTHONPATH=src python -m pytest benchmarks/test_engine_throughput.py -q
    python tools/check_bench_floor.py --floor /tmp/bench_floor.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Exit status meanings (documented for CI log readers).
OK, REGRESSION, BAD_INPUT = 0, 1, 2

SECTION = "single_1k"
#: Gated by default: every section recording a ``packets_per_sec``
#: throughput.  Sections without a recorded floor (or absent from the
#: fresh run) skip cleanly, so adding one here never blocks its first
#: commit.
DEFAULT_SECTIONS = (
    "single_1k", "sharded_100k", "metro_250k", "vector_1k", "vector_100k",
    "learning_10k", "cell_1m",
)
KEY = "packets_per_sec"
#: The memory-gated section and its keys (see module docstring).
MEMORY_SECTION = "cell_1m"
MEMORY_KEY = "rss_now_mb"
MEMORY_CEILING_KEY = "rss_ceiling_mb"
#: Fallback ceiling when neither snapshot carries one (matches the
#: committed MILLION_RSS_CEILING_MB of the benchmark).
DEFAULT_RSS_CEILING_MB = 440.0
SKIP_ENV = "REPRO_BENCH_GATE"


def read_value(path: Path, section: str, key: str) -> float | None:
    """The recorded ``section.key`` number in ``path``, or None."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    value = data.get(section, {}).get(key) if isinstance(data, dict) else None
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def read_section(path: Path, section: str) -> float | None:
    """The recorded packets/sec of ``section`` in ``path``, or None."""
    return read_value(path, section, KEY)


def usable_cores() -> int:
    """Cores this process may schedule on (affinity/cgroup-aware).

    A CI runner cgroup-limited to one CPU of a big host must *skip* the
    gate (its numbers measure contention, not the code); ``os.cpu_count``
    would report the host and run it anyway.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return os.cpu_count() or 1


def read_floor(path: Path) -> float | None:
    """The recorded packets/sec floor in ``path``, or None if absent."""
    return read_section(path, SECTION)


def evaluate(floor_pps: float, current_pps: float,
             tolerance: float) -> tuple[bool, str]:
    """Gate verdict: is ``current_pps`` acceptable against the floor?"""
    threshold = tolerance * floor_pps
    if current_pps >= threshold:
        return True, (
            f"ok: measured {current_pps:,.0f} pkt/s >= "
            f"{tolerance:.0%} of recorded floor {floor_pps:,.0f} pkt/s"
        )
    return False, (
        f"REGRESSION: measured {current_pps:,.0f} pkt/s < "
        f"{tolerance:.0%} of recorded floor {floor_pps:,.0f} pkt/s "
        f"(threshold {threshold:,.0f}); the kernel hot path got slower — "
        "fix the regression, or re-record the floor with an explicit "
        "justification in the commit message"
    )


def evaluate_memory(ceiling_mb: float, current_mb: float) -> tuple[bool, str]:
    """Gate verdict: does the fresh resident set stay under the ceiling?"""
    if current_mb <= ceiling_mb:
        return True, (
            f"ok: resident set {current_mb:,.1f} MB <= committed ceiling "
            f"{ceiling_mb:,.1f} MB"
        )
    return False, (
        f"REGRESSION: resident set {current_mb:,.1f} MB > committed "
        f"ceiling {ceiling_mb:,.1f} MB; the streamed million-device path "
        "started materialising more than the struct-of-arrays core "
        "should — fix the regression, or raise the recorded ceiling with "
        "an explicit justification in the commit message"
    )


def gate_memory(floor_path: Path, current_path: Path) -> int:
    """Run the ``cell_1m`` resident-set gate; returns OK or REGRESSION."""
    current = read_value(current_path, MEMORY_SECTION, MEMORY_KEY)
    if current is None:
        print(
            f"bench gate [{MEMORY_SECTION}]: skipped (no fresh "
            f"{MEMORY_SECTION}.{MEMORY_KEY} in {current_path}; the "
            "million-device section is opt-in via REPRO_BENCH_1M=1)"
        )
        return OK
    ceiling = (
        read_value(floor_path, MEMORY_SECTION, MEMORY_CEILING_KEY)
        or read_value(current_path, MEMORY_SECTION, MEMORY_CEILING_KEY)
        or DEFAULT_RSS_CEILING_MB
    )
    ok, message = evaluate_memory(ceiling, current)
    print(f"bench gate [{MEMORY_SECTION}]: {message}")
    return OK if ok else REGRESSION


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--floor", type=Path, required=True,
        help="BENCH_engine.json snapshot holding the recorded floor "
             "(take it before the benchmark overwrites the file)",
    )
    parser.add_argument(
        "--current", type=Path, default=REPO_ROOT / "BENCH_engine.json",
        help="freshly written BENCH_engine.json (default: repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.45,
        help="fraction of the floor the fresh measurement must reach "
             "(default 0.45: forgiving of shared-runner jitter; trips on "
             "anything slower than ~2.2x the recorded floor)",
    )
    parser.add_argument(
        "--min-cores", type=int, default=2,
        help="skip cleanly below this many usable cores (default 2)",
    )
    parser.add_argument(
        "--section", action="append", dest="sections", default=None,
        help="BENCH_engine.json section to gate; repeatable (default: "
             f"{', '.join(DEFAULT_SECTIONS)}).  Sections missing a "
             "recorded floor or missing from the fresh run skip cleanly, "
             "so gated sections can be benchmarked selectively per runner",
    )
    args = parser.parse_args(argv)

    if os.environ.get(SKIP_ENV, "").lower() == "skip":
        print(f"bench gate: skipped ({SKIP_ENV}=skip)")
        return OK
    if not 0 < args.tolerance <= 1:
        print(f"bench gate: --tolerance must be in (0, 1], got {args.tolerance}")
        return BAD_INPUT

    cores = usable_cores()
    sections = tuple(args.sections) if args.sections else DEFAULT_SECTIONS
    status = OK
    for section in sections:
        if section == MEMORY_SECTION:
            # Memory-gated: resident set does not jitter with core
            # contention, so this runs even below --min-cores.
            status = max(status, gate_memory(args.floor, args.current))
            continue
        if cores < args.min_cores:
            print(
                f"bench gate [{section}]: skipped ({cores} usable "
                f"core(s) < --min-cores {args.min_cores}; this machine "
                "measures contention, not the code)"
            )
            continue
        floor = read_section(args.floor, section)
        if floor is None:
            print(
                f"bench gate [{section}]: skipped (no recorded "
                f"{section}.{KEY} floor in {args.floor})"
            )
            continue
        current = read_section(args.current, section)
        if current is None:
            # A fresh run may legitimately omit a gated section (e.g. a
            # heavy metro benchmark not exercised on this runner, or a new
            # section landing before CI benchmarks it): skip cleanly
            # rather than failing, so gate ordering never blocks a
            # section's first commit.
            print(
                f"bench gate [{section}]: skipped (no fresh "
                f"{section}.{KEY} in {args.current}; section not "
                "benchmarked in this run)"
            )
            continue
        ok, message = evaluate(floor, current, args.tolerance)
        print(f"bench gate [{section}]: {message}")
        if not ok:
            status = REGRESSION
    return status


if __name__ == "__main__":
    sys.exit(main())
