#!/usr/bin/env python3
"""Regenerate the golden-record regression files under tests/golden/.

Run this ONLY when a change is *supposed* to move canonical results (a new
seed derivation, an intentional model fix) — and say so in the commit
message.  ``tests/integration/test_golden.py`` compares the files byte for
byte against freshly rebuilt payloads, so an un-refreshed drift fails CI.

Usage::

    PYTHONPATH=src python tools/refresh_golden.py            # all suites
    PYTHONPATH=src python tools/refresh_golden.py single_ue  # one suite
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.reporting.golden import (  # noqa: E402  (path bootstrap above)
    GOLDEN_BUILDERS,
    build_golden,
    render_golden,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "suites", nargs="*", choices=[*sorted(GOLDEN_BUILDERS), []],
        help="suites to refresh (default: all)",
    )
    args = parser.parse_args(argv)
    suites = args.suites or sorted(GOLDEN_BUILDERS)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in suites:
        path = GOLDEN_DIR / f"{name}.json"
        text = render_golden(build_golden(name))
        changed = not path.exists() or path.read_text(encoding="utf-8") != text
        path.write_text(text, encoding="utf-8")
        status = "updated" if changed else "unchanged"
        records = text.count('"scheme"')
        print(f"{path.relative_to(REPO_ROOT)}: {status} "
              f"({len(text)} bytes, {records} scheme entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
