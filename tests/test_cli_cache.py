"""Tests for the sweep command's persistent result cache flags."""

import pytest

from repro.cli import main

SWEEP = [
    "sweep", "--apps", "im", "--duration", "300",
    "--carriers", "att_hspa", "--schemes", "status_quo,makeidle",
]


def _stats_line(err):
    lines = [l for l in err.splitlines() if l.startswith("runs:")]
    assert lines, f"no cache-stats line in stderr: {err!r}"
    return lines[-1]


class TestSweepCacheDir:
    def test_second_sweep_simulates_nothing(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")

        assert main(SWEEP + ["--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert "simulated: 2" in _stats_line(first.err)

        # A fresh invocation (fresh runner, fresh in-memory cache): every
        # run must come off the persistent tier.
        assert main(SWEEP + ["--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        line = _stats_line(second.err)
        assert "simulated: 0" in line
        assert "disk hits: 2" in line
        # Identical results either way.
        assert second.out == first.out

    def test_env_var_enables_the_tier(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RRC_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(SWEEP) == 0
        capsys.readouterr()
        assert main(SWEEP) == 0
        assert "simulated: 0" in _stats_line(capsys.readouterr().err)

    def test_no_disk_cache_overrides_the_env(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_RRC_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(SWEEP + ["--no-disk-cache"]) == 0
        capsys.readouterr()
        assert main(SWEEP + ["--no-disk-cache"]) == 0
        # Without the tier, the second process-equivalent re-simulates.
        assert "simulated: 2" in _stats_line(capsys.readouterr().err)
        assert not (tmp_path / "env-cache").exists()

    def test_corrupt_cache_file_resimulates_cleanly(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(SWEEP + ["--cache-dir", str(cache_dir)]) == 0
        first = capsys.readouterr()
        for entry in cache_dir.glob("*.pkl"):
            entry.write_bytes(b"garbage")
        assert main(SWEEP + ["--cache-dir", str(cache_dir)]) == 0
        second = capsys.readouterr()
        assert "simulated: 2" in _stats_line(second.err)
        assert second.out == first.out
