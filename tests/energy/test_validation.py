"""Tests for the Figure 8 energy-model validation experiment."""

from __future__ import annotations

import pytest

from repro.energy import generate_bulk_transfer, reference_transfer_energy, run_validation
from repro.energy.validation import TRANSFER_SIZES
from repro.traces import PacketTrace


class TestBulkTransferGenerator:
    def test_sizes_match_request(self):
        trace = generate_bulk_transfer(100_000, uplink=False, rate_mbps=6.0, seed=1)
        downlink_bytes = trace.downlink_bytes
        assert downlink_bytes == 100_000

    def test_uplink_transfer_direction(self):
        trace = generate_bulk_transfer(50_000, uplink=True, rate_mbps=2.0, seed=1)
        assert trace.uplink_bytes == 50_000
        assert trace.downlink_bytes > 0  # ACKs flow the other way

    def test_duration_roughly_matches_rate(self):
        trace = generate_bulk_transfer(1_000_000, uplink=False, rate_mbps=8.0, seed=2)
        expected = 1_000_000 * 8 / 8e6
        assert trace.duration == pytest.approx(expected, rel=0.2)

    def test_validation_of_arguments(self):
        with pytest.raises(ValueError):
            generate_bulk_transfer(0, uplink=False, rate_mbps=1.0)
        with pytest.raises(ValueError):
            generate_bulk_transfer(100, uplink=False, rate_mbps=0.0)

    def test_determinism(self):
        a = generate_bulk_transfer(10_000, False, 6.0, seed=3)
        b = generate_bulk_transfer(10_000, False, 6.0, seed=3)
        assert a == b


class TestReferenceModel:
    def test_empty_trace_is_free(self, verizon3g_profile):
        assert reference_transfer_energy(verizon3g_profile, PacketTrace([])) == 0.0

    def test_larger_transfers_cost_more(self, verizon3g_profile):
        small = generate_bulk_transfer(10_000, False, 6.0, seed=1)
        large = generate_bulk_transfer(1_000_000, False, 6.0, seed=1)
        assert reference_transfer_energy(verizon3g_profile, large, seed=1) > (
            reference_transfer_energy(verizon3g_profile, small, seed=1)
        )

    def test_reference_is_deterministic_per_seed(self, lte_profile):
        trace = generate_bulk_transfer(100_000, False, 6.0, seed=7)
        a = reference_transfer_energy(lte_profile, trace, seed=7)
        b = reference_transfer_energy(lte_profile, trace, seed=7)
        assert a == pytest.approx(b)


class TestValidationExperiment:
    @pytest.mark.parametrize("carrier", ["verizon_3g", "verizon_lte"])
    def test_errors_within_paper_bound(self, carrier):
        from repro.rrc import get_profile

        result = run_validation(get_profile(carrier), runs_per_size=3, seed=0)
        # Section 6.1: the estimation error is within 10 % (we allow 15 % to
        # absorb the synthetic reference model's noise).
        assert result.mean_absolute_error <= 0.15
        assert result.max_absolute_error <= 0.30

    def test_run_count(self, verizon3g_profile):
        result = run_validation(verizon3g_profile, runs_per_size=2, seed=1)
        # sizes x runs x {uplink, downlink}
        assert len(result.runs) == len(TRANSFER_SIZES) * 2 * 2

    def test_errors_centred_near_zero(self, lte_profile):
        result = run_validation(lte_profile, runs_per_size=4, seed=2)
        assert abs(result.mean_error) <= 0.12

    def test_relative_error_definition(self, verizon3g_profile):
        result = run_validation(verizon3g_profile, runs_per_size=1, seed=3)
        run = result.runs[0]
        expected = (run.estimated_j - run.reference_j) / run.reference_j
        assert run.relative_error == pytest.approx(expected)
