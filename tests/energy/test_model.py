"""Tests for the tail-energy model E(t) and t_threshold (paper Section 4.1)."""

from __future__ import annotations

import pytest

from repro.energy import TailEnergyModel, compute_t_threshold
from repro.rrc import get_profile


class TestTailEnergy:
    def test_zero_gap_costs_nothing(self, any_profile):
        assert TailEnergyModel(any_profile).tail_energy(0.0) == 0.0

    def test_negative_gap_rejected(self, att_profile):
        with pytest.raises(ValueError):
            TailEnergyModel(att_profile).tail_energy(-1.0)

    def test_linear_in_active_region(self, att_profile):
        model = TailEnergyModel(att_profile)
        t = att_profile.t1 / 2
        assert model.tail_energy(t) == pytest.approx(t * att_profile.power_active_w)

    def test_piecewise_in_high_idle_region(self, att_profile):
        model = TailEnergyModel(att_profile)
        t = att_profile.t1 + att_profile.t2 / 2
        expected = (
            att_profile.t1 * att_profile.power_active_w
            + (att_profile.t2 / 2) * att_profile.power_high_idle_w
        )
        assert model.tail_energy(t) == pytest.approx(expected)

    def test_long_gap_includes_switch_cost(self, att_profile):
        model = TailEnergyModel(att_profile)
        t = att_profile.total_inactivity_timeout + 10.0
        expected = model.full_tail_energy + att_profile.switch_energy_j
        assert model.tail_energy(t) == pytest.approx(expected)

    def test_monotone_non_decreasing(self, any_profile):
        model = TailEnergyModel(any_profile)
        previous = 0.0
        for i in range(200):
            t = i * 0.25
            value = model.tail_energy(t)
            assert value >= previous - 1e-12
            previous = value

    def test_wait_energy_never_includes_switch(self, any_profile):
        model = TailEnergyModel(any_profile)
        long_wait = any_profile.total_inactivity_timeout + 100.0
        assert model.wait_energy(long_wait) == pytest.approx(model.full_tail_energy)

    def test_wait_energy_negative_rejected(self, att_profile):
        with pytest.raises(ValueError):
            TailEnergyModel(att_profile).wait_energy(-0.1)


class TestThreshold:
    def test_att_anchor_matches_paper(self):
        # Section 4.1: on an HTC Vivid in AT&T's network, t_threshold ≈ 1.2 s.
        assert compute_t_threshold(get_profile("att_hspa")) == pytest.approx(1.2, abs=0.05)

    def test_lte_threshold_near_promotion_delay(self):
        # Verizon LTE promotions are fast and cheap, so the threshold is small.
        assert compute_t_threshold(get_profile("verizon_lte")) == pytest.approx(0.6, abs=0.1)

    def test_thresholds_in_paper_band(self, any_profile):
        # The paper reports thresholds between roughly 0.5 and 2 seconds.
        threshold = compute_t_threshold(any_profile)
        assert 0.3 <= threshold <= 2.5

    def test_threshold_is_the_crossover(self, any_profile):
        model = TailEnergyModel(any_profile)
        threshold = model.t_threshold
        assert model.tail_energy(threshold * 0.9) <= model.switch_energy + 1e-9
        assert model.tail_energy(threshold * 1.1) >= model.switch_energy - 1e-9

    def test_switch_beneficial_matches_threshold(self, att_profile):
        model = TailEnergyModel(att_profile)
        assert model.switch_beneficial(model.t_threshold + 0.01)
        assert not model.switch_beneficial(model.t_threshold - 0.01)

    def test_cheaper_switching_lowers_threshold(self, att_profile):
        cheap = att_profile.with_dormancy_fraction(0.1)
        assert compute_t_threshold(cheap) < compute_t_threshold(att_profile)


class TestExpectations:
    def test_expected_no_switch_empty(self, att_profile):
        assert TailEnergyModel(att_profile).expected_no_switch_energy([]) == 0.0

    def test_expected_no_switch_caps_long_gaps(self, att_profile):
        model = TailEnergyModel(att_profile)
        capped = model.expected_no_switch_energy([10_000.0])
        assert capped == pytest.approx(model.full_tail_energy)

    def test_expected_wait_switch(self, att_profile):
        model = TailEnergyModel(att_profile)
        value = model.expected_wait_switch_energy(1.0)
        assert value == pytest.approx(model.switch_energy + model.wait_energy(1.0))

    def test_expected_gain_positive_for_long_gaps(self, att_profile):
        model = TailEnergyModel(att_profile)
        gaps = [60.0] * 20
        assert model.expected_gain(0.0, gaps) > 0.0

    def test_expected_gain_negative_for_short_gaps(self, att_profile):
        model = TailEnergyModel(att_profile)
        gaps = [0.05] * 20
        assert model.expected_gain(0.0, gaps) < 0.0
