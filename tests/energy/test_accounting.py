"""Tests for the energy accountant and the per-packet data-energy model."""

from __future__ import annotations

import pytest

from repro.energy import DataEnergyModel, EnergyAccountant
from repro.rrc import RadioState, RrcStateMachine
from repro.traces import Direction, Packet, PacketTrace


class TestDataEnergyModel:
    def test_validation(self, att_profile):
        with pytest.raises(ValueError):
            DataEnergyModel(att_profile, burst_gap=0.0)
        with pytest.raises(ValueError):
            DataEnergyModel(att_profile, downlink_rate_mbps=0.0)
        with pytest.raises(ValueError):
            DataEnergyModel(att_profile, min_packet_time=0.0)

    def test_intra_burst_packet_charged_by_gap(self, att_profile):
        model = DataEnergyModel(att_profile, burst_gap=1.0)
        trace = PacketTrace(
            [
                Packet(0.0, 100, Direction.UPLINK),
                Packet(0.4, 1400, Direction.DOWNLINK),
            ]
        )
        transfers = model.packet_transfers(trace)
        assert transfers[1].duration_s == pytest.approx(0.4)
        assert transfers[1].energy_j == pytest.approx(0.4 * att_profile.power_recv_w)

    def test_first_packet_uses_serialisation_time(self, att_profile):
        model = DataEnergyModel(att_profile, downlink_rate_mbps=8.0)
        trace = PacketTrace([Packet(0.0, 10_000, Direction.DOWNLINK)])
        transfers = model.packet_transfers(trace)
        assert transfers[0].duration_s == pytest.approx(10_000 / 1e6, rel=1e-6)

    def test_burst_start_after_long_gap_not_charged_gap(self, att_profile):
        model = DataEnergyModel(att_profile, burst_gap=1.0)
        trace = PacketTrace(
            [Packet(0.0, 100, Direction.UPLINK), Packet(60.0, 100, Direction.UPLINK)]
        )
        transfers = model.packet_transfers(trace)
        assert transfers[1].duration_s < 1.0

    def test_min_packet_time_floor(self, att_profile):
        model = DataEnergyModel(att_profile, min_packet_time=0.01)
        assert model.serialization_time(1, uplink=True) == pytest.approx(0.01)

    def test_uplink_uses_send_power(self, lte_profile):
        model = DataEnergyModel(lte_profile, burst_gap=1.0)
        trace = PacketTrace(
            [Packet(0.0, 100, Direction.DOWNLINK), Packet(0.5, 100, Direction.UPLINK)]
        )
        transfers = model.packet_transfers(trace)
        assert transfers[1].energy_j == pytest.approx(0.5 * lte_profile.power_send_w)

    def test_total_data_energy_sums_packets(self, att_profile, simple_trace):
        model = DataEnergyModel(att_profile)
        total_energy, total_time = model.total_data_energy(simple_trace)
        transfers = model.packet_transfers(simple_trace)
        assert total_energy == pytest.approx(sum(t.energy_j for t in transfers))
        assert total_time == pytest.approx(sum(t.duration_s for t in transfers))

    def test_empty_trace(self, att_profile):
        model = DataEnergyModel(att_profile)
        assert model.total_data_energy(PacketTrace([])) == (0.0, 0.0)


class TestEnergyAccountant:
    def run_machine(self, profile, trace, trailing=30.0):
        machine = RrcStateMachine(profile)
        for packet in trace:
            machine.notify_activity(packet.timestamp)
        machine.finish(trace.end_time + trailing)
        return machine

    def test_breakdown_total_is_sum_of_parts(self, att_profile, simple_trace):
        machine = self.run_machine(att_profile, simple_trace)
        accountant = EnergyAccountant(att_profile)
        breakdown = accountant.account(simple_trace, machine.intervals, machine.switches)
        assert breakdown.total_j == pytest.approx(
            breakdown.data_j
            + breakdown.active_tail_j
            + breakdown.high_idle_tail_j
            + breakdown.idle_j
            + breakdown.switch_j
        )

    def test_idle_energy_is_zero_with_zero_idle_power(self, att_profile, simple_trace):
        machine = self.run_machine(att_profile, simple_trace)
        breakdown = EnergyAccountant(att_profile).account(
            simple_trace, machine.intervals, machine.switches
        )
        assert breakdown.idle_j == 0.0
        assert breakdown.idle_time_s > 0.0

    def test_single_burst_tail_matches_model(self, att_profile):
        # One isolated packet: the radio pays exactly the full tail
        # (t1 at P_t1 plus t2 at P_t2) before going idle.
        trace = PacketTrace([Packet(0.0, 100, Direction.UPLINK)])
        machine = self.run_machine(att_profile, trace, trailing=60.0)
        breakdown = EnergyAccountant(att_profile).account(
            trace, machine.intervals, machine.switches
        )
        from repro.energy import TailEnergyModel

        expected_tail = TailEnergyModel(att_profile).full_tail_energy
        assert breakdown.tail_j == pytest.approx(expected_tail, rel=0.02)

    def test_switch_energy_counts_promotions(self, att_profile, simple_trace):
        machine = self.run_machine(att_profile, simple_trace)
        breakdown = EnergyAccountant(att_profile).account(
            simple_trace, machine.intervals, machine.switches
        )
        # Two promotions (one per burst: the 60 s gap exceeds t1+t2).
        assert breakdown.promotions == 2
        assert breakdown.switch_j == pytest.approx(
            2 * att_profile.promotion_energy_j
        )

    def test_fraction_helper(self, att_profile, simple_trace):
        machine = self.run_machine(att_profile, simple_trace)
        breakdown = EnergyAccountant(att_profile).account(
            simple_trace, machine.intervals, machine.switches
        )
        assert breakdown.fraction(breakdown.data_j) == pytest.approx(
            breakdown.data_j / breakdown.total_j
        )
        assert breakdown.fraction(0.0) == 0.0

    def test_as_dict_round_trip(self, att_profile, simple_trace):
        machine = self.run_machine(att_profile, simple_trace)
        breakdown = EnergyAccountant(att_profile).account(
            simple_trace, machine.intervals, machine.switches
        )
        payload = breakdown.as_dict()
        assert payload["total_j"] == pytest.approx(breakdown.total_j)
        assert payload["promotions"] == breakdown.promotions

    def test_tail_dominates_for_sparse_background_traffic(self, att_profile, heartbeat_trace):
        # The paper's Figure 1 observation: for background applications most
        # of the energy goes to the timers, not the data transfer itself.
        machine = self.run_machine(att_profile, heartbeat_trace)
        breakdown = EnergyAccountant(att_profile).account(
            heartbeat_trace, machine.intervals, machine.switches
        )
        assert breakdown.tail_j > breakdown.data_j
        assert breakdown.fraction(breakdown.data_j) < 0.3
