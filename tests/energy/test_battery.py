"""Tests for the battery model and lifetime projection."""

import pytest

from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.energy import (
    GALAXY_NEXUS_BATTERY,
    NEXUS_S_BATTERY,
    Battery,
    DevicePowerBudget,
    lifetime_extension,
    paper_lifetime_estimate,
    project_lifetime,
)
from repro.sim import TraceSimulator


class TestBattery:
    def test_capacity_in_joules(self):
        battery = Battery(capacity_mah=1000.0, voltage_v=3.7)
        assert battery.capacity_j == pytest.approx(1.0 * 3.7 * 3600.0)

    def test_capacity_in_watt_hours(self):
        battery = Battery(capacity_mah=2000.0, voltage_v=3.7)
        assert battery.capacity_wh == pytest.approx(7.4)

    def test_hours_at_power(self):
        battery = Battery(capacity_mah=1000.0, voltage_v=3.6)
        # 3.6 Wh at 1 W is 3.6 hours.
        assert battery.hours_at_power(1.0) == pytest.approx(3.6)

    def test_hours_at_power_rejects_zero(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=1000.0).hours_at_power(0.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)

    def test_rejects_non_positive_voltage(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=100.0, voltage_v=-1.0)

    def test_reference_batteries_plausible(self):
        assert GALAXY_NEXUS_BATTERY.capacity_mah > NEXUS_S_BATTERY.capacity_mah
        assert 10.0 < GALAXY_NEXUS_BATTERY.capacity_wh < 20.0 or \
            GALAXY_NEXUS_BATTERY.capacity_wh < 10.0  # sanity: a few Wh


class TestDevicePowerBudget:
    def test_total_and_fraction(self):
        budget = DevicePowerBudget(radio_power_w=0.6, platform_power_w=0.4)
        assert budget.total_power_w == pytest.approx(1.0)
        assert budget.radio_fraction == pytest.approx(0.6)

    def test_zero_total_has_zero_fraction(self):
        budget = DevicePowerBudget(radio_power_w=0.0, platform_power_w=0.0)
        assert budget.radio_fraction == 0.0

    def test_with_radio_saving_scales_only_radio(self):
        budget = DevicePowerBudget(radio_power_w=1.0, platform_power_w=0.5)
        saved = budget.with_radio_saving(0.5)
        assert saved.radio_power_w == pytest.approx(0.5)
        assert saved.platform_power_w == pytest.approx(0.5)

    def test_with_radio_saving_rejects_over_one(self):
        budget = DevicePowerBudget(radio_power_w=1.0, platform_power_w=0.5)
        with pytest.raises(ValueError):
            budget.with_radio_saving(1.2)

    def test_negative_saving_increases_radio_power(self):
        budget = DevicePowerBudget(radio_power_w=1.0, platform_power_w=0.5)
        assert budget.with_radio_saving(-0.1).radio_power_w == pytest.approx(1.1)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            DevicePowerBudget(radio_power_w=-0.1, platform_power_w=0.5)

    def test_from_breakdown(self, att_profile, email_trace):
        result = TraceSimulator(att_profile).run(email_trace, StatusQuoPolicy())
        budget = DevicePowerBudget.from_breakdown(
            result.breakdown, email_trace.duration
        )
        assert budget.radio_power_w == pytest.approx(
            result.total_energy_j / email_trace.duration
        )
        assert budget.platform_power_w == pytest.approx(0.35)

    def test_from_breakdown_rejects_zero_duration(self, att_profile, email_trace):
        result = TraceSimulator(att_profile).run(email_trace, StatusQuoPolicy())
        with pytest.raises(ValueError):
            DevicePowerBudget.from_breakdown(result.breakdown, 0.0)


class TestLifetimeProjection:
    def test_projection_extends_lifetime(self):
        battery = Battery(capacity_mah=1500.0)
        budget = DevicePowerBudget(radio_power_w=0.5, platform_power_w=0.5)
        projection = project_lifetime(battery, budget, radio_saving_fraction=0.6)
        assert projection.scheme_hours > projection.baseline_hours
        assert projection.extension_hours > 0
        assert 0 < projection.extension_fraction < 1

    def test_zero_saving_means_no_extension(self):
        battery = Battery(capacity_mah=1500.0)
        budget = DevicePowerBudget(radio_power_w=0.5, platform_power_w=0.5)
        projection = project_lifetime(battery, budget, radio_saving_fraction=0.0)
        assert projection.extension_hours == pytest.approx(0.0)

    def test_lifetime_extension_from_simulation(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(email_trace, StatusQuoPolicy())
        makeidle = simulator.run(email_trace, MakeIdlePolicy())
        projection = lifetime_extension(
            NEXUS_S_BATTERY,
            baseline.breakdown,
            makeidle.breakdown,
            duration_s=email_trace.duration,
        )
        assert projection.baseline_hours > 0
        # MakeIdle saves energy on this workload, so lifetime must not shrink.
        assert projection.scheme_hours >= projection.baseline_hours

    def test_lifetime_extension_rejects_bad_duration(self, att_profile, email_trace):
        result = TraceSimulator(att_profile).run(email_trace, StatusQuoPolicy())
        with pytest.raises(ValueError):
            lifetime_extension(
                NEXUS_S_BATTERY, result.breakdown, result.breakdown, duration_s=-1.0
            )


class TestPaperEstimate:
    def test_paper_headline_number(self):
        # The conclusion: 66% saving ~ 4.8 hours of the 7.3-hour 3G penalty.
        assert paper_lifetime_estimate(0.66) == pytest.approx(4.818, abs=0.01)

    def test_zero_and_full_savings(self):
        assert paper_lifetime_estimate(0.0) == 0.0
        assert paper_lifetime_estimate(1.0) == pytest.approx(7.3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            paper_lifetime_estimate(1.5)
        with pytest.raises(ValueError):
            paper_lifetime_estimate(-0.1)
