"""Tests for the sensitivity-analysis sweeps."""

import pytest

from repro.core import MakeIdlePolicy
from repro.energy import TailEnergyModel
from repro.energy.sensitivity import (
    DEFAULT_DORMANCY_FRACTIONS,
    SensitivityPoint,
    SensitivitySweep,
    dormancy_cost_sensitivity,
    inactivity_timer_sweep,
    switch_energy_sweep,
)


class TestSensitivitySweep:
    def _sweep(self):
        points = tuple(
            SensitivityPoint(parameter=p, energy_j=10.0 - p, energy_saved_fraction=p / 10.0,
                             switch_count=int(p))
            for p in (1.0, 2.0, 4.0)
        )
        return SensitivitySweep("demo", points)

    def test_parameters_and_savings_views(self):
        sweep = self._sweep()
        assert sweep.parameters == (1.0, 2.0, 4.0)
        assert sweep.savings == (0.1, 0.2, 0.4)

    def test_max_savings_spread(self):
        assert self._sweep().max_savings_spread == pytest.approx(0.3)

    def test_empty_sweep_spread_is_zero(self):
        assert SensitivitySweep("empty", ()).max_savings_spread == 0.0

    def test_point_at(self):
        sweep = self._sweep()
        assert sweep.point_at(2.0).switch_count == 2
        with pytest.raises(KeyError):
            sweep.point_at(3.0)


class TestDormancyCostSensitivity:
    def test_default_fractions_match_paper(self):
        assert DEFAULT_DORMANCY_FRACTIONS == (0.1, 0.2, 0.4, 0.5)

    def test_sweep_runs_all_fractions(self, att_profile, im_trace):
        sweep = dormancy_cost_sensitivity(
            im_trace, att_profile, MakeIdlePolicy, fractions=(0.25, 0.5)
        )
        assert sweep.parameter_name == "dormancy_fraction"
        assert sweep.parameters == (0.25, 0.5)
        assert all(p.energy_j > 0 for p in sweep.points)

    def test_savings_do_not_change_appreciably(self, att_profile, im_trace):
        # The paper's Section 6.1 claim: results are insensitive to the
        # assumed dormancy cost fraction in the 10-50% range.
        sweep = dormancy_cost_sensitivity(im_trace, att_profile, MakeIdlePolicy)
        assert sweep.max_savings_spread < 0.25

    def test_rejects_empty_fractions(self, att_profile, im_trace):
        with pytest.raises(ValueError):
            dormancy_cost_sensitivity(im_trace, att_profile, MakeIdlePolicy, fractions=())


class TestInactivityTimerSweep:
    def test_shorter_timer_saves_energy_on_sparse_traffic(self, att_profile, im_trace):
        sweep = inactivity_timer_sweep(im_trace, att_profile, (1.0, 4.5, 16.6))
        by_timer = dict(zip(sweep.parameters, sweep.savings))
        # A much shorter timeout than AT&T's 16.6 s total must save energy on
        # heartbeat traffic, and the sweep is monotone: shorter tails cost less.
        # (Setting the whole 16.6 s tail at the Active power is *worse* than
        # the deployed 6.2 s Active + 10.4 s FACH split, so that point may be
        # negative — it only has to be the worst of the three.)
        assert by_timer[1.0] > 0.2
        assert by_timer[1.0] > by_timer[4.5] > by_timer[16.6]

    def test_rejects_bad_values(self, att_profile, im_trace):
        with pytest.raises(ValueError):
            inactivity_timer_sweep(im_trace, att_profile, ())
        with pytest.raises(ValueError):
            inactivity_timer_sweep(im_trace, att_profile, (0.0,))


class TestSwitchEnergySweep:
    def test_threshold_monotone_in_switch_cost(self, att_profile):
        results = switch_energy_sweep(att_profile, (0.5, 1.0, 2.0))
        thresholds = [t for _, t in results]
        assert thresholds == sorted(thresholds)

    def test_unit_factor_matches_model(self, att_profile):
        results = dict(switch_energy_sweep(att_profile, (1.0,)))
        assert results[1.0] == pytest.approx(TailEnergyModel(att_profile).t_threshold)

    def test_rejects_non_positive_factors(self, att_profile):
        with pytest.raises(ValueError):
            switch_energy_sweep(att_profile, (0.0,))
        with pytest.raises(ValueError):
            switch_energy_sweep(att_profile, ())
