"""Tests for the multi-device cell simulation."""

import pytest

from repro.basestation import (
    AcceptAllDormancy,
    CellSimulator,
    DeviceSpec,
    RejectAllDormancy,
)
from repro.basestation.policies import RateLimitedDormancy
from repro.core import (
    CombinedPolicy,
    FixedDelayMakeActive,
    MakeIdlePolicy,
    StatusQuoPolicy,
)
from repro.sim import TraceSimulator
from repro.traces import (
    Packet,
    PacketTrace,
    generate_application_trace,
    stream_application_packets,
)


def _devices(count, app="im", policy_factory=MakeIdlePolicy, duration=900.0):
    return [
        DeviceSpec(
            device_id=index,
            trace=generate_application_trace(app, duration=duration, seed=index),
            policy=policy_factory(),
        )
        for index in range(count)
    ]


class TestDeviceSpec:
    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            DeviceSpec(device_id=-1, trace=generate_application_trace("im", 60.0),
                       policy=StatusQuoPolicy())


class TestCellSimulator:
    def test_requires_devices_and_unique_ids(self, att_profile):
        simulator = CellSimulator(att_profile)
        with pytest.raises(ValueError):
            simulator.run([])
        duplicated = _devices(1) + _devices(1)
        with pytest.raises(ValueError):
            simulator.run(duplicated)

    def test_accept_all_matches_single_device_simulator_energy(self, att_profile):
        # With a single device and always-accept dormancy, the cell
        # simulation should closely track the single-device simulator.
        trace = generate_application_trace("im", duration=900.0, seed=3)
        cell = CellSimulator(att_profile, AcceptAllDormancy())
        cell_result = cell.run(
            [DeviceSpec(device_id=0, trace=trace, policy=MakeIdlePolicy())]
        )
        single = TraceSimulator(att_profile).run(trace, MakeIdlePolicy())
        assert cell_result.devices[0].total_energy_j == pytest.approx(
            single.total_energy_j, rel=0.15
        )

    def test_status_quo_devices_issue_no_requests(self, att_profile):
        cell = CellSimulator(att_profile)
        result = cell.run(_devices(3, policy_factory=StatusQuoPolicy, duration=600.0))
        assert result.dormancy_requests == 0
        assert result.denial_rate == 0.0

    def test_makeidle_devices_request_dormancy(self, att_profile):
        cell = CellSimulator(att_profile, AcceptAllDormancy())
        result = cell.run(_devices(3, duration=600.0))
        assert result.dormancy_requests > 0
        assert result.dormancy_denied == 0
        assert result.dormancy_policy_name == "accept_all"

    def test_reject_all_costs_energy(self, att_profile):
        devices = _devices(2, duration=600.0)
        accept = CellSimulator(att_profile, AcceptAllDormancy()).run(devices)
        reject = CellSimulator(att_profile, RejectAllDormancy()).run(devices)
        assert reject.dormancy_denied == reject.dormancy_requests
        assert reject.total_energy_j >= accept.total_energy_j

    def test_rate_limiting_denies_some_requests(self, att_profile):
        devices = _devices(2, app="finance", duration=300.0)
        limited = CellSimulator(
            att_profile, RateLimitedDormancy(min_interval_s=120.0)
        ).run(devices)
        accept = CellSimulator(att_profile, AcceptAllDormancy()).run(devices)
        if accept.dormancy_requests > 1:
            assert limited.dormancy_denied > 0
            assert 0.0 < limited.denial_rate <= 1.0

    def test_aggregate_views(self, att_profile):
        result = CellSimulator(att_profile).run(_devices(3, duration=600.0))
        assert result.total_energy_j == pytest.approx(
            sum(d.total_energy_j for d in result.devices)
        )
        assert result.peak_active_devices >= 1
        assert result.peak_active_devices <= 3
        assert result.signaling.switches == result.total_switches
        assert result.peak_switches_per_minute >= 1
        assert result.device(1).device_id == 1
        with pytest.raises(KeyError):
            result.device(99)

    def test_per_device_denial_rate(self, att_profile):
        result = CellSimulator(att_profile, RejectAllDormancy()).run(
            _devices(1, duration=600.0)
        )
        device = result.devices[0]
        if device.dormancy_requests:
            assert device.denial_rate == 1.0
        assert device.policy_name == "makeidle"


class TestMakeActiveInCell:
    """The kernel gives cell devices the full MakeActive buffering path."""

    def _trace(self):
        # Two late sessions on fresh flows while the radio is Idle: a
        # MakeActive device buffers them and promotes once for both.
        return PacketTrace(
            [
                Packet(0.0, 100, flow_id=1),
                Packet(100.0, 100, flow_id=2),
                Packet(102.0, 100, flow_id=3),
            ]
        )

    def _policy(self, bound=5.0):
        return CombinedPolicy(
            MakeIdlePolicy(window_size=20), FixedDelayMakeActive(delay_bound=bound)
        )

    def test_buffering_works_under_denying_dormancy_policy(self, att_profile):
        # MakeActive batching is a device-local decision: it must function
        # even when the base station denies every fast-dormancy request.
        cell = CellSimulator(att_profile, RejectAllDormancy())
        result = cell.run(
            [DeviceSpec(device_id=0, trace=self._trace(), policy=self._policy())]
        )
        device = result.devices[0]
        # Both late sessions were held and released together at 105.0 (the
        # initial session at t=0 is buffered too, for its full 5 s bound).
        late = sorted(d.delay for d in device.session_delays
                      if d.arrival_time > 50.0)
        assert late == [pytest.approx(3.0), pytest.approx(5.0)]
        assert device.mean_session_delay_s == pytest.approx((5.0 + 3.0 + 5.0) / 3)
        # Denials happened, proving the base-station arbiter was active.
        assert device.dormancy_denied == device.dormancy_requests

    def test_batched_sessions_promote_once(self, att_profile):
        cell_result = CellSimulator(att_profile, AcceptAllDormancy()).run(
            [DeviceSpec(device_id=0, trace=self._trace(), policy=self._policy())]
        )
        single = TraceSimulator(att_profile).run(self._trace(), self._policy())
        # The cell device behaves exactly like the single-UE simulator:
        # same energy, same promotion count (one shared promotion at 105).
        assert cell_result.devices[0].total_energy_j == pytest.approx(
            single.total_energy_j
        )
        assert cell_result.devices[0].breakdown.promotions == \
            single.breakdown.promotions

    def test_cell_energy_matches_single_ue_exactly(self, att_profile):
        # With always-accept dormancy the cell façade and the single-UE
        # façade run the same kernel: energies agree to the float.
        trace = generate_application_trace("im", duration=600.0, seed=5)
        cell = CellSimulator(att_profile, AcceptAllDormancy()).run(
            [DeviceSpec(device_id=0, trace=trace,
                        policy=MakeIdlePolicy(window_size=30))]
        )
        single = TraceSimulator(att_profile).run(
            trace, MakeIdlePolicy(window_size=30)
        )
        assert cell.devices[0].total_energy_j == pytest.approx(
            single.total_energy_j, rel=1e-12
        )


class TestStreamingCell:
    def test_streamed_devices_run_in_bounded_memory(self, att_profile):
        devices = [
            DeviceSpec(
                device_id=index,
                trace=stream_application_packets(
                    "im", duration=300.0, seed=index, chunk_s=60.0
                ),
                policy=MakeIdlePolicy(window_size=20),
            )
            for index in range(10)
        ]
        result = CellSimulator(att_profile).run(devices)
        assert result.total_packets > 0
        assert len(result.devices) == 10
        assert result.total_energy_j > 0.0
        assert result.peak_active_devices <= 10

    def test_load_samples_recorded_at_interval(self, att_profile):
        devices = _devices(3, duration=300.0)
        result = CellSimulator(
            att_profile, AcceptAllDormancy(), load_sample_interval_s=60.0
        ).run(devices)
        assert result.load_samples
        times = [s.time for s in result.load_samples]
        assert times == sorted(times)
        for sample in result.load_samples:
            assert 0 <= sample.active_devices <= 3

    def test_unordered_stream_rejected(self, att_profile):
        backwards = [Packet(10.0, 100), Packet(5.0, 100)]
        spec = DeviceSpec(device_id=0, trace=iter(backwards),
                          policy=StatusQuoPolicy())
        with pytest.raises(ValueError):
            CellSimulator(att_profile).run([spec])
