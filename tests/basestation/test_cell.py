"""Tests for the multi-device cell simulation."""

import pytest

from repro.basestation import (
    AcceptAllDormancy,
    CellSimulator,
    DeviceSpec,
    RejectAllDormancy,
)
from repro.basestation.policies import RateLimitedDormancy
from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.sim import TraceSimulator
from repro.traces import generate_application_trace


def _devices(count, app="im", policy_factory=MakeIdlePolicy, duration=900.0):
    return [
        DeviceSpec(
            device_id=index,
            trace=generate_application_trace(app, duration=duration, seed=index),
            policy=policy_factory(),
        )
        for index in range(count)
    ]


class TestDeviceSpec:
    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            DeviceSpec(device_id=-1, trace=generate_application_trace("im", 60.0),
                       policy=StatusQuoPolicy())


class TestCellSimulator:
    def test_requires_devices_and_unique_ids(self, att_profile):
        simulator = CellSimulator(att_profile)
        with pytest.raises(ValueError):
            simulator.run([])
        duplicated = _devices(1) + _devices(1)
        with pytest.raises(ValueError):
            simulator.run(duplicated)

    def test_accept_all_matches_single_device_simulator_energy(self, att_profile):
        # With a single device and always-accept dormancy, the cell
        # simulation should closely track the single-device simulator.
        trace = generate_application_trace("im", duration=900.0, seed=3)
        cell = CellSimulator(att_profile, AcceptAllDormancy())
        cell_result = cell.run(
            [DeviceSpec(device_id=0, trace=trace, policy=MakeIdlePolicy())]
        )
        single = TraceSimulator(att_profile).run(trace, MakeIdlePolicy())
        assert cell_result.devices[0].total_energy_j == pytest.approx(
            single.total_energy_j, rel=0.15
        )

    def test_status_quo_devices_issue_no_requests(self, att_profile):
        cell = CellSimulator(att_profile)
        result = cell.run(_devices(3, policy_factory=StatusQuoPolicy, duration=600.0))
        assert result.dormancy_requests == 0
        assert result.denial_rate == 0.0

    def test_makeidle_devices_request_dormancy(self, att_profile):
        cell = CellSimulator(att_profile, AcceptAllDormancy())
        result = cell.run(_devices(3, duration=600.0))
        assert result.dormancy_requests > 0
        assert result.dormancy_denied == 0
        assert result.dormancy_policy_name == "accept_all"

    def test_reject_all_costs_energy(self, att_profile):
        devices = _devices(2, duration=600.0)
        accept = CellSimulator(att_profile, AcceptAllDormancy()).run(devices)
        reject = CellSimulator(att_profile, RejectAllDormancy()).run(devices)
        assert reject.dormancy_denied == reject.dormancy_requests
        assert reject.total_energy_j >= accept.total_energy_j

    def test_rate_limiting_denies_some_requests(self, att_profile):
        devices = _devices(2, app="finance", duration=300.0)
        limited = CellSimulator(
            att_profile, RateLimitedDormancy(min_interval_s=120.0)
        ).run(devices)
        accept = CellSimulator(att_profile, AcceptAllDormancy()).run(devices)
        if accept.dormancy_requests > 1:
            assert limited.dormancy_denied > 0
            assert 0.0 < limited.denial_rate <= 1.0

    def test_aggregate_views(self, att_profile):
        result = CellSimulator(att_profile).run(_devices(3, duration=600.0))
        assert result.total_energy_j == pytest.approx(
            sum(d.total_energy_j for d in result.devices)
        )
        assert result.peak_active_devices >= 1
        assert result.peak_active_devices <= 3
        assert result.signaling.switches == result.total_switches
        assert result.peak_switches_per_minute >= 1
        assert result.device(1).device_id == 1
        with pytest.raises(KeyError):
            result.device(99)

    def test_per_device_denial_rate(self, att_profile):
        result = CellSimulator(att_profile, RejectAllDormancy()).run(
            _devices(1, duration=600.0)
        )
        device = result.devices[0]
        if device.dormancy_requests:
            assert device.denial_rate == 1.0
        assert device.policy_name == "makeidle"
