"""Tests for the columnar device storage (repro.basestation.table).

The table is a drop-in replacement for the old tuple-of-DeviceResult
storage, so these tests pin the sequence contract (row views, slicing,
equality against plain tuples) and check that every columnar aggregate
equals the naive Python loop over materialised rows.
"""

import pytest

from repro.basestation import DeviceTable, FloatArray
from repro.basestation.cell import CellSimulator, DeviceResult, DeviceSpec
from repro.core import MakeIdlePolicy
from repro.energy.accounting import EnergyBreakdown
from repro.rrc.profiles import get_profile
from repro.sim.results import SessionDelay
from repro.traces.synthetic import generate_application_trace


def _device(device_id, energy=1.0, cohort="", delays=()):
    breakdown = EnergyBreakdown(
        data_j=energy, active_tail_j=0.5, high_idle_tail_j=0.25,
        idle_j=0.125, switch_j=0.0625, data_time_s=10.0, active_time_s=5.0,
        high_idle_time_s=2.5, idle_time_s=1.25, promotions=3, demotions=2,
    )
    return DeviceResult(
        device_id=device_id,
        policy_name="status_quo",
        breakdown=breakdown,
        packets=40,
        dormancy_requests=4,
        dormancy_granted=3,
        dormancy_denied=1,
        session_delays=tuple(delays),
        total_session_delay_s=sum(d.delay for d in delays),
        delayed_sessions=sum(1 for d in delays if d.delay > 0.0),
        cohort=cohort,
    )


def _cell_result(devices=12, duration=900.0):
    profile = get_profile("att_hspa")
    simulator = CellSimulator(profile)
    specs = [
        DeviceSpec(
            device_id=i,
            trace=generate_application_trace(
                "im", duration=duration, seed=i
            ),
            policy=MakeIdlePolicy(),
            cohort="even" if i % 2 == 0 else "odd",
        )
        for i in range(devices)
    ]
    return simulator.run(specs)


class TestDeviceTableSequence:
    def test_from_rows_round_trips_every_field(self):
        rows = (_device(0), _device(1, energy=2.0, cohort="bulk"))
        table = DeviceTable.from_rows(rows)
        assert len(table) == 2
        for original, view in zip(rows, table):
            assert view == original
            assert isinstance(view, DeviceResult)

    def test_row_fields_are_python_scalars(self):
        table = DeviceTable.from_rows((_device(7),))
        row = table[0]
        assert type(row.device_id) is int
        assert type(row.breakdown.promotions) is int
        assert type(row.breakdown.data_j) is float
        assert type(row.total_session_delay_s) is float

    def test_negative_index_and_slice(self):
        rows = tuple(_device(i, energy=float(i + 1)) for i in range(5))
        table = DeviceTable.from_rows(rows)
        assert table[-1] == rows[-1]
        assert table[1:3] == rows[1:3]
        with pytest.raises(IndexError):
            table[5]

    def test_equality_against_plain_tuple(self):
        rows = (_device(0), _device(1))
        table = DeviceTable.from_rows(rows)
        assert table == rows
        assert table == DeviceTable.from_rows(rows)
        assert table != DeviceTable.from_rows(rows[:1])

    def test_session_delays_survive_the_round_trip(self):
        delays = (
            SessionDelay(arrival_time=1.0, release_time=2.5, flow_id=9),
            SessionDelay(arrival_time=4.0, release_time=4.0, flow_id=11),
        )
        table = DeviceTable.from_rows((_device(0, delays=delays),))
        assert table[0].session_delays == delays

    def test_empty_table(self):
        table = DeviceTable.from_rows(())
        assert len(table) == 0
        assert tuple(table) == ()
        assert table.total_energy_j() == 0.0
        assert table.cohorts() == ()

    def test_by_id(self):
        table = DeviceTable.from_rows(tuple(_device(i * 10) for i in range(4)))
        assert table.by_id(20).device_id == 20
        with pytest.raises(KeyError):
            table.by_id(5)


class TestColumnarAggregates:
    def test_aggregates_match_naive_loops(self):
        result = _cell_result()
        table = result.devices
        assert isinstance(table, DeviceTable)
        rows = tuple(table)
        assert table.total_energy_j() == sum(
            r.total_energy_j for r in rows
        )
        assert table.int_total("packets") == sum(r.packets for r in rows)
        assert table.int_total("promotions") == sum(
            r.breakdown.promotions for r in rows
        )

    def test_cohort_groups_match_row_grouping(self):
        result = _cell_result()
        table = result.devices
        groups = table.cohort_groups()
        assert set(groups) == {"even", "odd"}
        for label, group in groups.items():
            members = [r for r in table if r.cohort == label]
            assert group["devices"] == len(members)
            assert group["energy_j"] == sum(m.total_energy_j for m in members)
            assert group["packets"] == sum(m.packets for m in members)

    def test_cell_result_totals_delegate_to_the_table(self):
        result = _cell_result(devices=6)
        rows = tuple(result.devices)
        assert result.total_energy_j == sum(r.total_energy_j for r in rows)
        assert result.total_packets == sum(r.packets for r in rows)
        assert result.total_switches == sum(
            r.breakdown.promotions + r.breakdown.demotions for r in rows
        )


class TestFloatArray:
    def test_iteration_yields_python_floats(self):
        arr = FloatArray([3.0, 1.0, 2.0])
        values = list(arr)
        assert values == [3.0, 1.0, 2.0]
        assert all(type(v) is float for v in values)

    def test_equality_with_lists_and_sorting(self):
        arr = FloatArray([3.0, 1.0, 2.0])
        assert arr == [3.0, 1.0, 2.0]
        assert arr.sorted() == [1.0, 2.0, 3.0]
        assert len(arr) == 3
        assert arr[1] == 1.0
