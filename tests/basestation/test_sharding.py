"""Shard execution protocol: run_shard + merge_cell_shards.

The contract under test is the ISSUE's exactness condition: for
*shard-independent* dormancy stations (accept_all, reject_all, per-UE
rate_limited) a sharded cell run merges to per-device results that are
**byte-identical** to the single-process run, at any shard count, for
device counts that do not divide evenly.
"""

from __future__ import annotations

import pickle

import pytest

from repro.basestation import (
    AcceptAllDormancy,
    CellSimulator,
    DeviceSpec,
    LoadAwareDormancy,
    RateLimitedDormancy,
    RejectAllDormancy,
    merge_cell_shards,
    partition_switch_budget,
)
from repro.core.makeidle import MakeIdlePolicy
from repro.rrc.profiles import get_profile
from repro.sim.engine import CellLoad
from repro.traces.streaming import stream_application_packets

#: (station factory, label); every entry is shard-independent: its
#: decisions depend only on the requesting device, never on other shards.
SHARD_INDEPENDENT_STATIONS = [
    (AcceptAllDormancy, "accept_all"),
    (RejectAllDormancy, "reject_all"),
    (lambda: RateLimitedDormancy(min_interval_s=5.0), "rate_limited"),
]


def _devices(profile, lo, hi, duration=400.0):
    """Devices [lo, hi) of a deterministic streamed population."""
    del profile
    return [
        DeviceSpec(
            device_id=i,
            trace=stream_application_packets(
                "im", duration=duration, seed=1000 + i, chunk_s=100.0
            ),
            policy=MakeIdlePolicy(window_size=30),
        )
        for i in range(lo, hi)
    ]


def _shard_bounds(devices: int, shards: int) -> list[tuple[int, int]]:
    base, rem = divmod(devices, shards)
    bounds, start = [], 0
    for j in range(shards):
        size = base + (1 if j < rem else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class TestShardMergeExactness:
    @pytest.mark.parametrize("station_factory,label", SHARD_INDEPENDENT_STATIONS)
    @pytest.mark.parametrize("shards", [1, 2, 7])
    def test_byte_identical_to_single_process(
        self, att_profile, station_factory, label, shards
    ):
        # 11 devices: divides evenly by neither 2 nor 7.
        single = CellSimulator(att_profile, station_factory()).run(
            _devices(att_profile, 0, 11)
        )
        partials = [
            CellSimulator(att_profile, station_factory()).run_shard(
                _devices(att_profile, lo, hi)
            )
            for lo, hi in _shard_bounds(11, shards)
        ]
        merged = merge_cell_shards(partials)

        # Per-device records: byte-identical (exact float equality via
        # dataclass equality on every breakdown field and counter).
        assert merged.devices == single.devices
        # Exact aggregates.
        assert merged.signaling == single.signaling
        assert merged.duration_s == single.duration_s
        assert merged.switch_times == single.switch_times
        assert merged.peak_switches_per_minute == single.peak_switches_per_minute
        assert merged.dormancy_policy_name == single.dormancy_policy_name
        # Peak active without sampling: exact for K=1, upper bound beyond.
        if shards == 1:
            assert merged.peak_active_devices == single.peak_active_devices
        else:
            assert merged.peak_active_devices >= single.peak_active_devices

    def test_shard_partials_survive_pickling(self, att_profile):
        # The runner ships shards across process boundaries; the partial
        # must round-trip without perturbing the merged result.
        direct = [
            CellSimulator(att_profile, AcceptAllDormancy()).run_shard(
                _devices(att_profile, lo, hi)
            )
            for lo, hi in _shard_bounds(7, 3)
        ]
        pickled = [pickle.loads(pickle.dumps(shard)) for shard in direct]
        assert merge_cell_shards(pickled) == merge_cell_shards(direct)

    def test_high_idle_pending_demotion_closes_identically(self, att_profile):
        # AT&T's two-stage timers leave machines mid-demotion at shard
        # quiesce when float rounding puts the Idle boundary just past the
        # last timer event; the merge must replay those pending demotions.
        single = CellSimulator(att_profile, AcceptAllDormancy()).run(
            _devices(att_profile, 0, 3, duration=150.0)
        )
        partials = [
            CellSimulator(att_profile, AcceptAllDormancy()).run_shard(
                _devices(att_profile, lo, hi, duration=150.0)
            )
            for lo, hi in _shard_bounds(3, 2)
        ]
        merged = merge_cell_shards(partials)
        assert merged.devices == single.devices
        assert merged.signaling.timer_demotions == single.signaling.timer_demotions

    def test_sampled_shards_merge_on_shared_grid(self, att_profile):
        simulators = [
            CellSimulator(
                att_profile, AcceptAllDormancy(), load_sample_interval_s=5.0
            )
            for _ in range(2)
        ]
        partials = [
            sim.run_shard(_devices(att_profile, lo, hi))
            for sim, (lo, hi) in zip(simulators, _shard_bounds(6, 2))
        ]
        merged = merge_cell_shards(partials)
        single = CellSimulator(
            att_profile, AcceptAllDormancy(), load_sample_interval_s=5.0
        ).run(_devices(att_profile, 0, 6))
        assert merged.load_samples  # sampling was on
        merged_by_time = {s.time: s for s in merged.load_samples}
        for sample in single.load_samples:
            counterpart = merged_by_time.get(sample.time)
            if counterpart is None:
                continue  # grid point past both shards' activity
            # Active devices sum exactly across disjoint shards.
            assert counterpart.active_devices == sample.active_devices
        # With sampling on, the merged peak comes from the summed series.
        assert merged.peak_active_devices == max(
            s.active_devices for s in merged.load_samples
        )


class TestMergeValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one shard"):
            merge_cell_shards([])

    def test_rejects_overlapping_device_ids(self, att_profile):
        shard = CellSimulator(att_profile, AcceptAllDormancy()).run_shard(
            _devices(att_profile, 0, 2)
        )
        with pytest.raises(ValueError, match="unique across shards"):
            merge_cell_shards([shard, shard])

    def test_rejects_mixed_profiles(self, att_profile):
        a = CellSimulator(att_profile, AcceptAllDormancy()).run_shard(
            _devices(att_profile, 0, 2)
        )
        other = get_profile("verizon_lte")
        b = CellSimulator(other, AcceptAllDormancy()).run_shard(
            _devices(other, 2, 4)
        )
        with pytest.raises(ValueError, match="different carrier profiles"):
            merge_cell_shards([a, b])

    def test_rejects_mixed_dormancy_policies(self, att_profile):
        a = CellSimulator(att_profile, AcceptAllDormancy()).run_shard(
            _devices(att_profile, 0, 2)
        )
        b = CellSimulator(att_profile, RejectAllDormancy()).run_shard(
            _devices(att_profile, 2, 4)
        )
        with pytest.raises(ValueError, match="different dormancy policies"):
            merge_cell_shards([a, b])

    def test_rejects_mixed_sample_grids(self, att_profile):
        a = CellSimulator(
            att_profile, AcceptAllDormancy(), load_sample_interval_s=5.0
        ).run_shard(_devices(att_profile, 0, 2))
        b = CellSimulator(
            att_profile, AcceptAllDormancy(), load_sample_interval_s=10.0
        ).run_shard(_devices(att_profile, 2, 4))
        with pytest.raises(ValueError, match="different sample grids"):
            merge_cell_shards([a, b])


class TestCellLoadMerge:
    def test_merged_combines_disjoint_loads(self):
        a = CellLoad(total_devices=3)
        b = CellLoad(total_devices=2)
        for t in (1.0, 5.0):
            a.note_switch(t)
        b.note_switch(3.0)
        a.activate()
        a.activate()
        b.activate()
        merged = CellLoad.merged([a, b])
        assert merged.total_devices == 5
        assert merged.switch_times == [1.0, 3.0, 5.0]
        assert merged.active_devices == 3
        assert merged.peak_active_devices == 3
        # Windowed queries work on the merged timeline.
        assert merged.switches_within_window(6.0) == 3

    def test_merged_peak_is_sum_of_peaks(self):
        a = CellLoad(total_devices=1)
        b = CellLoad(total_devices=1)
        a.activate()
        a.deactivate()
        b.activate()  # peaks never coincide, yet the bound sums them
        assert CellLoad.merged([a, b]).peak_active_devices == 2

    def test_merged_validation(self):
        with pytest.raises(ValueError, match="at least one CellLoad"):
            CellLoad.merged([])
        with pytest.raises(ValueError, match="different windows"):
            CellLoad.merged([CellLoad(1, window_s=60.0), CellLoad(1, window_s=30.0)])

    def test_window_is_half_open(self):
        # Regression: a switch exactly window_s ago has aged out.
        load = CellLoad(total_devices=1)
        load.note_switch(0.0)
        load.note_switch(30.0)
        assert load.switches_within_window(59.9) == 2
        assert load.switches_within_window(60.0) == 1
        assert load.switches_within_window(89.9) == 1
        assert load.switches_within_window(90.0) == 0


class TestBudgetPartition:
    def test_equal_shards_split_evenly(self):
        assert partition_switch_budget(120, [10, 10, 10]) == [40, 40, 40]

    def test_proportional_to_device_counts(self):
        assert partition_switch_budget(100, [30, 10]) == [75, 25]

    def test_largest_remainder_goes_first_on_ties(self):
        assert partition_switch_budget(10, [1, 1, 1]) == [4, 3, 3]

    def test_shares_sum_to_budget_when_feasible(self):
        sizes = [7, 3, 5, 1]
        shares = partition_switch_budget(97, sizes)
        assert sum(shares) == 97
        assert all(share >= 1 for share in shares)

    def test_minimum_one_per_shard(self):
        # budget < shard count: every shard still gets a positive budget,
        # overshooting the total — the documented approximation.
        shares = partition_switch_budget(2, [5, 5, 5])
        assert all(share >= 1 for share in shares)
        assert sum(shares) >= 2

    def test_validation(self):
        with pytest.raises(ValueError, match="budget must be positive"):
            partition_switch_budget(0, [1])
        with pytest.raises(ValueError, match="at least one shard"):
            partition_switch_budget(10, [])
        with pytest.raises(ValueError, match="shard sizes must be positive"):
            partition_switch_budget(10, [3, 0])


class TestLoadAwareSharding:
    def test_partitioned_budget_still_arbitrates(self, att_profile):
        # load_aware is the documented approximation: not byte-identical,
        # but each shard must enforce its share of the budget.
        shards = []
        sizes = [3, 3]
        budgets = partition_switch_budget(4, sizes)
        for (lo, hi), budget in zip(_shard_bounds(6, 2), budgets):
            shards.append(
                CellSimulator(
                    att_profile,
                    LoadAwareDormancy(max_switches_per_minute=budget),
                ).run_shard(_devices(att_profile, lo, hi))
            )
        merged = merge_cell_shards(shards)
        assert len(merged.devices) == 6
        assert merged.dormancy_requests > 0
        # A tiny budget under chatty IM traffic must produce denials.
        assert merged.dormancy_denied > 0
