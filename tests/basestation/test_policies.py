"""Tests for the network-controlled fast-dormancy policies."""

import pytest

from repro.basestation import (
    AcceptAllDormancy,
    LoadAwareDormancy,
    RateLimitedDormancy,
    RejectAllDormancy,
)
from repro.basestation.policies import CellLoadSnapshot


def _load(switches_last_minute=0, active=1, total=4, time=0.0):
    return CellLoadSnapshot(
        time=time,
        active_devices=active,
        total_devices=total,
        switches_last_minute=switches_last_minute,
    )


class TestCellLoadSnapshot:
    def test_active_fraction(self):
        assert _load(active=1, total=4).active_fraction == pytest.approx(0.25)
        assert _load(active=0, total=0).active_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            _load(active=5, total=4)
        with pytest.raises(ValueError):
            _load(switches_last_minute=-1)


class TestAcceptAndReject:
    def test_accept_all(self):
        decision = AcceptAllDormancy().decide(1, 0.0, _load())
        assert decision.granted

    def test_reject_all(self):
        decision = RejectAllDormancy().decide(1, 0.0, _load())
        assert not decision.granted
        assert "disabled" in decision.reason


class TestRateLimitedDormancy:
    def test_first_request_granted_then_throttled(self):
        policy = RateLimitedDormancy(min_interval_s=10.0)
        assert policy.decide(1, 0.0, _load()).granted
        assert not policy.decide(1, 5.0, _load()).granted
        assert policy.decide(1, 20.0, _load()).granted

    def test_devices_throttled_independently(self):
        policy = RateLimitedDormancy(min_interval_s=10.0)
        assert policy.decide(1, 0.0, _load()).granted
        assert policy.decide(2, 1.0, _load()).granted

    def test_reset_clears_history(self):
        policy = RateLimitedDormancy(min_interval_s=10.0)
        assert policy.decide(1, 0.0, _load()).granted
        policy.reset()
        assert policy.decide(1, 1.0, _load()).granted

    def test_denied_request_does_not_extend_throttle(self):
        policy = RateLimitedDormancy(min_interval_s=10.0)
        assert policy.decide(1, 0.0, _load()).granted
        assert not policy.decide(1, 9.0, _load()).granted
        # The denial at t=9 must not push the next grant past t=10.
        assert policy.decide(1, 10.5, _load()).granted

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            RateLimitedDormancy(min_interval_s=0.0)


class TestLoadAwareDormancy:
    def test_grants_below_budget_denies_above(self):
        policy = LoadAwareDormancy(max_switches_per_minute=10)
        assert policy.decide(1, 0.0, _load(switches_last_minute=3)).granted
        assert not policy.decide(1, 0.0, _load(switches_last_minute=10)).granted
        assert not policy.decide(1, 0.0, _load(switches_last_minute=50)).granted

    def test_reason_mentions_budget(self):
        policy = LoadAwareDormancy(max_switches_per_minute=10)
        decision = policy.decide(1, 0.0, _load(switches_last_minute=99))
        assert "99" in decision.reason

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            LoadAwareDormancy(max_switches_per_minute=0)
