"""Sharded cell execution through the api layer: execute_cell(shards=...),
the plan-level .shards() axis, the pool runner's shard fan-out, and the CLI
--shards flag."""

from __future__ import annotations

import pytest

from repro.api import (
    CellRunSpec,
    PolicySpec,
    ProcessPoolRunner,
    SerialRunner,
    cell,
    execute_cell,
    execute_cell_shard,
    plan,
    shard_sizes,
)
from repro.api.cells import DormancySpec
from repro.basestation import merge_cell_shards
from repro.cli import main


def _spec(devices=11, dormancy=DormancySpec(), shards=1, scheme="makeidle"):
    return CellRunSpec(
        cell=cell(devices=devices, apps=("im", "email"), duration=300.0),
        carrier="att_hspa",
        policy=PolicySpec(scheme=scheme).resolved(100),
        dormancy=dormancy,
        shards=shards,
    )


class TestShardSizes:
    def test_balanced_contiguous_partition(self):
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(10, 1) == [10]
        assert shard_sizes(7, 7) == [1] * 7

    def test_validation(self):
        with pytest.raises(ValueError, match="devices must be >= 1"):
            shard_sizes(0, 1)
        with pytest.raises(ValueError, match="shards must be in"):
            shard_sizes(5, 6)
        with pytest.raises(ValueError, match="shards must be in"):
            shard_sizes(5, 0)


class TestExecuteCellSharded:
    @pytest.mark.parametrize("dormancy", [
        DormancySpec(),
        DormancySpec("reject_all"),
        DormancySpec("rate_limited", 5.0),
    ])
    @pytest.mark.parametrize("shards", [2, 7])
    def test_byte_identical_per_device_records(self, dormancy, shards):
        reference = execute_cell(_spec(dormancy=dormancy))
        sharded = execute_cell(_spec(dormancy=dormancy), shards=shards)
        assert sharded.devices == reference.devices
        assert sharded.signaling == reference.signaling
        assert sharded.duration_s == reference.duration_s
        assert sharded.switch_times == reference.switch_times

    def test_shards_clamped_to_device_count(self):
        spec = _spec(devices=3, shards=50)
        assert spec.effective_shards == 3
        result = execute_cell(spec)
        assert len(result.devices) == 3

    def test_spec_shards_honoured_without_override(self):
        result = execute_cell(_spec(shards=2))
        assert result.devices == execute_cell(_spec()).devices

    def test_shard_index_validation(self):
        with pytest.raises(ValueError, match="shard index"):
            execute_cell_shard(_spec(shards=2), 2)

    def test_manual_shard_fanout_matches_execute(self):
        spec = _spec(shards=3)
        merged = merge_cell_shards(
            [execute_cell_shard(spec, index) for index in range(3)]
        )
        assert merged.devices == execute_cell(spec).devices

    def test_load_aware_budget_is_partitioned(self):
        # Not byte-identical (documented approximation) but the sharded
        # run must still arbitrate: with a tight budget, denials happen.
        sharded = execute_cell(
            _spec(devices=12, dormancy=DormancySpec("load_aware", 4.0)),
            shards=3,
        )
        assert sharded.dormancy_requests > 0
        assert sharded.dormancy_denied > 0

    def test_cache_key_carries_effective_shard_count(self):
        assert _spec(shards=1).cache_key != _spec(shards=4).cache_key
        # Clamped counts collapse to the same key.
        assert (_spec(devices=3, shards=50).cache_key
                == _spec(devices=3, shards=3).cache_key)

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            _spec(shards=0)


class TestShardsAxis:
    def _plan(self):
        return (
            plan()
            .cells(cell(devices=6, apps=("im",), duration=200.0))
            .carriers("att_hspa")
            .policies("status_quo", "makeidle")
        )

    def test_axis_expands_grid(self):
        p = self._plan().shards(1, 4)
        assert len(p) == 4
        assert sorted({spec.shards for spec in p.build()}) == [1, 4]

    def test_round_trips_through_dict(self):
        p = self._plan().dormancy("accept_all").shards(2)
        clone = type(p).from_dict(p.to_dict())
        assert clone.shard_counts == (2,)
        assert clone.build() == p.build()

    def test_single_ue_plan_rejects_shards(self):
        p = plan().apps("im").carriers("att_hspa").policies("status_quo")
        with pytest.raises(ValueError, match="only applies to cell plans"):
            p.shards(2).build()

    def test_validates_counts(self):
        with pytest.raises(ValueError, match=">= 1"):
            plan().shards(0)
        with pytest.raises(TypeError, match="must be int"):
            plan().shards(2.5)

    def test_from_dict_applies_the_same_validation(self):
        base = self._plan().to_dict()
        with pytest.raises(TypeError, match="must be int"):
            plan().from_dict({**base, "shards": [2.5]})
        with pytest.raises(ValueError, match=">= 1"):
            plan().from_dict({**base, "shards": [0]})

    def test_records_report_effective_shard_count(self):
        # A requested count beyond the population clamps; rows must not
        # claim a precision that never executed.
        p = (
            plan()
            .cells(cell(devices=2, apps=("im",), duration=200.0))
            .carriers("att_hspa")
            .policies("makeidle")
            .shards(50)
        )
        runs = SerialRunner().run(p)
        assert runs.records[0].shards == 2
        assert runs.to_records(None)[0]["shards"] == 2

    def test_describe_mentions_shard_counts(self):
        description = self._plan().shards(1, 2).describe()
        assert "2 shard count(s)" in description

    def test_pool_runner_matches_serial_runner(self):
        p = self._plan().shards(2)
        serial = SerialRunner().run(p)
        pooled = ProcessPoolRunner(jobs=2).run(p)
        assert len(serial) == len(pooled) == 2
        for a, b in zip(serial.records, pooled.records):
            assert a.spec == b.spec
            assert a.result.devices == b.result.devices
            assert a.result.load_samples == b.result.load_samples
            assert (a.result.peak_active_devices
                    == b.result.peak_active_devices)

    def test_records_carry_shards_and_group_per_count(self):
        runs = SerialRunner().run(self._plan().shards(1, 2))
        rows = runs.to_records()
        assert sorted(row["shards"] for row in rows) == [1, 1, 2, 2]
        # Each shard count normalises against its own baseline record.
        for row in rows:
            if row["scheme"] != "status_quo":
                assert "saved_percent" in row
        by_shards = runs.group_by("shards")
        assert sorted(by_shards) == [1, 2]


class TestCliShards:
    def test_requires_cell(self, capsys):
        code = main([
            "sweep", "--apps", "im", "--shards", "2", "--duration", "120",
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_sharded_cell_sweep_runs(self, capsys):
        code = main([
            "sweep", "--cell", "--devices", "6", "--apps", "im",
            "--carriers", "att_hspa", "--schemes", "makeidle",
            "--shards", "2", "--duration", "120",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards" in out
