"""Tests for the cell-sweep axis of the experiment API."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    CellRunSpec,
    CellSpec,
    DormancySpec,
    EmptyAxisError,
    ProcessPoolRunner,
    SerialRunner,
    cell,
    dormancy,
    execute_spec,
    plan,
)
from repro.basestation.cell import CellResult
from repro.config import load_plan, save_plan


def _small_plan():
    return (plan()
            .cells(cell(devices=6, apps=("im",), duration=180.0, name="tiny"))
            .carriers("att_hspa")
            .policies("status_quo", "makeidle")
            .dormancy("accept_all", "reject_all"))


class TestCellSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellSpec(devices=0)
        with pytest.raises(ValueError):
            CellSpec(apps=())
        with pytest.raises(ValueError):
            CellSpec(apps=("no_such_app",))
        with pytest.raises(ValueError):
            CellSpec(duration_s=0.0)

    def test_unnamed_labels_distinguish_populations(self):
        # Two different unnamed populations of the same size must not share
        # a label: a shared label would merge their RunRecord groups and
        # normalise one population against the other's baseline.
        im = cell(devices=3, apps=("im",), duration=300.0)
        email = cell(devices=3, apps=("email",), duration=300.0)
        assert im.label != email.label
        # ...but repetitions of one population under different seeds do
        # share it, so repeat(seeds=...) groups correctly.
        assert im.label == im.with_seed(5).label
        assert cell(devices=3, apps=("im",), duration=300.0,
                    name="x").label == "x"

    def test_fingerprint_distinguishes_populations(self):
        base = cell(devices=10, apps=("im",), duration=300.0)
        assert base.fingerprint == cell(devices=10, apps=("im",),
                                        duration=300.0).fingerprint
        assert base.fingerprint != base.with_seed(1).fingerprint
        assert base.fingerprint != cell(devices=11, apps=("im",),
                                        duration=300.0).fingerprint
        materialised = CellSpec(devices=10, apps=("im",), duration_s=300.0,
                                streaming=False)
        assert base.fingerprint != materialised.fingerprint

    def test_build_devices_cycles_apps_and_seeds(self):
        spec = cell(devices=4, apps=("im", "email"), duration=60.0)
        devices = spec.build_devices(_policy_spec("makeidle"))
        assert [d.device_id for d in devices] == [0, 1, 2, 3]
        # Fresh policy instance per device, never shared.
        assert len({id(d.policy) for d in devices}) == 4

    def test_dormancy_spec_validation(self):
        with pytest.raises(ValueError):
            DormancySpec(scheme="nope")
        with pytest.raises(ValueError):
            DormancySpec(scheme="accept_all", param=3.0)
        with pytest.raises(ValueError):
            DormancySpec(scheme="load_aware", param=2.5)  # would truncate
        assert dormancy("rate_limited", 30.0).build().min_interval_s == 30.0
        assert dormancy("load_aware", 50).build().max_switches_per_minute == 50


def _policy_spec(scheme):
    from repro.api import PolicySpec

    return PolicySpec(scheme=scheme, window_size=20)


class TestCellPlan:
    def test_expansion_order_and_size(self):
        p = _small_plan()
        specs = p.build()
        assert len(specs) == len(p) == 4
        assert all(isinstance(s, CellRunSpec) for s in specs)
        # policy-major, dormancy-minor expansion
        assert [(s.scheme, s.dormancy.scheme) for s in specs] == [
            ("status_quo", "accept_all"),
            ("status_quo", "reject_all"),
            ("makeidle", "accept_all"),
            ("makeidle", "reject_all"),
        ]

    def test_cell_axis_excludes_trace_axis(self):
        p = _small_plan().apps("im")
        with pytest.raises(ValueError):
            p.build()

    def test_dormancy_axis_on_trace_plan_is_rejected(self):
        p = (plan().apps("im").carriers("att_hspa")
             .policies("status_quo").dormancy("reject_all"))
        with pytest.raises(ValueError, match="cell plans"):
            p.build()

    def test_offline_policy_refused_on_streamed_cells(self):
        p = (plan().cells(cell(devices=2, apps=("im",), duration=120.0))
             .carriers("att_hspa").policies("oracle"))
        (spec,) = p.build()
        with pytest.raises(ValueError, match="lazy packet source"):
            execute_spec(spec)

    def test_offline_policy_allowed_on_materialised_cells(self):
        materialised = CellSpec(devices=2, apps=("im",), duration_s=120.0,
                                streaming=False)
        p = (plan().cells(materialised).carriers("att_hspa")
             .policies("oracle"))
        (spec,) = p.build()
        result = execute_spec(spec)
        assert isinstance(result, CellResult)
        assert result.dormancy_requests > 0  # the oracle did demote

    def test_missing_axes_raise(self):
        with pytest.raises(EmptyAxisError):
            plan().cells(cell(devices=2)).policies("makeidle").build()
        with pytest.raises(EmptyAxisError):
            plan().cells(cell(devices=2)).carriers("att_hspa").build()

    def test_default_dormancy_is_accept_all(self):
        p = (plan().cells(cell(devices=2, apps=("im",), duration=60.0))
             .carriers("att_hspa").policies("makeidle"))
        (spec,) = p.build()
        assert spec.dormancy == DormancySpec("accept_all")

    def test_json_round_trip(self, tmp_path):
        p = _small_plan().repeat(seeds=(0, 1)).labelled("cells")
        path = tmp_path / "plan.json"
        save_plan(p, path)
        assert load_plan(path) == p

    def test_describe_mentions_cells(self):
        assert "cell(s)" in _small_plan().describe()


class TestCellRunners:
    def test_serial_runner_runs_and_caches(self):
        runner = SerialRunner()
        runs = runner.run(_small_plan())
        assert len(runs) == 4
        assert all(isinstance(r.result, CellResult) for r in runs)
        # status_quo devices never request dormancy, so the baseline cell
        # is simulated once and reused across both dormancy policies.
        assert runs.cache_stats.misses == 3
        assert runs.cache_stats.hits == 1
        status_quo = [r for r in runs if r.scheme == "status_quo"]
        assert [r.from_cache for r in status_quo] == [False, True]
        replay = runner.run(_small_plan())
        assert replay.cache_stats.misses == 0
        assert replay.cache_stats.hits == 4

    def test_pool_matches_serial_byte_for_byte(self):
        serial = SerialRunner().run(_small_plan())
        pooled = ProcessPoolRunner(jobs=2).run(_small_plan())

        # Execution metadata (pool_jobs / pool_clamped) is backend-local
        # provenance by design; every *result* column must stay
        # byte-identical across backends.
        def strip(rows):
            return [
                {k: v for k, v in row.items()
                 if k not in ("pool_jobs", "pool_clamped")}
                for row in rows
            ]

        assert (json.dumps(strip(serial.to_records()))
                == json.dumps(strip(pooled.to_records())))
        pool_rows = pooled.to_records()
        assert all("pool_jobs" in row for row in pool_rows)
        assert pooled.execution is not None
        assert pool_rows[0]["pool_jobs"] == pooled.execution.effective_jobs

    def test_execute_spec_dispatches_cells(self):
        (spec, *_rest) = _small_plan().build()
        result = execute_spec(spec)
        assert isinstance(result, CellResult)

    def test_records_carry_cell_metrics(self):
        runs = SerialRunner().run(_small_plan())
        rows = runs.to_records()
        reject_row = next(
            r for r in rows
            if r["scheme"] == "makeidle" and r["dormancy"] == "reject_all"
        )
        assert reject_row["devices"] == 6
        assert reject_row["denial_rate"] == 1.0
        assert reject_row["peak_switches_per_minute"] >= 1
        assert "saved_percent" in reject_row  # vs status_quo, same dormancy
        accept_row = next(
            r for r in rows
            if r["scheme"] == "makeidle" and r["dormancy"] == "accept_all"
        )
        # Always-accept dormancy saves at least as much as reject-all.
        assert accept_row["saved_percent"] >= reject_row["saved_percent"]

    def test_group_by_dormancy(self):
        runs = SerialRunner().run(_small_plan())
        groups = runs.group_by("dormancy")
        assert set(groups) == {"accept_all", "reject_all"}
        assert all(len(g) == 2 for g in groups.values())

    def test_savings_refuses_cell_records(self):
        runs = SerialRunner().run(_small_plan())
        with pytest.raises(TypeError):
            runs.savings()

    def test_to_csv_includes_cell_columns(self, tmp_path):
        runs = SerialRunner().run(_small_plan())
        path = tmp_path / "cells.csv"
        runs.to_csv(path)
        header = path.read_text().splitlines()[0]
        assert "denial_rate" in header
        assert "peak_switches_per_minute" in header
