"""Tests for the RunSet result container: grouping, normalisation, export."""

from __future__ import annotations

import csv
import json

import pytest

from repro.api import SerialRunner, plan
from repro.metrics.savings import compare


@pytest.fixture(scope="module")
def runs():
    sweep = (plan()
             .apps("im", "email", duration=600.0)
             .carriers("att_hspa", "verizon_lte")
             .policies("status_quo", "makeidle", "oracle")
             .window_size(30))
    return SerialRunner().run(sweep)


class TestGrouping:
    def test_group_by_single_axis(self, runs):
        by_carrier = runs.group_by("carrier")
        assert set(by_carrier) == {"att_hspa", "verizon_lte"}
        assert all(len(group) == 6 for group in by_carrier.values())

    def test_group_by_multiple_axes(self, runs):
        cells = runs.group_by("trace", "carrier")
        assert len(cells) == 4
        for (trace, carrier), cell in cells.items():
            assert {r.trace_label for r in cell} == {trace}
            assert {r.carrier for r in cell} == {carrier}

    def test_group_by_rejects_unknown_axis(self, runs):
        with pytest.raises(ValueError):
            runs.group_by("flavour")
        with pytest.raises(ValueError):
            runs.group_by()

    def test_only_filters_conjunctively(self, runs):
        subset = runs.only(trace="im", carrier="att_hspa")
        assert len(subset) == 3
        assert {r.scheme for r in subset} == {"status_quo", "makeidle", "oracle"}


class TestNormalisation:
    def test_savings_matches_metrics_compare(self, runs):
        table = runs.savings()
        for (trace, carrier, seed), per_scheme in table.items():
            cell = runs.only(trace=trace, carrier=carrier, seed=seed)
            baseline = next(r for r in cell if r.scheme == "status_quo")
            for scheme, report in per_scheme.items():
                record = next(r for r in cell if r.scheme == scheme)
                assert report == compare(record.result, baseline.result)

    def test_savings_excludes_baseline_itself(self, runs):
        for per_scheme in runs.savings().values():
            assert "status_quo" not in per_scheme
            assert set(per_scheme) == {"makeidle", "oracle"}

    def test_savings_requires_baseline_in_plan(self):
        sweep = (plan().apps("im", duration=600.0).carriers("att_hspa")
                 .policies("makeidle"))
        baseline_free = SerialRunner().run(sweep)
        with pytest.raises(ValueError):
            baseline_free.savings()

    def test_baseline_for_finds_cell_baseline(self, runs):
        record = next(r for r in runs if r.scheme == "oracle")
        baseline = runs.baseline_for(record)
        assert baseline is not None
        assert baseline.scheme == "status_quo"
        assert baseline.group_key == record.group_key


class TestExport:
    def test_to_records_carries_normalised_columns(self, runs):
        rows = runs.to_records()
        assert len(rows) == len(runs)
        for row in rows:
            assert {"trace", "carrier", "scheme", "seed", "energy_j",
                    "saved_percent", "switches_normalized"} <= set(row)
        baseline_rows = [r for r in rows if r["scheme"] == "status_quo"]
        assert all(r["saved_percent"] == 0.0 for r in baseline_rows)

    def test_to_records_without_baseline_normalisation(self, runs):
        rows = runs.to_records(baseline_scheme=None)
        assert all("saved_percent" not in r for r in rows)

    def test_to_csv(self, runs, tmp_path):
        path = tmp_path / "runs.csv"
        runs.to_csv(path)
        with open(path, newline="", encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(runs)
        assert rows[0]["scheme"] == "status_quo"

    def test_to_json_round_trips_and_embeds_cache_stats(self, runs, tmp_path):
        path = tmp_path / "runs.json"
        text = runs.to_json(path)
        payload = json.loads(text)
        assert payload == json.loads(path.read_text(encoding="utf-8"))
        assert len(payload["records"]) == len(runs)
        assert payload["cache"]["misses"] == runs.cache_stats.misses

    def test_slicing_preserves_runset_type(self, runs):
        head = runs[:4]
        assert len(head) == 4
        assert head.cache_stats is runs.cache_stats
