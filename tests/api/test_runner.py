"""Tests for the runner backends: serial/pool equivalence and cache wiring."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ProcessPoolRunner,
    ResultCache,
    Runner,
    SerialRunner,
    default_runner,
    plan,
)


@pytest.fixture
def small_plan():
    """A fixed-seed grid small enough to pool-execute in a test."""
    return (plan()
            .apps("im", "email", duration=600.0, seed=5)
            .carriers("att_hspa", "verizon_lte")
            .policies("status_quo", "makeidle", "oracle")
            .window_size(30))


class TestSerialRunner:
    def test_records_in_plan_order(self, small_plan):
        runs = SerialRunner().run(small_plan)
        assert len(runs) == len(small_plan)
        assert [r.spec for r in runs] == list(small_plan.build())

    def test_runner_satisfies_protocol(self):
        assert isinstance(SerialRunner(), Runner)
        assert isinstance(ProcessPoolRunner(jobs=2), Runner)

    def test_accepts_explicit_spec_sequence(self, small_plan):
        specs = small_plan.build()[:3]
        runs = SerialRunner().run(specs)
        assert [r.spec for r in runs] == list(specs)

    def test_results_keyed_consistently(self, small_plan):
        runs = SerialRunner().run(small_plan)
        for record in runs:
            assert record.result.policy_name == record.scheme
            assert record.result.profile_key == record.carrier


class TestProcessPoolRunner:
    def test_byte_identical_to_serial_on_fixed_seed(self, small_plan):
        serial = SerialRunner().run(small_plan)
        pooled = ProcessPoolRunner(jobs=2).run(small_plan)
        assert (json.dumps(serial.to_records())
                == json.dumps(pooled.to_records()))
        assert serial.to_json() == pooled.to_json()

    def test_duplicate_cells_submitted_once(self, small_plan):
        specs = small_plan.build()
        doubled = specs + specs  # every cell duplicated
        runs = ProcessPoolRunner(jobs=2).run(doubled)
        assert len(runs) == 2 * len(specs)
        assert runs.cache_stats.misses == len(specs)
        assert runs.cache_stats.hits == len(specs)
        # The duplicate half is flagged as served from cache.
        assert all(r.from_cache for r in runs.records[len(specs):])

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(jobs=0)

    def test_single_pending_cell_runs_inline(self):
        # One unique cell: the pool path is skipped but semantics hold.
        p = plan().apps("email", duration=600.0).carriers("att_hspa").policies(
            "status_quo"
        )
        runs = ProcessPoolRunner(jobs=4).run(p)
        assert len(runs) == 1
        assert runs.cache_stats.misses == 1


class TestSharedCache:
    def test_cache_shared_across_run_calls(self, small_plan):
        runner = SerialRunner()
        first = runner.run(small_plan)
        second = runner.run(small_plan)
        assert first.cache_stats.misses == len(small_plan)
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits == len(small_plan)
        assert all(r.from_cache for r in second)

    def test_cache_shared_between_backends(self, small_plan):
        cache = ResultCache()
        SerialRunner(cache=cache).run(small_plan)
        runs = ProcessPoolRunner(jobs=2, cache=cache).run(small_plan)
        assert runs.cache_stats.misses == 0

    def test_default_runner_is_process_wide(self):
        assert default_runner() is default_runner()
