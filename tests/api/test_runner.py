"""Tests for the runner backends: serial/pool equivalence and cache wiring."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ProcessPoolRunner,
    ResultCache,
    Runner,
    SerialRunner,
    default_runner,
    plan,
)


@pytest.fixture
def small_plan():
    """A fixed-seed grid small enough to pool-execute in a test."""
    return (plan()
            .apps("im", "email", duration=600.0, seed=5)
            .carriers("att_hspa", "verizon_lte")
            .policies("status_quo", "makeidle", "oracle")
            .window_size(30))


class TestSerialRunner:
    def test_records_in_plan_order(self, small_plan):
        runs = SerialRunner().run(small_plan)
        assert len(runs) == len(small_plan)
        assert [r.spec for r in runs] == list(small_plan.build())

    def test_runner_satisfies_protocol(self):
        assert isinstance(SerialRunner(), Runner)
        assert isinstance(ProcessPoolRunner(jobs=2), Runner)

    def test_accepts_explicit_spec_sequence(self, small_plan):
        specs = small_plan.build()[:3]
        runs = SerialRunner().run(specs)
        assert [r.spec for r in runs] == list(specs)

    def test_results_keyed_consistently(self, small_plan):
        runs = SerialRunner().run(small_plan)
        for record in runs:
            assert record.result.policy_name == record.scheme
            assert record.result.profile_key == record.carrier


class TestProcessPoolRunner:
    def test_byte_identical_to_serial_on_fixed_seed(self, small_plan):
        serial = SerialRunner().run(small_plan)
        pooled = ProcessPoolRunner(jobs=2).run(small_plan)
        assert (json.dumps(serial.to_records())
                == json.dumps(pooled.to_records()))
        assert serial.to_json() == pooled.to_json()

    def test_duplicate_cells_submitted_once(self, small_plan):
        specs = small_plan.build()
        doubled = specs + specs  # every cell duplicated
        runs = ProcessPoolRunner(jobs=2).run(doubled)
        assert len(runs) == 2 * len(specs)
        assert runs.cache_stats.misses == len(specs)
        assert runs.cache_stats.hits == len(specs)
        # The duplicate half is flagged as served from cache.
        assert all(r.from_cache for r in runs.records[len(specs):])

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolRunner(jobs=0)

    def test_single_pending_cell_runs_inline(self):
        # One unique cell: the pool path is skipped but semantics hold.
        p = plan().apps("email", duration=600.0).carriers("att_hspa").policies(
            "status_quo"
        )
        runs = ProcessPoolRunner(jobs=4).run(p)
        assert len(runs) == 1
        assert runs.cache_stats.misses == 1


class TestSharedCache:
    def test_cache_shared_across_run_calls(self, small_plan):
        runner = SerialRunner()
        first = runner.run(small_plan)
        second = runner.run(small_plan)
        assert first.cache_stats.misses == len(small_plan)
        assert second.cache_stats.misses == 0
        assert second.cache_stats.hits == len(small_plan)
        assert all(r.from_cache for r in second)

    def test_cache_shared_between_backends(self, small_plan):
        cache = ResultCache()
        SerialRunner(cache=cache).run(small_plan)
        runs = ProcessPoolRunner(jobs=2, cache=cache).run(small_plan)
        assert runs.cache_stats.misses == 0

    def test_default_runner_is_process_wide(self):
        assert default_runner() is default_runner()


class TestPoolClamp:
    """The runner clamps its pool to usable cores (PR 5 satellite).

    A pool wider than the machine only adds scheduling overhead, and a
    pool on a 1-core box is pure pessimisation — the runner must fall
    back to serial in-process execution (byte-identical results) instead
    of shipping a configuration whose speedup is < 1 by construction.
    """

    @staticmethod
    def _cell_plan():
        from repro.api import cell

        return (plan()
                .cells(cell(devices=4, apps=("im",), duration=120.0,
                            name="clamp"))
                .carriers("att_hspa")
                .policies("makeidle")
                .shards(2))

    def test_effective_jobs_clamped_to_cores(self, monkeypatch):
        import repro.api.runner as runner_mod

        monkeypatch.setattr(runner_mod, "usable_cpu_count", lambda: 2)
        runner = ProcessPoolRunner(jobs=8)
        assert runner.usable_cores == 2
        assert runner.effective_jobs == 2

    def test_cpu_count_unknown_treated_as_one_core(self, monkeypatch):
        import repro.api.runner as runner_mod

        monkeypatch.setattr(runner_mod.os, "sched_getaffinity",
                            lambda pid: None, raising=False)
        monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: None)
        monkeypatch.delattr(runner_mod.os, "sched_getaffinity")
        runner = ProcessPoolRunner(jobs=4)
        assert runner.usable_cores == 1
        assert runner.effective_jobs == 1

    def test_one_core_falls_back_in_process(self, monkeypatch):
        import repro.api.runner as runner_mod

        monkeypatch.setattr(runner_mod, "usable_cpu_count", lambda: 1)
        runner = ProcessPoolRunner(jobs=4)
        runs = runner.run(self._cell_plan())
        execution = runs.execution
        assert execution is not None
        assert execution.requested_jobs == 4
        assert execution.effective_jobs == 1
        assert execution.pool_used is False
        assert execution.clamped is True

    def test_clamp_recorded_in_to_records(self, monkeypatch):
        import repro.api.runner as runner_mod

        monkeypatch.setattr(runner_mod, "usable_cpu_count", lambda: 1)
        rows = ProcessPoolRunner(jobs=4).run(self._cell_plan()).to_records()
        assert all(row["pool_jobs"] == 1 for row in rows)
        assert all(row["pool_clamped"] is True for row in rows)

    def test_fallback_results_byte_identical_to_serial(self, monkeypatch):
        import repro.api.runner as runner_mod

        serial = SerialRunner().run(self._cell_plan())
        monkeypatch.setattr(runner_mod, "usable_cpu_count", lambda: 1)
        clamped = ProcessPoolRunner(jobs=4).run(self._cell_plan())
        for a, b in zip(serial.records, clamped.records):
            assert a.spec == b.spec
            assert a.result.devices == b.result.devices
            assert a.result.signaling == b.result.signaling

    def test_serial_runner_has_no_execution_metadata(self):
        runs = SerialRunner().run(self._cell_plan())
        assert runs.execution is None
        assert all("pool_jobs" not in row for row in runs.to_records())

    def test_forced_pool_branch_matches_serial(self, monkeypatch):
        """Pin pool_used=True so the real executor branch always runs.

        On few-core hosts the clamp would otherwise fall back to the
        serial path and the multiprocess branch — worker pickling of
        slotted packets, shard partials crossing the process boundary —
        would never execute in the suite.
        """
        import repro.api.runner as runner_mod

        serial = SerialRunner().run(self._cell_plan())
        monkeypatch.setattr(runner_mod, "usable_cpu_count", lambda: 4)
        pooled_runner = ProcessPoolRunner(jobs=2)
        pooled = pooled_runner.run(self._cell_plan())
        assert pooled.execution.pool_used is True
        assert pooled.execution.effective_jobs == 2
        for a, b in zip(serial.records, pooled.records):
            assert a.spec == b.spec
            assert a.result.devices == b.result.devices
            assert a.result.signaling == b.result.signaling
            assert a.result.load_samples == b.result.load_samples
