"""Tests for RunSet pushdown filtering and the npz/parquet exports."""

import importlib.util

import pytest

from repro.api import SerialRunner, plan

HAVE_PYARROW = importlib.util.find_spec("pyarrow") is not None


@pytest.fixture(scope="module")
def runs():
    p = (
        plan()
        .apps("im", "email", duration=600.0)
        .carriers("att_hspa")
        .policies("status_quo", "makeidle")
    )
    return SerialRunner().run(p)


class TestFilter:
    def test_axis_keywords(self, runs):
        subset = runs.filter(trace="im", scheme="makeidle")
        assert len(subset) == 1
        assert subset[0].trace_label == "im"
        assert subset[0].scheme == "makeidle"

    def test_predicate_composes_with_axes(self, runs):
        ceiling = max(r.result.total_energy_j for r in runs)
        subset = runs.filter(
            lambda r: r.result.total_energy_j < ceiling, scheme="makeidle"
        )
        assert all(r.scheme == "makeidle" for r in subset)
        assert all(r.result.total_energy_j < ceiling for r in subset)

    def test_unknown_axis_is_an_error(self, runs):
        with pytest.raises(ValueError, match="filter axes"):
            runs.filter(flavour="strawberry")

    def test_no_arguments_is_identity(self, runs):
        assert len(runs.filter()) == len(runs)


class TestIterRecords:
    def test_is_lazy_and_matches_to_records(self, runs):
        lazy = runs.iter_records()
        assert iter(lazy) is lazy  # a generator, not a list
        assert list(lazy) == runs.to_records()

    def test_respects_baseline_scheme_argument(self, runs):
        rows = list(runs.iter_records(baseline_scheme=None))
        assert all("saved_percent" not in row for row in rows)


class TestNpzExport:
    def test_round_trip(self, runs, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "runs.npz"
        runs.to_npz(path)
        data = np.load(path)
        records = runs.to_records()
        assert list(data["scheme"]) == [r["scheme"] for r in records]
        assert data["energy_j"].dtype == np.float64
        assert data["energy_j"].tolist() == pytest.approx(
            [r["energy_j"] for r in records]
        )
        assert data["seed"].dtype == np.int64

    def test_ragged_columns_widen_with_nan(self, runs, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "runs.npz"
        runs.to_npz(path)
        data = np.load(path)
        # saved_percent exists only for non-baseline rows; the holes are nan.
        records = runs.to_records()
        saved = data["saved_percent"]
        assert saved.dtype == np.float64
        for value, record in zip(saved.tolist(), records):
            if "saved_percent" in record:
                assert value == pytest.approx(record["saved_percent"])
            else:
                assert value != value  # nan


class TestParquetExport:
    @pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed")
    def test_missing_pyarrow_raises_runtime_error(self, runs, tmp_path):
        with pytest.raises(RuntimeError, match="pyarrow"):
            runs.to_parquet(tmp_path / "runs.parquet")

    @pytest.mark.skipif(not HAVE_PYARROW, reason="pyarrow not installed")
    def test_round_trip(self, runs, tmp_path):
        import pyarrow.parquet as pq

        path = tmp_path / "runs.parquet"
        runs.to_parquet(path)
        table = pq.read_table(path)
        records = runs.to_records()
        assert table.num_rows == len(records)
        assert table.column("scheme").to_pylist() == [
            r["scheme"] for r in records
        ]
