"""Tests for the fluent ExperimentPlan builder and its grid expansion."""

from __future__ import annotations

import pytest

from repro.api import (
    EmptyAxisError,
    ExperimentPlan,
    PolicySpec,
    TraceSpec,
    inline,
    plan,
)
from repro.core import SCHEME_ORDER
from repro.traces import Packet, PacketTrace


class TestFluentBuilder:
    def test_plan_starts_empty(self):
        p = plan()
        assert len(p) == 0
        assert p.trace_specs == ()

    def test_methods_return_new_plans(self):
        base = plan().apps("email")
        extended = base.carriers("att_hspa")
        assert base.carrier_keys == ()
        assert extended.carrier_keys == ("att_hspa",)

    def test_template_reuse(self):
        template = plan().apps("email").policies("status_quo", "makeidle")
        att = template.carriers("att_hspa")
        lte = template.carriers("verizon_lte")
        assert att.carrier_keys == ("att_hspa",)
        assert lte.carrier_keys == ("verizon_lte",)

    def test_carrier_aliases_normalised_eagerly(self):
        p = plan().carriers("lte", "vzw_3g", "att")
        assert p.carrier_keys == ("verizon_lte", "verizon_3g", "att_hspa")

    def test_unknown_carrier_rejected_at_declaration(self):
        with pytest.raises(KeyError):
            plan().carriers("sprint_5g")

    def test_unknown_scheme_rejected_at_declaration(self):
        with pytest.raises(ValueError):
            plan().policies("quantum_idle")

    def test_packet_trace_auto_wrapped_inline(self):
        trace = PacketTrace([Packet(0.0, 100)], name="tiny")
        p = plan().traces(trace)
        assert p.trace_specs[0].kind == "inline"
        assert p.trace_specs[0].label == "tiny"


class TestExpansion:
    def test_grid_size_is_axis_product(self):
        p = (plan()
             .apps("email", "im", "news")
             .carriers("att_hspa", "verizon_lte")
             .policies("status_quo", "makeidle"))
        assert len(p) == 12
        assert len(p.build()) == 12

    def test_seed_repeats_multiply_grid_and_reseed_traces(self):
        p = (plan()
             .apps("email")
             .carriers("att_hspa")
             .policies("status_quo")
             .repeat(seeds=(3, 4, 5)))
        specs = p.build()
        assert len(specs) == 3
        assert [s.seed for s in specs] == [3, 4, 5]
        assert [s.trace.seed for s in specs] == [3, 4, 5]

    def test_inline_trace_is_not_reseeded(self):
        trace = PacketTrace([Packet(0.0, 100)], name="tiny")
        p = (plan().traces(trace).carriers("att_hspa")
             .policies("status_quo").repeat(seeds=(1, 2)))
        specs = p.build()
        assert specs[0].trace.fingerprint == specs[1].trace.fingerprint

    def test_empty_axis_raises_with_axis_name(self):
        with pytest.raises(EmptyAxisError) as err:
            plan().carriers("att_hspa").policies("status_quo").build()
        assert err.value.axis == "traces"
        with pytest.raises(EmptyAxisError) as err:
            plan().apps("email").policies("status_quo").build()
        assert err.value.axis == "carriers"
        with pytest.raises(EmptyAxisError) as err:
            plan().apps("email").carriers("att_hspa").build()
        assert err.value.axis == "policies"

    def test_window_size_fills_unset_policy_windows(self):
        p = (plan().apps("email").carriers("att_hspa")
             .policies("makeidle", PolicySpec("makeidle", window_size=25))
             .window_size(50))
        windows = [s.policy.window_size for s in p.build()]
        assert windows == [50, 25]

    def test_expansion_is_deterministic(self):
        p = (plan().apps("email", "im").carriers("att_hspa", "verizon_lte")
             .policies("status_quo", "makeidle").repeat(seeds=(0, 1)))
        assert p.build() == p.build()


class TestSerialisation:
    def test_round_trip(self):
        p = (plan()
             .apps("email", duration=1800.0, seed=2)
             .users("verizon_3g", (1, 2), hours_per_day=0.5)
             .carriers("att_hspa", "verizon_lte")
             .policies("status_quo", "makeidle")
             .window_size(50)
             .repeat(seeds=(0, 1))
             .labelled("round-trip"))
        restored = ExperimentPlan.from_dict(p.to_dict())
        assert restored == p
        assert restored.build() == p.build()

    def test_inline_trace_refuses_serialisation(self):
        trace = PacketTrace([Packet(0.0, 100)])
        p = plan().traces(trace).carriers("att_hspa").policies("status_quo")
        with pytest.raises(ValueError):
            p.to_dict()


class TestPaperSweepDeclarations:
    """The acceptance criterion: paper sweeps in <= 10 lines each."""

    def test_fig9_per_app_savings_plan(self):
        fig9 = (plan()
                .apps("news", "im", "microblog", "game", "email", "social",
                      "finance", duration=1800.0)
                .carriers("att_hspa")
                .policies("status_quo", *SCHEME_ORDER)
                .window_size(100))
        assert len(fig9) == 7 * 1 * 7

    def test_fig17_18_cross_carrier_plan(self):
        fig17 = (plan()
                 .users("verizon_3g", hours_per_day=2.0)
                 .carriers("tmobile_3g", "att_hspa", "verizon_3g", "verizon_lte")
                 .policies("status_quo", *SCHEME_ORDER)
                 .window_size(100))
        assert len(fig17) == 6 * 4 * 7

    def test_trace_spec_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(kind="pcap")  # no path
        with pytest.raises(ValueError):
            TraceSpec(kind="teleport")
        with pytest.raises(ValueError):
            inline(None)  # type: ignore[arg-type]


def _tail_free_policy():
    from repro.core import FixedTimerPolicy

    return FixedTimerPolicy(1.0)


class TestFactoryPolicies:
    def test_factory_gets_its_own_scheme_label(self):
        spec = PolicySpec(factory=_tail_free_policy)
        assert spec.scheme == "_tail_free_policy"
        assert spec.key[0] == "factory"

    def test_factory_never_masquerades_as_baseline(self):
        from repro.api import SerialRunner

        p = (plan().apps("im", duration=600.0).carriers("att_hspa")
             .policies("status_quo", PolicySpec(factory=_tail_free_policy)))
        runs = SerialRunner().run(p)
        table = runs.savings()
        per_scheme = next(iter(table.values()))
        assert set(per_scheme) == {"_tail_free_policy"}

    def test_explicit_factory_label_kept(self):
        spec = PolicySpec(scheme="tail_free", factory=_tail_free_policy)
        assert spec.scheme == "tail_free"
