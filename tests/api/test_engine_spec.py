"""The ``engine=`` surface: spec validation, cache sharing, plan axis, CLI.

The backend selector threads from ``CellSpec``/``MetroSpec`` through the
plan's ``.engines(...)`` axis, the runner's cache keys and ``to_records``
— with two deliberate asymmetries under test here:

* invalid names are rejected *eagerly* at declaration, with the same
  error style as shard-count validation (plan JSON round-trips and the
  CLI included);
* the engine is **excluded** from fingerprints and cache keys: both
  backends produce byte-identical results, so a scalar result may serve
  a vector request (and vice versa) from cache.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentPlan, PolicySpec, ProcessPoolRunner
from repro.api.cells import CellRunSpec, CellSpec, DormancySpec, cell
from repro.api.metro import MetroSpec, metro
from repro.cli import main


class TestSpecValidation:
    def test_cell_spec_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine must be 'scalar' or "
                                             "'vector', got 'cuda'"):
            cell(devices=4, apps=("im",), duration=100.0, engine="cuda")

    def test_cell_spec_rejects_non_string_engine(self):
        with pytest.raises(TypeError, match="engine"):
            cell(devices=4, apps=("im",), duration=100.0, engine=1)

    def test_metro_spec_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine must be 'scalar' or "
                                             "'vector', got 'fast'"):
            metro("metro_4cell", devices=8, duration=100.0, engine="fast")

    def test_engine_excluded_from_fingerprints(self):
        """Cache contract: byte-identical backends share cache entries."""
        scalar = cell(devices=4, apps=("im",), duration=100.0)
        vector = cell(devices=4, apps=("im",), duration=100.0,
                      engine="vector")
        assert scalar.fingerprint == vector.fingerprint
        assert (metro("metro_4cell", devices=8, duration=100.0).fingerprint
                == metro("metro_4cell", devices=8, duration=100.0,
                         engine="vector").fingerprint)

    def test_engine_serialised_only_when_non_default(self):
        assert "engine" not in cell(
            devices=4, apps=("im",), duration=100.0
        ).to_dict()
        assert cell(
            devices=4, apps=("im",), duration=100.0, engine="vector"
        ).to_dict()["engine"] == "vector"


class TestPlanEnginesAxis:
    def _cell_plan(self):
        return (
            ExperimentPlan()
            .cells(cell(devices=4, apps=("im",), duration=100.0))
            .carriers("att_hspa")
            .policies("fixed_4.5s")
        )

    def test_engines_axis_multiplies_grid(self):
        plan = self._cell_plan()
        assert len(plan.engines("scalar", "vector")) == 2 * len(plan)

    def test_engines_axis_round_trips_through_json(self):
        plan = self._cell_plan().engines("vector")
        clone = ExperimentPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert clone.engine_names == ("vector",)
        assert [s.cell.engine for s in clone.build()] == ["vector"]
        assert clone.describe() == plan.describe()

    def test_engines_axis_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="engine must be 'scalar' or "
                                             "'vector', got 'gpu'"):
            self._cell_plan().engines("gpu")

    def test_engines_axis_rejects_non_string(self):
        with pytest.raises(TypeError, match="engine names must be str"):
            self._cell_plan().engines(3)

    def test_from_dict_rejects_invalid_engines(self):
        payload = self._cell_plan().engines("vector").to_dict()
        payload["engines"] = ["warp"]
        with pytest.raises(ValueError, match="engine must be"):
            ExperimentPlan.from_dict(payload)

    def test_engines_axis_requires_device_population(self):
        plan = ExperimentPlan().apps("im").carriers("att_hspa") \
            .policies("fixed_4.5s").engines("vector")
        with pytest.raises(ValueError, match="engines axis only applies"):
            plan.build()


class TestCacheSharingAcrossEngines:
    def test_scalar_and_vector_specs_share_one_cache_entry(self):
        def spec(engine):
            return CellRunSpec(
                cell=cell(devices=4, apps=("im",), duration=100.0,
                          engine=engine),
                carrier="att_hspa",
                policy=PolicySpec(scheme="fixed_4.5s").resolved(100),
                dormancy=DormancySpec(),
            )

        assert spec("scalar").cache_key == spec("vector").cache_key
        runner = ProcessPoolRunner(jobs=1)
        runs = runner.run([spec("scalar"), spec("vector")])
        assert runs.cache_stats.misses == 1
        assert runs.cache_stats.hits == 1
        first, second = runs
        assert not first.from_cache
        assert second.from_cache
        assert first.result == second.result


class TestRecordColumns:
    def test_engine_columns_appear_only_for_non_default_backend(self):
        runs = ProcessPoolRunner(jobs=1).run(
            ExperimentPlan()
            .cells(cell(devices=4, apps=("im",), duration=100.0))
            .carriers("att_hspa")
            .policies("fixed_4.5s")
            .engines("scalar", "vector")
        )
        by_engine = {row.get("engine", "scalar"): row
                     for row in runs.to_records()}
        scalar_row, vector_row = by_engine["scalar"], by_engine["vector"]
        assert "engine" not in scalar_row
        assert "vector_devices" not in scalar_row
        assert vector_row["engine"] == "vector"
        assert (vector_row["vector_devices"]
                + vector_row["fallback_devices"] == 4)
        assert set(runs.group_by("engine")) == {"scalar", "vector"}


class TestCliEngineFlag:
    _BASE = [
        "sweep", "--cell", "--devices", "6", "--apps", "im",
        "--carriers", "att_hspa", "--schemes", "fixed",
        "--duration", "120",
    ]

    def test_vector_sweep_runs(self, capsys):
        main(self._BASE + ["--engine", "vector", "--json", "-"])
        out = capsys.readouterr().out
        assert '"engine": "vector"' in out

    def test_invalid_engine_rejected_cleanly(self, capsys):
        assert main(self._BASE + ["--engine", "cuda"]) == 2
        err = capsys.readouterr().err
        assert "engine must be 'scalar' or 'vector', got 'cuda'" in err

    def test_engine_without_cell_or_metro_errors(self, capsys):
        assert main([
            "sweep", "--apps", "im", "--carriers", "att_hspa",
            "--schemes", "fixed", "--duration", "120",
            "--engine", "vector",
        ]) == 2
        err = capsys.readouterr().err
        assert "--engine" in err and "--cell" in err
