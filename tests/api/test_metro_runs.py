"""Runner/RunSet integration for metro plans: serial, pooled, cached, exported."""

from __future__ import annotations

import pytest

from repro.api import (
    MetroResult,
    ProcessPoolRunner,
    ResultCache,
    SerialRunner,
    plan,
)


def _metro_plan(shards: int | None = None):
    p = (plan()
         .metros("metro_4cell", devices=10, duration=900.0)
         .carriers("att_hspa")
         .policies("status_quo", "makeidle"))
    if shards is not None:
        p = p.shards(shards)
    return p


@pytest.fixture(scope="module")
def serial_runs():
    return SerialRunner().run(_metro_plan())


class TestSerialMetroRuns:
    def test_results_are_metro_results(self, serial_runs):
        assert len(serial_runs) == 2
        for record in serial_runs:
            assert record.is_metro
            assert isinstance(record.result, MetroResult)
            assert record.result.handovers > 0

    def test_group_key_spans_schemes(self, serial_runs):
        keys = {record.group_key for record in serial_runs}
        assert len(keys) == 1  # same metro/carrier/shards/seed, scheme varies

    def test_savings_table_refuses_metro_records(self, serial_runs):
        with pytest.raises(TypeError):
            serial_runs.savings()


class TestMetroRecords:
    def test_to_records_shape(self, serial_runs):
        records = serial_runs.to_records()
        assert len(records) == 2
        for row in records:
            assert row["n_cells"] == 4
            assert row["handovers"] > 0
            assert set(row["cells"]) == {"north", "east", "south", "west"}
        by_scheme = {row["scheme"]: row for row in records}
        makeidle = by_scheme["makeidle"]
        assert makeidle["saved_percent"] is not None
        assert makeidle["saved_percent"] > 0
        # Per-cell rows carry their own baseline-relative savings.
        for cell_row in makeidle["cells"].values():
            assert "saved_percent" in cell_row
            assert "visits" in cell_row
            assert "denial_rate" in cell_row

    def test_capacity_reported_with_utilization(self, serial_runs):
        row = serial_runs.to_records()[0]
        north = row["cells"]["north"]
        assert north["capacity"] == 3000
        assert "utilization" in north

    def test_csv_flattens_nested_cells(self, serial_runs, tmp_path):
        path = tmp_path / "metro.csv"
        serial_runs.to_csv(path)
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert "cells" not in header.split(",")
        assert "handovers" in header


class TestPoolParity:
    def test_pool_records_equal_serial(self, serial_runs):
        pooled = ProcessPoolRunner(jobs=2).run(_metro_plan())
        serial_rows = serial_runs.to_records()
        pooled_rows = pooled.to_records()
        for row in (*serial_rows, *pooled_rows):
            row.pop("pool_jobs", None)
            row.pop("pool_clamped", None)
        assert pooled_rows == serial_rows

    def test_sharded_pool_matches_sharded_serial(self):
        serial = SerialRunner().run(_metro_plan(shards=2)).to_records()
        pooled = ProcessPoolRunner(jobs=3).run(_metro_plan(shards=2)).to_records()
        for row in (*serial, *pooled):
            row.pop("pool_jobs", None)
            row.pop("pool_clamped", None)
        assert pooled == serial


class TestMetroCache:
    def test_repeat_run_hits_cache(self):
        cache = ResultCache()
        runner = SerialRunner(cache=cache)
        first = runner.run(_metro_plan())
        again = runner.run(_metro_plan())
        assert not any(r.from_cache for r in first)
        assert all(r.from_cache for r in again)
        assert [r.result for r in again] == [r.result for r in first]

    def test_shard_count_partitions_the_cache(self):
        cache = ResultCache()
        runner = SerialRunner(cache=cache)
        runner.run(_metro_plan(shards=1))
        resharded = runner.run(_metro_plan(shards=2))
        assert not any(r.from_cache for r in resharded)
