"""Tests for the deduplicating result cache and its counters."""

from __future__ import annotations

from repro.api import ResultCache, SerialRunner, plan
from repro.api.spec import PolicySpec, RunSpec, TraceSpec, app, inline
from repro.traces import Packet, PacketTrace


def _email_spec(**overrides) -> RunSpec:
    defaults = dict(
        trace=app("email", duration=600.0, seed=0),
        carrier="att_hspa",
        policy=PolicySpec("status_quo"),
    )
    defaults.update(overrides)
    return RunSpec(**defaults)


class TestCacheKeys:
    def test_same_triple_same_key(self):
        assert _email_spec().cache_key == _email_spec().cache_key

    def test_seed_changes_generated_trace_key(self):
        a = _email_spec()
        b = _email_spec(trace=app("email", duration=600.0, seed=1))
        assert a.cache_key != b.cache_key

    def test_policy_window_distinguishes_keys(self):
        a = _email_spec(policy=PolicySpec("makeidle", window_size=50))
        b = _email_spec(policy=PolicySpec("makeidle", window_size=100))
        assert a.cache_key != b.cache_key

    def test_equal_inline_traces_share_a_key(self):
        packets = [Packet(0.0, 100), Packet(10.0, 200)]
        a = _email_spec(trace=inline(PacketTrace(packets, name="t")))
        b = _email_spec(trace=inline(PacketTrace(list(packets), name="t")))
        assert a.cache_key == b.cache_key

    def test_different_inline_traces_do_not_collide(self):
        a = _email_spec(trace=inline(PacketTrace([Packet(0.0, 100)])))
        b = _email_spec(trace=inline(PacketTrace([Packet(0.0, 101)])))
        assert a.cache_key != b.cache_key


class TestCounters:
    def test_miss_then_hits(self):
        cache = ResultCache()
        calls = []
        sentinel = object()
        for _ in range(3):
            result = cache.get_or_run("k", lambda: calls.append(1) or sentinel)
        assert result is sentinel
        assert calls == [1]
        assert cache.misses == 1
        assert cache.hits == 2
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == 2 / 3

    def test_peek_does_not_count(self):
        cache = ResultCache()
        cache.put("k", "v")  # type: ignore[arg-type]
        assert cache.peek("k") == "v"
        assert cache.peek("absent") is None
        assert cache.hits == 0

    def test_clear_resets_everything(self):
        cache = ResultCache()
        cache.put("k", "v")  # type: ignore[arg-type]
        cache.lookup("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0


class TestDuplicateEliminationInPlans:
    def test_status_quo_simulated_once_per_trace_carrier(self):
        # Two drivers' worth of sweeps sharing one runner: the status-quo
        # column of the second sweep is entirely served from the cache.
        runner = SerialRunner()
        base = plan().apps("im", duration=600.0).carriers("att_hspa")
        first = runner.run(base.policies("status_quo", "makeidle"))
        second = runner.run(base.policies("status_quo", "oracle"))
        assert first.cache_stats.misses == 2
        assert second.cache_stats.misses == 1  # only the oracle run is new
        status_quo_record = next(
            r for r in second if r.scheme == "status_quo"
        )
        assert status_quo_record.from_cache


class TestBoundedCache:
    def test_fifo_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)  # type: ignore[arg-type]
        cache.put("b", 2)  # type: ignore[arg-type]
        cache.put("c", 3)  # type: ignore[arg-type]
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.peek("b") == 2
        assert cache.peek("c") == 3

    def test_max_entries_validation(self):
        import pytest

        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_pool_runner_survives_tiny_cache(self):
        from repro.api import ProcessPoolRunner

        sweep = (plan().apps("im", "email", duration=600.0)
                 .carriers("att_hspa")
                 .policies("status_quo", "makeidle"))
        runner = ProcessPoolRunner(jobs=2, cache=ResultCache(max_entries=1))
        runs = runner.run(sweep)
        assert len(runs) == 4
        assert all(r.result is not None for r in runs)
