"""Tests for the persistent result-cache tier (repro.api.cache).

Covers the ISSUE-8 contract: cross-process (here cross-*instance*) hits,
version-stamp and truncation corruption handled as clean misses that
re-simulate, atomic writes under concurrent writers, and the LRU bound
on the in-memory tier spilling to disk instead of forgetting.
"""

import pickle
import threading

import pytest

from repro.api.cache import (
    CacheStats,
    DiskCacheTier,
    ResultCache,
    default_cache_dir,
)


def _key(i=0):
    return ("trace", f"fp{i}"), ("carrier", "att_hspa"), ("scheme", "makeidle")


class TestDefaultCacheDir:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RRC_CACHE_DIR", str(tmp_path / "env"))
        assert default_cache_dir() == tmp_path / "env"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_RRC_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro-rrc"


class TestDiskCacheTier:
    def test_round_trip_across_instances(self, tmp_path):
        writer = DiskCacheTier(tmp_path)
        writer.store(_key(), {"energy": 42.0})
        reader = DiskCacheTier(tmp_path)  # a "new process"
        assert reader.load(_key()) == {"energy": 42.0}
        assert reader.loads == 1

    def test_missing_file_is_a_miss(self, tmp_path):
        assert DiskCacheTier(tmp_path).load(_key()) is None

    def test_different_keys_use_different_files(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        tier.store(_key(0), "a")
        tier.store(_key(1), "b")
        assert tier.path_for(_key(0)) != tier.path_for(_key(1))
        assert tier.load(_key(0)) == "a"
        assert tier.load(_key(1)) == "b"

    def test_version_mismatch_is_a_clean_miss(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        tier.store(_key(), "payload")
        path = tier.path_for(_key())
        stale = pickle.loads(path.read_bytes())
        stale["format"] = DiskCacheTier.FORMAT_VERSION + 1
        path.write_bytes(pickle.dumps(stale))
        assert tier.load(_key()) is None
        assert not path.exists()  # the bad file is removed
        tier.store(_key(), "payload")  # and the slot heals
        assert tier.load(_key()) == "payload"

    def test_truncated_file_is_a_clean_miss(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        tier.store(_key(), list(range(1000)))
        path = tier.path_for(_key())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert tier.load(_key()) is None
        assert not path.exists()

    def test_garbage_file_is_a_clean_miss(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        path = tier.path_for(_key())
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle at all")
        assert tier.load(_key()) is None

    def test_hash_collision_key_mismatch_is_a_miss(self, tmp_path):
        # Simulate two keys colliding on one file: the payload's stored
        # key repr must not match, so the reader treats it as corruption.
        tier = DiskCacheTier(tmp_path)
        tier.store(_key(0), "a")
        colliding = tier.path_for(_key(1))
        colliding.write_bytes(tier.path_for(_key(0)).read_bytes())
        assert tier.load(_key(1)) is None

    def test_unwritable_directory_fails_quietly(self, tmp_path):
        # A *file* where the cache directory should go: mkdir fails with
        # OSError regardless of privileges (chmod tricks don't bind root).
        blocked = tmp_path / "not-a-dir"
        blocked.write_text("occupied")
        tier = DiskCacheTier(blocked / "cache")
        tier.store(_key(), "ignored")  # must not raise
        assert tier.stores == 0
        assert tier.load(_key()) is None

    def test_concurrent_writers_leave_a_complete_file(self, tmp_path):
        tier = DiskCacheTier(tmp_path)
        payload = list(range(20000))
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    tier.store(_key(), payload)
                    loaded = DiskCacheTier(tmp_path).load(_key())
                    # Atomic replace: a reader sees a full payload or a
                    # miss, never a torn file surfaced as an exception.
                    assert loaded is None or loaded == payload
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert tier.load(_key()) == payload
        leftovers = list(tmp_path.glob(".tmp-*"))
        assert leftovers == []


class TestResultCacheDiskTier:
    def test_second_cache_hits_without_running(self, tmp_path):
        first = ResultCache(disk=tmp_path)
        assert first.get_or_run(_key(), lambda: "fresh") == "fresh"
        assert (first.hits, first.misses) == (0, 1)

        second = ResultCache(disk=tmp_path)

        def boom():
            raise AssertionError("should have been served from disk")

        assert second.get_or_run(_key(), boom) == "fresh"
        assert (second.hits, second.misses) == (1, 0)
        assert second.disk_hits == 1
        assert second.stats.disk_hits == 1

    def test_lookup_consults_disk(self, tmp_path):
        ResultCache(disk=tmp_path).put(_key(), "stored")
        cache = ResultCache(disk=tmp_path)
        assert cache.lookup(_key()) == "stored"
        assert (cache.hits, cache.disk_hits) == (1, 1)

    def test_peek_counts_nothing(self, tmp_path):
        ResultCache(disk=tmp_path).put(_key(), "stored")
        cache = ResultCache(disk=tmp_path)
        assert cache.peek(_key()) == "stored"
        assert (cache.hits, cache.misses, cache.disk_hits) == (0, 0, 0)

    def test_eviction_spills_to_disk_not_oblivion(self, tmp_path):
        cache = ResultCache(max_entries=2, disk=tmp_path)
        for i in range(4):
            cache.put(_key(i), f"result{i}")
        assert len(cache) == 2  # memory stays bounded...
        for i in range(4):     # ...but nothing is forgotten
            assert cache.get_or_run(_key(i), lambda: "rerun") == f"result{i}"

    def test_clear_preserves_the_disk_tier(self, tmp_path):
        cache = ResultCache(disk=tmp_path)
        cache.put(_key(), "kept")
        cache.clear()
        assert len(cache) == 0
        assert cache.get_or_run(_key(), lambda: "rerun") == "kept"
        assert cache.disk_hits == 1


class TestLruBound:
    def test_hit_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put(_key(0), "a")
        cache.put(_key(1), "b")
        assert cache.lookup(_key(0)) == "a"  # 0 becomes most recent
        cache.put(_key(2), "c")              # evicts 1, not 0
        assert _key(0) in cache
        assert _key(1) not in cache
        assert _key(2) in cache

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)


class TestCacheStatsCompat:
    def test_positional_three_arg_construction(self):
        stats = CacheStats(3, 2, 5)
        assert (stats.hits, stats.misses, stats.size) == (3, 2, 5)
        assert stats.disk_hits == 0
        assert stats.lookups == 5
        assert stats.hit_rate == pytest.approx(0.6)
