"""MetroSpec / MetroRunSpec / plan-axis tests for the metro API layer."""

from __future__ import annotations

import pytest

from repro.api import (
    ExperimentPlan,
    MetroRunSpec,
    MetroSpec,
    Metro,
    MetroCell,
    get_metro,
    metro,
    plan,
)
from repro.api.spec import PolicySpec
from repro.metro import ShuffleMobility


def _inline_metro() -> Metro:
    return Metro(
        name="inline_duo",
        cells=(MetroCell(name="a"), MetroCell(name="b")),
        mobility=ShuffleMobility(mean_residency_s=120.0),
    )


class TestMetroSpec:
    def test_helper_resolves_presets(self):
        spec = metro("commuter_2cell", devices=50, duration=1800.0)
        assert spec.metro is get_metro("commuter_2cell")
        assert spec.devices == 50
        assert spec.duration_s == 1800.0

    def test_validation(self):
        with pytest.raises(ValueError, match="devices"):
            metro("metro_4cell", devices=0)
        with pytest.raises(ValueError, match="duration_s"):
            MetroSpec(metro=get_metro("metro_4cell"), duration_s=0.0)
        with pytest.raises(ValueError, match="chunk_s"):
            MetroSpec(metro=get_metro("metro_4cell"), chunk_s=0.0)

    def test_label_is_seed_independent(self):
        base = metro("metro_4cell", devices=100)
        assert base.label == base.with_seed(3).label
        assert base.label.startswith("metro_4cell100-")

    def test_explicit_name_wins(self):
        spec = metro("metro_4cell", name="rush_hour")
        assert spec.label == "rush_hour"

    def test_fingerprint_includes_seed(self):
        base = metro("metro_4cell")
        assert base.fingerprint != base.with_seed(3).fingerprint

    def test_preset_round_trip(self):
        spec = metro("commuter_2cell", devices=25, duration=7200.0, seed=4)
        clone = MetroSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_inline_metro_refuses_serialisation(self):
        spec = metro(_inline_metro(), devices=10)
        with pytest.raises(ValueError, match="not a registered preset"):
            spec.to_dict()

    def test_inline_metro_still_executes(self):
        # Inline topologies are first-class for the API, only plan
        # serialisation refuses them.
        spec = metro(_inline_metro(), devices=4, duration=600.0)
        assert spec.label.startswith("inline_duo4-")


class TestMetroRunSpec:
    def _run_spec(self, **kwargs) -> MetroRunSpec:
        defaults = dict(
            metro=metro("metro_4cell", devices=40),
            carrier="att_hspa",
            policy=PolicySpec(scheme="makeidle").resolved(100),
        )
        defaults.update(kwargs)
        return MetroRunSpec(**defaults)

    def test_carrier_validated_early(self):
        with pytest.raises(KeyError):
            self._run_spec(carrier="carrier_pigeon")

    def test_effective_shards_clamped_to_population(self):
        assert self._run_spec(shards=7).effective_shards == 7
        small = MetroRunSpec(
            metro=metro("metro_4cell", devices=3),
            carrier="att_hspa",
            policy=PolicySpec(scheme="makeidle").resolved(100),
            shards=8,
        )
        assert small.effective_shards == 3

    def test_n_cells(self):
        assert self._run_spec().n_cells == 4

    def test_cache_key_separates_axes(self):
        base = self._run_spec()
        assert base.cache_key == self._run_spec().cache_key
        assert base.cache_key != self._run_spec(carrier="verizon_lte").cache_key
        assert base.cache_key != self._run_spec(
            policy=PolicySpec(scheme="status_quo").resolved(100)
        ).cache_key
        assert base.cache_key != self._run_spec(shards=2).cache_key
        assert base.cache_key != self._run_spec(
            metro=metro("metro_4cell", devices=41)
        ).cache_key

    def test_no_status_quo_dormancy_collapse(self):
        """Unlike cells, station policies always shape the metro key."""
        status_quo = self._run_spec(
            policy=PolicySpec(scheme="status_quo").resolved(100)
        )
        assert status_quo.metro.metro.fingerprint in (
            status_quo.cache_key[0][1],
        )


class TestMetroPlanAxis:
    def _metro_plan(self) -> ExperimentPlan:
        return (plan()
                .metros("commuter_2cell", "metro_4cell", devices=20,
                        duration=1200.0)
                .carriers("att_hspa")
                .policies("status_quo", "makeidle"))

    def test_len_and_describe(self):
        p = self._metro_plan()
        assert p.is_metro_plan
        assert len(p) == 2 * 1 * 2
        assert "2 metro(s)" in p.describe()

    def test_build_yields_metro_run_specs(self):
        specs = self._metro_plan().build()
        assert all(isinstance(s, MetroRunSpec) for s in specs)
        assert {s.label for s in specs} == {
            metro("commuter_2cell", devices=20, duration=1200.0).label,
            metro("metro_4cell", devices=20, duration=1200.0).label,
        }

    def test_shards_axis_expands(self):
        p = self._metro_plan().shards(1, 2)
        assert len(p) == 8
        assert {s.shards for s in p.build()} == {1, 2}

    def test_seeds_reseed_the_metro(self):
        p = self._metro_plan().repeat(seeds=(1, 2))
        specs = p.build()
        assert len(specs) == 8
        assert {s.metro.seed for s in specs} == {1, 2}

    def test_rejects_mixing_with_trace_axis(self):
        p = plan().apps("im").metros("metro_4cell").carriers("att_hspa") \
                  .policies("status_quo")
        with pytest.raises(ValueError, match="cannot mix a metro axis"):
            p.build()

    def test_rejects_mixing_with_cell_axis(self):
        from repro.api import cell

        p = plan().cells(cell(devices=4)).metros("metro_4cell") \
                  .carriers("att_hspa").policies("status_quo")
        with pytest.raises(ValueError, match="cannot mix a metro axis"):
            p.build()

    def test_rejects_dormancy_axis(self):
        p = self._metro_plan().dormancy("accept_all")
        with pytest.raises(ValueError, match="station[\\s\\S]*MetroCell"):
            p.build()

    def test_rejects_non_spec_entries(self):
        with pytest.raises(TypeError, match="MetroSpec or a preset"):
            plan().metros(42)

    def test_plan_round_trip(self):
        p = self._metro_plan().shards(2)
        clone = ExperimentPlan.from_dict(p.to_dict())
        assert clone.build() == p.build()
