"""Windowed-stream tests: visit slices of a full-horizon workload."""

from __future__ import annotations

import math

import pytest

from repro.metro import windowed_stream
from repro.traces.packet import Direction, Packet
from repro.traces.streaming import stream_application_packets


def _packets(*stamps: float) -> list[Packet]:
    return [Packet(t, 100, Direction.DOWNLINK, 0, "t") for t in stamps]


class _Blocks:
    """A minimal block-protocol source."""

    def __init__(self, *blocks):
        self._blocks = list(blocks)

    def packet_blocks(self):
        yield from self._blocks

    def __iter__(self):
        for block in self._blocks:
            yield from block


class TestGeneratorWindow:
    def test_half_open_window(self):
        source = iter(_packets(0.0, 1.0, 2.0, 3.0, 4.0))
        out = list(windowed_stream(source, 1.0, 3.0))
        assert [p.timestamp for p in out] == [1.0, 2.0]

    def test_unbounded_stop(self):
        source = iter(_packets(0.0, 5.0, 10.0))
        out = list(windowed_stream(source, 5.0))
        assert [p.timestamp for p in out] == [5.0, 10.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="start"):
            windowed_stream(iter(()), -1.0)
        with pytest.raises(ValueError, match="stop"):
            windowed_stream(iter(()), 5.0, 5.0)


class TestBlockWindow:
    def test_preserves_block_protocol(self):
        source = _Blocks(_packets(0.0, 1.0), _packets(2.0, 3.0))
        window = windowed_stream(source, 1.0, 3.0)
        assert hasattr(window, "packet_blocks")
        flat = [p.timestamp for block in window.packet_blocks() for p in block]
        assert flat == [1.0, 2.0]

    def test_whole_blocks_pass_through_unsliced(self):
        inner = _packets(2.0, 3.0)
        source = _Blocks(_packets(0.0, 1.0), inner, _packets(4.0, 5.0))
        blocks = list(windowed_stream(source, 2.0, 4.0).packet_blocks())
        assert len(blocks) == 1
        assert blocks[0] is inner  # no copy when fully inside the window

    def test_stops_scanning_after_window(self):
        class Exploding(_Blocks):
            def packet_blocks(self):
                yield _packets(0.0, 1.0)
                yield _packets(10.0, 11.0)
                raise AssertionError("scanned past the window")

        out = [
            p.timestamp
            for block in windowed_stream(Exploding(), 0.0, 5.0).packet_blocks()
            for p in block
        ]
        assert out == [0.0, 1.0]

    def test_iteration_matches_blocks(self):
        source1 = _Blocks(_packets(0.0, 1.0, 2.0), _packets(3.0, 4.0))
        source2 = _Blocks(_packets(0.0, 1.0, 2.0), _packets(3.0, 4.0))
        via_iter = [p.timestamp for p in windowed_stream(source1, 1.0, 4.0)]
        via_blocks = [
            p.timestamp
            for block in windowed_stream(source2, 1.0, 4.0).packet_blocks()
            for p in block
        ]
        assert via_iter == via_blocks == [1.0, 2.0, 3.0]

    def test_empty_and_pre_window_blocks_skipped(self):
        source = _Blocks([], _packets(0.0), [], _packets(5.0, 6.0))
        out = [
            p.timestamp
            for block in windowed_stream(source, 4.0, math.inf).packet_blocks()
            for p in block
        ]
        assert out == [5.0, 6.0]


class TestAgainstRealStreams:
    def test_window_equals_filter_of_full_stream(self):
        """Slicing a chunked app stream == filtering its full materialisation."""
        def full():
            return stream_application_packets(
                "im", duration=1200.0, seed=42, chunk_s=100.0
            )

        reference = [
            p for p in full() if 300.0 <= p.timestamp < 900.0
        ]
        window = list(windowed_stream(full(), 300.0, 900.0))
        assert window == reference

    def test_windows_tile_the_stream(self):
        """Consecutive visit windows partition the full packet sequence."""
        def full():
            return stream_application_packets(
                "email", duration=1000.0, seed=7, chunk_s=250.0
            )

        cuts = [0.0, 313.0, 313.5, 700.0, math.inf]
        pieces = []
        for lo, hi in zip(cuts, cuts[1:]):
            pieces.extend(windowed_stream(full(), lo, hi))
        assert pieces == list(full())
