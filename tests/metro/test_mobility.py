"""Mobility-model tests: shard-invariant, seed-pure residency timelines."""

from __future__ import annotations

import zlib

import pytest

from repro.metro import (
    CommuterMobility,
    ShuffleMobility,
    mobility_from_dict,
    mobility_seed,
)

CELLS = ("north", "east", "south", "west")


class TestMobilitySeed:
    def test_crc32_derivation(self):
        """The documented DESIGN.md §3 substitution: crc32("metro/<s>/<i>")."""
        assert mobility_seed(7, 42) == zlib.crc32(b"metro/7/42")

    def test_disjoint_from_workload_chain(self):
        from repro.metro import workload_seed

        assert workload_seed(7, 42) == zlib.crc32(b"metroapp/7/42")
        assert mobility_seed(7, 42) != workload_seed(7, 42)


class TestMoveListInvariants:
    @pytest.mark.parametrize("model", [
        ShuffleMobility(mean_residency_s=300.0),
        CommuterMobility(home="north", work="east", commuter_fraction=0.8,
                         depart_s=600.0, return_s=2400.0, jitter_s=300.0,
                         period_s=3600.0),
    ])
    def test_moves_are_well_formed(self, model):
        for index in range(50):
            moves = model.moves(index, seed=3, duration_s=7200.0,
                                cell_names=CELLS)
            names = [name for name, _ in moves]
            times = [t for _, t in moves]
            assert times[0] == 0.0
            assert all(a < b for a, b in zip(times, times[1:]))
            assert all(x != y for x, y in zip(names, names[1:]))
            assert all(name in CELLS for name in names)
            assert all(t < 7200.0 for t in times)

    @pytest.mark.parametrize("model", [
        ShuffleMobility(),
        CommuterMobility(home="north", work="east"),
    ])
    def test_deterministic_in_index_and_seed(self, model):
        for index in (0, 1, 17):
            first = model.moves(index, 5, 86400.0, CELLS)
            again = model.moves(index, 5, 86400.0, CELLS)
            assert first == again
        # Different seed, different draws (for at least one UE of many).
        assert any(
            model.moves(i, 5, 86400.0, CELLS) != model.moves(i, 6, 86400.0, CELLS)
            for i in range(20)
        )


class TestCommuter:
    def test_non_commuters_stay_home(self):
        model = CommuterMobility(home="north", work="east",
                                 commuter_fraction=0.0)
        for index in range(10):
            assert model.moves(index, 0, 86400.0, CELLS) == (("north", 0.0),)

    def test_commuters_do_the_round_trip(self):
        model = CommuterMobility(home="north", work="east",
                                 commuter_fraction=1.0)
        moves = model.moves(0, 0, 86400.0, CELLS)
        assert [name for name, _ in moves] == ["north", "east", "north"]
        (_, depart), (_, back) = moves[1], moves[2]
        assert 8 * 3600.0 <= depart <= 8 * 3600.0 + model.jitter_s
        assert 17 * 3600.0 <= back <= 17 * 3600.0 + model.jitter_s

    def test_multi_day_horizon_repeats_daily(self):
        model = CommuterMobility(home="north", work="east",
                                 commuter_fraction=1.0)
        moves = model.moves(0, 0, 3 * 86400.0, CELLS)
        # Initial home entry plus one out-and-back per day.
        assert len(moves) == 1 + 3 * 2
        day2 = [t for _, t in moves if 86400.0 <= t < 2 * 86400.0]
        assert len(day2) == 2

    def test_fraction_splits_population(self):
        model = CommuterMobility(home="north", work="east",
                                 commuter_fraction=0.5)
        movers = sum(
            len(model.moves(i, 0, 86400.0, CELLS)) > 1 for i in range(200)
        )
        assert 50 < movers < 150  # the draw is the first RNG use per UE

    def test_short_horizon_has_no_moves(self):
        """A run ending before the earliest departure never leaves home."""
        model = CommuterMobility(home="north", work="east",
                                 commuter_fraction=1.0)
        assert model.moves(0, 0, 3600.0, CELLS) == (("north", 0.0),)

    def test_validation(self):
        with pytest.raises(ValueError, match="different cells"):
            CommuterMobility(home="a", work="a")
        with pytest.raises(ValueError, match="depart_s"):
            CommuterMobility(home="a", work="b", depart_s=0.0)
        with pytest.raises(ValueError, match="return_s"):
            CommuterMobility(home="a", work="b", depart_s=100.0,
                             return_s=50.0)
        with pytest.raises(ValueError, match="commuter_fraction"):
            CommuterMobility(home="a", work="b", commuter_fraction=1.5)
        with pytest.raises(ValueError, match="period_s"):
            CommuterMobility(home="a", work="b", period_s=3600.0)

    def test_unknown_cells_rejected_by_validate(self):
        model = CommuterMobility(home="nowhere", work="east")
        with pytest.raises(ValueError, match="unknown cell 'nowhere'"):
            model.validate_cells(CELLS)


class TestShuffle:
    def test_residency_scales_with_mean(self):
        quick = ShuffleMobility(mean_residency_s=60.0)
        slow = ShuffleMobility(mean_residency_s=6000.0)
        quick_moves = sum(
            len(quick.moves(i, 0, 3600.0, CELLS)) for i in range(30)
        )
        slow_moves = sum(
            len(slow.moves(i, 0, 3600.0, CELLS)) for i in range(30)
        )
        assert quick_moves > slow_moves

    def test_needs_two_cells(self):
        with pytest.raises(ValueError, match="at least two cells"):
            ShuffleMobility().moves(0, 0, 3600.0, ("only",))

    def test_validation(self):
        with pytest.raises(ValueError, match="mean_residency_s"):
            ShuffleMobility(mean_residency_s=0.0)


class TestSerialization:
    @pytest.mark.parametrize("model", [
        ShuffleMobility(mean_residency_s=123.0),
        CommuterMobility(home="north", work="east", commuter_fraction=0.25),
    ])
    def test_round_trip(self, model):
        clone = mobility_from_dict(model.to_dict())
        assert clone == model
        assert clone.fingerprint == model.fingerprint

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            mobility_from_dict({"model": "teleport"})
