"""Metro topology and preset-library tests."""

from __future__ import annotations

import pytest

from repro.api.cells import DormancySpec
from repro.metro import (
    Metro,
    MetroCell,
    ShuffleMobility,
    get_metro,
    metro_names,
)
from repro.scenarios import get_scenario


def _two_cells():
    return (MetroCell(name="a"), MetroCell(name="b"))


class TestMetroCell:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetroCell(name="")
        with pytest.raises(ValueError, match="capacity"):
            MetroCell(name="a", capacity=-1)

    def test_round_trip(self):
        cell = MetroCell(name="work", capacity=2500,
                         dormancy=DormancySpec(scheme="load_aware", param=240),
                         scenario=get_scenario("office_day"))
        clone = MetroCell.from_dict(cell.to_dict())
        assert clone == cell
        assert clone.fingerprint == cell.fingerprint

    def test_minimal_round_trip(self):
        cell = MetroCell(name="home")
        assert MetroCell.from_dict(cell.to_dict()) == cell


class TestMetroValidation:
    def test_needs_two_cells(self):
        with pytest.raises(ValueError, match="at least two cells"):
            Metro(name="m", cells=(MetroCell(name="a"),),
                  mobility=ShuffleMobility())

    def test_duplicate_cell_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate cell names"):
            Metro(name="m", cells=(MetroCell(name="a"), MetroCell(name="a")),
                  mobility=ShuffleMobility())

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            Metro(name="m", cells=_two_cells(), mobility=ShuffleMobility(),
                  apps=("warcraft",))

    def test_empty_apps_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Metro(name="m", cells=_two_cells(), mobility=ShuffleMobility(),
                  apps=())

    def test_mobility_cell_references_checked(self):
        from repro.metro import CommuterMobility

        with pytest.raises(ValueError, match="unknown cell"):
            Metro(name="m", cells=_two_cells(),
                  mobility=CommuterMobility(home="a", work="elsewhere"))

    def test_per_cell_dormancy_accepted(self):
        metro = Metro(name="m", cells=(MetroCell(name="a"), MetroCell(
            name="b", dormancy=DormancySpec(scheme="rate_limited", param=30))),
            mobility=ShuffleMobility())
        assert metro.cells[1].dormancy.scheme == "rate_limited"


class TestMetroAccessors:
    def test_cell_names_and_index(self):
        metro = Metro(name="m", cells=_two_cells(), mobility=ShuffleMobility())
        assert metro.cell_names == ("a", "b")
        assert metro.cell_index("b") == 1
        with pytest.raises(KeyError, match="no cell named"):
            metro.cell_index("zzz")

    def test_timeline_is_pure(self):
        metro = Metro(name="m", cells=_two_cells(), mobility=ShuffleMobility())
        assert metro.timeline(4, 9, 3600.0) == metro.timeline(4, 9, 3600.0)

    def test_round_trip(self):
        metro = Metro(name="m", cells=_two_cells(),
                      mobility=ShuffleMobility(mean_residency_s=120.0),
                      apps=("im",), description="test metro")
        clone = Metro.from_dict(metro.to_dict())
        assert clone == metro
        assert clone.fingerprint == metro.fingerprint


class TestPresets:
    def test_names(self):
        assert metro_names() == ("commuter_2cell", "metro_4cell")

    def test_presets_build_and_cache(self):
        for name in metro_names():
            metro = get_metro(name)
            assert metro.name == name
            assert get_metro(name) is metro  # cached instance

    def test_commuter_preset_shape(self):
        metro = get_metro("commuter_2cell")
        assert metro.cell_names == ("home", "work")
        work = metro.cells[1]
        assert work.dormancy is not None
        assert work.dormancy.scheme == "load_aware"

    def test_4cell_preset_shape(self):
        metro = get_metro("metro_4cell")
        assert len(metro.cells) == 4
        assert isinstance(metro.mobility, ShuffleMobility)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown metro"):
            get_metro("atlantis")
