"""Tests for experiment configuration objects and their JSON round-trip."""

import pytest

from repro.config import (
    KNOWN_SCHEMES,
    ExperimentConfig,
    WorkloadConfig,
    load_config,
    save_config,
)


class TestWorkloadConfig:
    def test_default_is_valid_application_workload(self):
        workload = WorkloadConfig()
        assert workload.kind == "application"
        trace = workload.build_trace()
        assert len(trace) > 0

    def test_application_workload_is_deterministic(self):
        first = WorkloadConfig(name="im", duration_s=600.0, seed=5).build_trace()
        second = WorkloadConfig(name="im", duration_s=600.0, seed=5).build_trace()
        assert first == second

    def test_user_workload_builds(self):
        workload = WorkloadConfig(kind="user", name="verizon_3g", user_id=1,
                                  duration_s=1800.0)
        trace = workload.build_trace()
        assert len(trace) > 0

    def test_tcpdump_workload_builds(self, tmp_path):
        log = tmp_path / "log.txt"
        log.write_text(
            "0.0 IP 10.0.0.2.1 > 8.8.8.8.53: tcp 100\n"
            "5.0 IP 8.8.8.8.53 > 10.0.0.2.1: tcp 200\n",
            encoding="utf-8",
        )
        workload = WorkloadConfig(kind="tcpdump", path=str(log))
        assert len(workload.build_trace()) == 2

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            WorkloadConfig(kind="carrier-pigeon")

    def test_unknown_application(self):
        with pytest.raises(ValueError):
            WorkloadConfig(kind="application", name="netflix")

    def test_unknown_population(self):
        with pytest.raises(ValueError):
            WorkloadConfig(kind="user", name="mars_base")

    def test_capture_requires_path(self):
        with pytest.raises(ValueError):
            WorkloadConfig(kind="pcap", path="")

    def test_invalid_duration_and_user(self):
        with pytest.raises(ValueError):
            WorkloadConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            WorkloadConfig(kind="user", name="verizon_3g", user_id=0)


class TestExperimentConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.carrier == "att_hspa"
        assert "status_quo" in config.schemes

    def test_known_schemes_include_all_standard_policies(self):
        from repro.core import standard_policies

        for scheme in standard_policies():
            assert scheme in KNOWN_SCHEMES

    def test_unknown_carrier_and_scheme_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(carrier="sprint_5g")
        with pytest.raises(ValueError):
            ExperimentConfig(schemes=("status_quo", "magic"))

    def test_baseline_scheme_required(self):
        with pytest.raises(ValueError):
            ExperimentConfig(schemes=("makeidle",))
        with pytest.raises(ValueError):
            ExperimentConfig(schemes=())

    def test_window_size_validated(self):
        with pytest.raises(ValueError):
            ExperimentConfig(window_size=1)

    def test_with_carrier(self):
        config = ExperimentConfig().with_carrier("verizon_lte")
        assert config.carrier == "verizon_lte"

    def test_dict_round_trip(self):
        config = ExperimentConfig(
            carrier="verizon_3g",
            workload=WorkloadConfig(kind="user", name="verizon_3g", user_id=2,
                                    duration_s=7200.0, seed=11),
            schemes=("status_quo", "makeidle", "oracle"),
            window_size=50,
            label="figure-10",
        )
        restored = ExperimentConfig.from_dict(config.to_dict())
        assert restored == config

    def test_json_round_trip(self, tmp_path):
        config = ExperimentConfig(label="headline")
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError):
            load_config(path)


class TestPlanPersistence:
    def test_save_and_load_plan_round_trip(self, tmp_path):
        from repro.api import plan
        from repro.config import load_plan, save_plan

        original = (plan()
                    .apps("email", duration=900.0, seed=3)
                    .carriers("att_hspa", "verizon_lte")
                    .policies("status_quo", "makeidle")
                    .window_size(40)
                    .repeat(seeds=(0, 1))
                    .labelled("persisted"))
        path = tmp_path / "plan.json"
        save_plan(original, path)
        restored = load_plan(path)
        assert restored == original
        assert restored.build() == original.build()

    def test_load_plan_rejects_non_object(self, tmp_path):
        import pytest

        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        from repro.config import load_plan

        with pytest.raises(ValueError):
            load_plan(path)

    def test_experiment_config_lifts_to_plan(self):
        from repro.config import ExperimentConfig, WorkloadConfig

        config = ExperimentConfig(
            carrier="verizon_lte",
            workload=WorkloadConfig(kind="user", name="verizon_3g",
                                    user_id=2, duration_s=1800.0, seed=4),
            schemes=("status_quo", "makeidle", "oracle"),
            window_size=60,
            label="legacy",
        )
        lifted = config.to_plan()
        assert len(lifted) == 3
        specs = lifted.build()
        assert {s.carrier for s in specs} == {"verizon_lte"}
        assert specs[0].trace.kind == "user"
        assert specs[0].trace.user_id == 2
        assert {s.policy.scheme for s in specs} == {
            "status_quo", "makeidle", "oracle"
        }
        assert all(s.policy.window_size in (None, 60) for s in specs)
