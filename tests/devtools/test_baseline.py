"""Baseline round-trips: grandfathered findings pass, stale entries are
reported, matching is a consume-once multiset, and notes survive rewrite."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import Baseline, BaselineError, LintEngine, build_rules
from repro.devtools.lint.baseline import BASELINE_VERSION, BaselineEntry

from .conftest import fixture_text, lint_source, plant

SIM = "src/repro/sim/fixture_mod.py"


def _violations(tmp_path, baseline=None):
    return lint_source(
        tmp_path, SIM, fixture_text("left-fold", "bad"), baseline=baseline
    )


def test_baseline_round_trip(tmp_path):
    first = _violations(tmp_path)
    assert len(first.violations) == 1

    path = tmp_path / ".repro-lint-baseline.json"
    Baseline.from_findings(first.violations).write(path)

    loaded = Baseline.load(path)
    assert len(loaded) == 1
    second = _violations(tmp_path, baseline=loaded)
    assert second.violations == []
    assert len(second.baselined) == 1
    assert second.stale_baseline == []
    assert second.exit_code == 0


def test_baseline_matches_on_context_not_line_numbers(tmp_path):
    first = _violations(tmp_path)
    path = tmp_path / ".repro-lint-baseline.json"
    Baseline.from_findings(first.violations).write(path)

    # Prepend lines: every line number shifts, the stripped context does not.
    shifted = "# shifted\n# down\n" + fixture_text("left-fold", "bad")
    result = lint_source(tmp_path, SIM, shifted, baseline=Baseline.load(path))
    assert result.violations == []
    assert len(result.baselined) == 1


def test_stale_entry_reported_once_fixed(tmp_path):
    entry = BaselineEntry(
        rule="left-fold", path=SIM, context="return math.fsum(values)"
    )
    result = lint_source(
        tmp_path, SIM, fixture_text("left-fold", "good"),
        baseline=Baseline([entry]),
    )
    assert result.violations == []
    assert result.stale_baseline == [entry]


def test_baseline_is_a_consume_once_multiset(tmp_path):
    source = (
        "def totals(a, b):\n"
        "    x = sum(a)\n"
        "    y = sum(a)\n"
        "    return x + y\n"
    )
    entry = BaselineEntry(rule="left-fold", path=SIM, context="x = sum(a)")
    # one entry cannot cover two identical findings... but these differ in
    # context anyway; duplicate-context coverage needs duplicate entries:
    dup_source = (
        "def totals(a):\n"
        "    t = sum(a)\n"
        "    t = sum(a)\n"
        "    return t\n"
    )
    one = lint_source(
        tmp_path, SIM, dup_source,
        baseline=Baseline([BaselineEntry("left-fold", SIM, "t = sum(a)")]),
    )
    assert len(one.violations) == 1
    assert len(one.baselined) == 1

    two = lint_source(
        tmp_path, SIM, dup_source,
        baseline=Baseline(
            [
                BaselineEntry("left-fold", SIM, "t = sum(a)"),
                BaselineEntry("left-fold", SIM, "t = sum(a)"),
            ]
        ),
    )
    assert two.violations == []
    assert len(two.baselined) == 2

    partial = lint_source(tmp_path, SIM, source, baseline=Baseline([entry]))
    assert len(partial.baselined) == 1
    assert len(partial.violations) == 1


def test_from_findings_carries_notes_over(tmp_path):
    first = _violations(tmp_path)
    noted = Baseline(
        [
            BaselineEntry(
                rule=f.rule, path=f.path, context=f.context, note="tracked debt"
            )
            for f in first.violations
        ]
    )
    rebuilt = Baseline.from_findings(first.violations, previous=noted)
    assert [e.note for e in rebuilt.entries] == ["tracked debt"]


def test_load_missing_file_is_empty():
    baseline = Baseline.load(Path("/no/such/baseline"))
    assert len(baseline) == 0


@pytest.mark.parametrize(
    "payload",
    [
        "not json at all",
        json.dumps({"version": BASELINE_VERSION + 1, "entries": []}),
        json.dumps([1, 2, 3]),
        json.dumps({"version": BASELINE_VERSION, "entries": ["nope"]}),
        json.dumps({"version": BASELINE_VERSION, "entries": [{"rule": "x"}]}),
    ],
)
def test_load_rejects_malformed_baselines(tmp_path, payload):
    path = tmp_path / "bad.json"
    path.write_text(payload, encoding="utf-8")
    with pytest.raises(BaselineError):
        Baseline.load(path)


def test_written_baseline_is_deterministic(tmp_path):
    plant(tmp_path, SIM, fixture_text("left-fold", "bad"))
    engine = LintEngine(root=tmp_path, rules=build_rules())
    result = engine.run([Path(SIM)])
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    Baseline.from_findings(result.violations).write(a)
    Baseline.from_findings(list(reversed(result.violations))).write(b)
    assert a.read_bytes() == b.read_bytes()
