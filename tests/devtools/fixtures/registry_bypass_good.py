"""Negative fixture: registry construction (registry-bypass stays quiet)."""

from repro.core.controller import build_scheme


def build():
    return build_scheme("makeidle", 50)
