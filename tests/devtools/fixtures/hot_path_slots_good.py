"""Negative fixture: slotted dataclass, direct construction (quiet)."""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Event:
    time: float
    size: int


def shift(event: Event, dt: float) -> Event:
    return Event(time=event.time + dt, size=event.size)
