"""Positive fixture: ambient entropy (kernel-nondeterminism must fire)."""

import random
import time


def jitter() -> float:
    return random.random() + time.time()


def label(name: str) -> int:
    return hash(name)
