"""Positive fixture: undocumented exact float equality (float-eq fires)."""


def at_boundary(gap: float) -> bool:
    return gap == 0.0
