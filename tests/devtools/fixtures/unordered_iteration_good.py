"""Negative fixture: sorted before iterating (unordered-iteration quiet)."""


def emit(ids: list[str]) -> list[str]:
    out = []
    for device in sorted(set(ids)):
        out.append(device)
    return out
