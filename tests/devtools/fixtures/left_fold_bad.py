"""Positive fixture: compensated summation (left-fold must fire)."""

import math


def total_energy(values: list[float]) -> float:
    return math.fsum(values)
