"""Positive fixture: one policy aliased across devices (must fire)."""


def assign(policy, ids):
    return [policy] * len(ids)


def assign_comp(policy, ids):
    return [policy for _ in ids]
