"""Negative fixture: hashed seed derivation (seed-stride must stay quiet).

The crc32 call's arguments are exempt even though the seed appears inside
an f-string expression, and range-folding with ``%`` is not a stride.
"""

import zlib


def derive(namespace: str, seed: int, index: int) -> int:
    digest = zlib.crc32(f"{namespace}/{seed}/{index}".encode("utf-8"))
    return digest % 2**31
