"""Negative fixture: ordering comparison instead (float-eq stays quiet)."""


def at_boundary(gap: float) -> bool:
    return gap <= 0.0
