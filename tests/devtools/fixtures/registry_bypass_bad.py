"""Positive fixture: direct policy construction (registry-bypass fires)."""

from repro.core.makeidle import MakeIdlePolicy


def build():
    return MakeIdlePolicy(window_size=50)
