"""Positive fixture: unslotted kernel dataclass plus replace() on the
packet path (hot-path-slots must fire twice)."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Event:
    time: float
    size: int


def shift(event: Event, dt: float) -> Event:
    return replace(event, time=event.time + dt)
