"""Positive fixture: set iteration (unordered-iteration must fire)."""


def emit(ids: list[str]) -> list[str]:
    out = []
    for device in set(ids):
        out.append(device)
    return out
