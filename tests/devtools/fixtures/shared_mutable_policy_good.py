"""Negative fixture: a fresh policy per device (stays quiet)."""

from repro.core.controller import build_scheme


def assign(scheme: str, ids):
    return [build_scheme(scheme, 100) for _ in ids]
