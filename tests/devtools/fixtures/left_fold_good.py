"""Negative fixture: explicit left fold (left-fold must stay quiet)."""


def total_energy(values: list[float]) -> float:
    total = 0.0
    for value in values:
        total += value
    return total
