"""Negative fixture: seeded entropy only (kernel-nondeterminism quiet)."""

import random
import zlib


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()


def label(name: str) -> int:
    return zlib.crc32(name.encode("utf-8"))
