"""Positive fixture: strided seed derivation (seed-stride must fire)."""


def derive(seed: int, index: int) -> int:
    return seed + 13 * index
