"""Meta-tests against the live repository.

These are the tests that make the linter a CI gate rather than a toy:
the shipped tree must lint clean against the committed baseline, the
baseline must carry no stale (already-paid) debt, and seeding a single
contract violation into a copy of the tree must turn the gate red.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.devtools.lint.baseline import DEFAULT_BASELINE_NAME
from repro.devtools.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
LIVE_TARGETS = ["src", "tools", "benchmarks"]


def test_live_tree_lints_clean_against_committed_baseline(capsys):
    argv = ["--root", str(REPO_ROOT), "--format", "json", *LIVE_TARGETS]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["violations"] == []
    assert len(payload["active_rules"]) >= 8
    assert payload["files_checked"] > 50
    # every committed baseline entry still matches a real finding — the
    # file never carries already-paid debt
    assert payload["stale_baseline"] == []
    # every committed suppression carries its reason
    for item in payload["suppressed"]:
        assert item["reason"], item


def test_seeded_violation_turns_the_gate_red(tmp_path, capsys):
    shutil.copytree(
        REPO_ROOT / "src",
        tmp_path / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    shutil.copy(
        REPO_ROOT / DEFAULT_BASELINE_NAME, tmp_path / DEFAULT_BASELINE_NAME
    )
    argv = ["--root", str(tmp_path), "--format", "json", "src"]

    # the copied tree is clean...
    assert main(argv) == 0
    capsys.readouterr()

    # ...until one strided seed derivation sneaks in
    seeded = tmp_path / "src/repro/traces/seeded_violation.py"
    seeded.write_text(
        "def derive(seed, index):\n    return seed + 13 * index\n",
        encoding="utf-8",
    )
    assert main(argv) == 1
    payload = json.loads(capsys.readouterr().out)
    (violation,) = payload["violations"]
    assert violation["rule"] == "seed-stride"
    assert violation["path"] == "src/repro/traces/seeded_violation.py"


def test_linter_never_imports_the_analyzed_package():
    """The CI invocation path runs the linter without importing repro.

    With ``PYTHONPATH=src/repro`` the lint package is importable as the
    top-level ``devtools`` package, so linting the tree touches neither
    ``repro`` nor numpy — which is exactly how the no-dependency CI legs
    invoke it.
    """
    code = textwrap.dedent(
        """
        import sys
        from devtools.lint import cli
        rc = cli.main(["--root", sys.argv[1], "src", "tools", "benchmarks"])
        assert "repro" not in sys.modules, "linter imported the analyzed package"
        assert "numpy" not in sys.modules, "linter imported numpy"
        sys.exit(rc)
        """
    )
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src" / "repro"))
    env.pop("GITHUB_ACTIONS", None)
    proc = subprocess.run(
        [sys.executable, "-c", code, str(REPO_ROOT)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violations" in proc.stdout


def test_module_invocation_entry_point():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    assert "seed-stride" in proc.stdout
