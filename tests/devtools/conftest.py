"""Shared fixtures for the repro-lint test suite.

The linter is pure static analysis, so every test works the same way: plant
source text at a rule-scoped path inside a throwaway root, run the engine,
and inspect the partitioned :class:`~repro.devtools.lint.engine.LintResult`.
Fixture modules (one positive, one negative per rule) live in
``tests/devtools/fixtures/`` — they are data, not importable test code.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import Baseline, LintEngine, build_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: Where each rule's fixture must live for the rule's scope to apply.
RULE_TARGETS = {
    "seed-stride": "src/repro/traces/fixture_mod.py",
    "left-fold": "src/repro/sim/fixture_mod.py",
    "kernel-nondeterminism": "src/repro/core/fixture_mod.py",
    "unordered-iteration": "src/repro/sim/fixture_mod.py",
    "float-eq": "src/repro/sim/fixture_mod.py",
    "registry-bypass": "src/repro/api/fixture_mod.py",
    "hot-path-slots": "src/repro/sim/fixture_mod.py",
    "shared-mutable-policy": "src/repro/api/fixture_mod.py",
}

#: A path where the same fixture must NOT fire (outside the rule's scope).
RULE_OUT_OF_SCOPE = {
    "seed-stride": "src/repro/sim/fixture_mod.py",
    "left-fold": "src/repro/traces/fixture_mod.py",
    "kernel-nondeterminism": "src/repro/analysis/fixture_mod.py",
    "unordered-iteration": "src/repro/analysis/fixture_mod.py",
    "float-eq": "benchmarks/fixture_mod.py",
    "registry-bypass": "src/repro/core/fixture_mod.py",
    "hot-path-slots": "src/repro/analysis/fixture_mod.py",
    "shared-mutable-policy": "tools/fixture_mod.py",
}


def fixture_text(rule_id: str, kind: str) -> str:
    """The committed fixture source for ``rule_id`` (kind: 'bad'/'good')."""
    return (FIXTURES / f"{rule_id.replace('-', '_')}_{kind}.py").read_text(
        encoding="utf-8"
    )


def plant(root: Path, relpath: str, source: str) -> Path:
    target = root / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


def lint_source(
    root: Path,
    relpath: str,
    source: str,
    baseline: Baseline | None = None,
    select: list[str] | None = None,
):
    """Plant ``source`` at ``relpath`` under ``root`` and lint just it."""
    plant(root, relpath, source)
    engine = LintEngine(
        root=root, rules=build_rules(select=select), baseline=baseline
    )
    return engine.run([Path(relpath)])


@pytest.fixture(autouse=True)
def _no_github_annotations(monkeypatch):
    """Keep CLI runs in tests from auto-enabling workflow annotations."""
    monkeypatch.delenv("GITHUB_ACTIONS", raising=False)
