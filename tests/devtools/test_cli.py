"""CLI behaviour: exit codes, reporters, rule selection, baseline flags."""

from __future__ import annotations

import json

import pytest

from repro.devtools.lint.cli import main

from .conftest import fixture_text, plant

SIM = "src/repro/sim/fixture_mod.py"


def _tree(tmp_path, kind):
    plant(tmp_path, SIM, fixture_text("left-fold", kind))
    return ["--root", str(tmp_path), "src"]


def test_clean_tree_exits_zero(tmp_path, capsys):
    assert main(_tree(tmp_path, "good")) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_violation_exits_one_with_location_and_hint(tmp_path, capsys):
    assert main(_tree(tmp_path, "bad")) == 1
    out = capsys.readouterr().out
    assert f"{SIM}:" in out
    assert "[left-fold]" in out
    assert "fix:" in out
    assert "contract: DESIGN.md" in out


def test_json_report_structure(tmp_path, capsys):
    argv = _tree(tmp_path, "bad")
    assert main(argv + ["--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["exit_code"] == 1
    assert payload["files_checked"] == 1
    assert "left-fold" in payload["active_rules"]
    (violation,) = payload["violations"]
    assert violation["rule"] == "left-fold"
    assert violation["path"] == SIM
    assert violation["line"] >= 1
    assert violation["contract"].startswith("DESIGN.md")
    assert payload["stale_baseline"] == []


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "seed-stride",
        "left-fold",
        "kernel-nondeterminism",
        "unordered-iteration",
        "float-eq",
        "registry-bypass",
        "hot-path-slots",
        "shared-mutable-policy",
    ):
        assert rule_id in out


def test_select_and_ignore(tmp_path):
    argv = _tree(tmp_path, "bad")
    assert main(argv + ["--select", "float-eq"]) == 0
    assert main(argv + ["--select", "left-fold,float-eq"]) == 1
    assert main(argv + ["--ignore", "left-fold"]) == 0


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(_tree(tmp_path, "bad") + ["--select", "no-such-rule"])
    assert excinfo.value.code == 2
    capsys.readouterr()


def test_missing_target_is_usage_error(tmp_path, capsys):
    assert main(["--root", str(tmp_path), "no-such-dir"]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    (tmp_path / ".repro-lint-baseline.json").write_text("not json")
    assert main(_tree(tmp_path, "good")) == 2
    assert "baseline" in capsys.readouterr().err


def test_write_baseline_then_clean_run(tmp_path, capsys):
    argv = _tree(tmp_path, "bad")
    assert main(argv) == 1
    capsys.readouterr()

    assert main(argv + ["--write-baseline"]) == 0
    assert (tmp_path / ".repro-lint-baseline.json").exists()
    capsys.readouterr()

    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_no_baseline_flag_surfaces_grandfathered_findings(tmp_path, capsys):
    argv = _tree(tmp_path, "bad")
    assert main(argv + ["--write-baseline"]) == 0
    capsys.readouterr()
    assert main(argv) == 0
    assert main(argv + ["--no-baseline"]) == 1


def test_github_annotations_on_stderr(tmp_path, capsys):
    argv = _tree(tmp_path, "bad")
    assert main(argv + ["--github-annotations"]) == 1
    captured = capsys.readouterr()
    assert "::error file=" in captured.err
    assert f"file={SIM}" in captured.err


def test_github_annotations_auto_enabled_in_actions(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("GITHUB_ACTIONS", "true")
    assert main(_tree(tmp_path, "bad")) == 1
    assert "::error file=" in capsys.readouterr().err
