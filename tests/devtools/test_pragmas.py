"""Suppression-pragma behaviour: reasons are mandatory, suppression is
per-line and per-rule, and engine-level findings cannot excuse themselves."""

from __future__ import annotations

from repro.devtools.lint.pragmas import (
    UNSUPPRESSABLE,
    Pragma,
    scan_pragmas,
    suppresses,
)

from .conftest import lint_source

SIM = "src/repro/sim/fixture_mod.py"


def test_pragma_with_reason_suppresses(tmp_path):
    source = (
        "import math\n"
        "\n"
        "def total(values):\n"
        "    return math.fsum(values)"
        "  # repro-lint: allow[left-fold] reason=reference fold for tests\n"
    )
    result = lint_source(tmp_path, SIM, source)
    assert result.violations == []
    assert len(result.suppressed) == 1
    finding, pragma = result.suppressed[0]
    assert finding.rule == "left-fold"
    assert pragma.reason == "reference fold for tests"
    assert result.exit_code == 0


def test_pragma_without_reason_is_bad_pragma(tmp_path):
    source = (
        "import math\n"
        "\n"
        "def total(values):\n"
        "    return math.fsum(values)  # repro-lint: allow[left-fold]\n"
    )
    result = lint_source(tmp_path, SIM, source)
    fired = {f.rule for f in result.violations}
    # the malformed pragma suppresses nothing: both findings surface
    assert fired == {"bad-pragma", "left-fold"}
    assert result.exit_code == 1


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    source = (
        "import math\n"
        "\n"
        "def total(values):\n"
        "    return math.fsum(values)"
        "  # repro-lint: allow[float-eq] reason=wrong rule on purpose\n"
    )
    result = lint_source(tmp_path, SIM, source)
    assert {f.rule for f in result.violations} == {"left-fold"}
    # the pragma suppressed nothing, so it is reported as unused
    assert [(path, p.line) for path, p in result.unused_pragmas] == [(SIM, 4)]


def test_pragma_suppresses_multiple_listed_rules(tmp_path):
    source = (
        "def check(gap, values):\n"
        "    return sum(values) if gap == 0.0 else 0.0"
        "  # repro-lint: allow[left-fold,float-eq] reason=test both on one line\n"
    )
    result = lint_source(tmp_path, SIM, source)
    assert result.violations == []
    assert {f.rule for f, _ in result.suppressed} == {"left-fold", "float-eq"}


def test_unused_pragma_reported(tmp_path):
    source = (
        "x = 1  # repro-lint: allow[left-fold] reason=nothing to suppress\n"
    )
    result = lint_source(tmp_path, SIM, source)
    assert result.violations == []
    assert len(result.unused_pragmas) == 1


def test_unsuppressable_findings():
    assert UNSUPPRESSABLE == frozenset({"bad-pragma", "parse-error"})
    pragma = Pragma(line=1, rules=("bad-pragma", "parse-error"), reason="no")
    assert not suppresses(pragma, "bad-pragma")
    assert not suppresses(pragma, "parse-error")
    assert pragma.used == 0


def test_scan_pragmas_grammar():
    table, bad = scan_pragmas(
        [
            "a = 1  # repro-lint: allow[rule-a] reason=fine",
            "b = 2  # repro-lint: allow[rule-a, rule-b] reason=two rules",
            "c = 3  # repro-lint: allow[] reason=no rules",
            "d = 4  # repro-lint: allowed[rule-a] reason=typo",
        ]
    )
    assert set(table) == {1, 2}
    assert table[2].rules == ("rule-a", "rule-b")
    assert len(bad) == 2
    assert all(f.rule == "bad-pragma" for f in bad)
