"""Per-rule fixture tests: every rule fires on its positive fixture at a
scoped path, stays quiet on its negative fixture, and stays quiet when the
positive fixture sits outside the rule's scope."""

from __future__ import annotations

import pytest

from repro.devtools.lint import ALL_RULES, build_rules, rule_ids

from .conftest import RULE_OUT_OF_SCOPE, RULE_TARGETS, fixture_text, lint_source

EXPECTED_RULES = (
    "seed-stride",
    "left-fold",
    "kernel-nondeterminism",
    "unordered-iteration",
    "float-eq",
    "registry-bypass",
    "hot-path-slots",
    "shared-mutable-policy",
)


def test_rule_registry_is_complete():
    assert tuple(rule_ids()) == EXPECTED_RULES
    assert len(ALL_RULES) >= 8


def test_every_rule_carries_contract_and_hint():
    for cls in ALL_RULES:
        assert cls.contract.startswith("DESIGN.md"), cls.id
        assert cls.hint, cls.id
        assert cls.title, cls.id
        assert cls.scope, cls.id


@pytest.mark.parametrize("rule_id", EXPECTED_RULES)
def test_positive_fixture_fires(tmp_path, rule_id):
    result = lint_source(
        tmp_path, RULE_TARGETS[rule_id], fixture_text(rule_id, "bad")
    )
    fired = {f.rule for f in result.violations}
    assert rule_id in fired
    finding = next(f for f in result.violations if f.rule == rule_id)
    assert finding.contract.startswith("DESIGN.md")
    assert finding.hint
    assert finding.line >= 1
    assert finding.path == RULE_TARGETS[rule_id]
    # context is the stripped flagged source line (baseline match key)
    assert finding.context
    assert finding.context in fixture_text(rule_id, "bad")


@pytest.mark.parametrize("rule_id", EXPECTED_RULES)
def test_negative_fixture_is_clean(tmp_path, rule_id):
    result = lint_source(
        tmp_path, RULE_TARGETS[rule_id], fixture_text(rule_id, "good")
    )
    assert result.violations == []
    assert result.files_checked == 1


@pytest.mark.parametrize("rule_id", EXPECTED_RULES)
def test_positive_fixture_out_of_scope_is_quiet(tmp_path, rule_id):
    result = lint_source(
        tmp_path,
        RULE_OUT_OF_SCOPE[rule_id],
        fixture_text(rule_id, "bad"),
        select=[rule_id],
    )
    assert {f.rule for f in result.violations} == set()


def test_multiple_findings_in_one_file(tmp_path):
    result = lint_source(
        tmp_path,
        "src/repro/sim/fixture_mod.py",
        fixture_text("hot-path-slots", "bad"),
    )
    messages = [f.message for f in result.violations]
    assert any("does not declare" in m for m in messages)
    assert any("dataclasses.replace" in m for m in messages)


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    result = lint_source(
        tmp_path, "src/repro/sim/broken.py", "def broken(:\n    pass\n"
    )
    assert [f.rule for f in result.violations] == ["parse-error"]
    assert result.exit_code == 1


def test_build_rules_select_and_ignore():
    only = build_rules(select=["left-fold"])
    assert [r.id for r in only] == ["left-fold"]
    rest = build_rules(ignore=["left-fold"])
    assert "left-fold" not in [r.id for r in rest]
    assert len(rest) == len(ALL_RULES) - 1
    with pytest.raises(ValueError):
        build_rules(select=["no-such-rule"])
    with pytest.raises(ValueError):
        build_rules(ignore=["no-such-rule"])
