"""Stream-validation atomicity: a mis-ordered iterator cannot corrupt results.

The kernel validates that every per-UE packet stream is time-ordered.  A
violation used to surface as a bare ``ValueError`` thrown mid-run with the
attached contexts (and their load counters) already partially mutated —
an engine-level caller holding those contexts could have read a partial
timeline into a shard merge.  Now the failure is *atomic*: the kernel
raises :class:`~repro.sim.engine.StreamOrderError` (still a
``ValueError``), no :class:`~repro.sim.engine.KernelResult` is produced,
and every attached context is poisoned — its folded totals and breakdown
raise instead of exposing partial state.
"""

from __future__ import annotations

import pytest

from repro.basestation.cell import (
    CellSimulator,
    DeviceSpec,
    merge_cell_shards,
)
from repro.core import FixedTimerPolicy, StatusQuoPolicy
from repro.rrc.profiles import get_profile
from repro.sim.engine import SimulationEngine, StreamOrderError, UeContext
from repro.traces.packet import Direction, Packet, PacketTrace


def _packets(*stamps: float) -> list[Packet]:
    return [Packet(t, 100, Direction.DOWNLINK, 0, "t") for t in stamps]


@pytest.fixture
def att_hspa():
    return get_profile("att_hspa")


class TestStreamOrderError:
    def test_is_a_value_error(self):
        assert issubclass(StreamOrderError, ValueError)

    def test_mis_ordered_stream_raises(self, att_hspa):
        engine = SimulationEngine(att_hspa)
        ue = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        with pytest.raises(StreamOrderError, match="not time-ordered"):
            engine.run({0: iter(_packets(5.0, 30.0, 10.0))}, {0: ue})

    def test_block_source_also_validated(self, att_hspa):
        # A PacketTrace sorts itself, so build a raw block source instead.
        class BadBlocks:
            def packet_blocks(self):
                yield _packets(5.0, 30.0)
                yield _packets(10.0)

        engine = SimulationEngine(att_hspa)
        ue = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        with pytest.raises(StreamOrderError):
            engine.run({0: BadBlocks()}, {0: ue})

    def test_abort_poisons_every_context(self, att_hspa):
        engine = SimulationEngine(att_hspa)
        bad = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        good = UeContext(1, att_hspa, StatusQuoPolicy(), collect=False)
        with pytest.raises(StreamOrderError):
            engine.run(
                {0: iter(_packets(5.0, 30.0, 10.0)),
                 1: iter(_packets(1.0, 2.0, 3.0))},
                {0: bad, 1: good},
            )
        # No partial timeline is observable from either context.
        for ue in (bad, good):
            with pytest.raises(RuntimeError, match="aborted"):
                ue.folded_totals()
            with pytest.raises(RuntimeError, match="aborted"):
                ue.build_breakdown(att_hspa)

    def test_policy_error_also_aborts_atomically(self, att_hspa):
        class NegativeDelay(StatusQuoPolicy):
            def activation_delay(self, now: float) -> float:
                return -1.0

        engine = SimulationEngine(att_hspa)
        ue = UeContext(0, att_hspa, NegativeDelay(), collect=False)
        with pytest.raises(ValueError, match="negative"):
            engine.run({0: iter(_packets(1.0))}, {0: ue})
        with pytest.raises(RuntimeError, match="aborted"):
            ue.folded_totals()


class TestShardMergeCannotBeCorrupted:
    def test_bad_shard_produces_no_partial(self, att_hspa):
        simulator = CellSimulator(att_hspa)
        bad_devices = [
            DeviceSpec(device_id=0, trace=iter(_packets(5.0, 30.0, 10.0)),
                       policy=FixedTimerPolicy(2.0)),
        ]
        with pytest.raises(StreamOrderError):
            simulator.run_shard(bad_devices)

    def test_good_shards_unaffected_by_failed_sibling(self, att_hspa):
        trace_a = PacketTrace(_packets(1.0, 2.0, 40.0))
        trace_b = PacketTrace(_packets(3.0, 9.0))

        # Reference: the two good devices as one unsharded cell.
        reference = CellSimulator(att_hspa).run([
            DeviceSpec(0, trace_a, FixedTimerPolicy(2.0)),
            DeviceSpec(1, trace_b, FixedTimerPolicy(2.0)),
        ])

        # A sibling shard dies on a mis-ordered stream; the good shards
        # merge to byte-identical per-device records regardless.
        shards = [
            CellSimulator(att_hspa).run_shard(
                [DeviceSpec(0, trace_a, FixedTimerPolicy(2.0))]
            ),
            CellSimulator(att_hspa).run_shard(
                [DeviceSpec(1, trace_b, FixedTimerPolicy(2.0))]
            ),
        ]
        with pytest.raises(StreamOrderError):
            CellSimulator(att_hspa).run_shard([
                DeviceSpec(2, iter(_packets(7.0, 3.0)),
                           FixedTimerPolicy(2.0)),
            ])

        merged = merge_cell_shards(shards)
        assert merged.devices == reference.devices
        assert merged.signaling == reference.signaling

    def test_aborted_machine_refuses_further_events(self, att_hspa):
        engine = SimulationEngine(att_hspa)
        ue = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        with pytest.raises(StreamOrderError):
            engine.run({0: iter(_packets(5.0, 30.0, 10.0))}, {0: ue})
        assert ue.machine.finished
        with pytest.raises(RuntimeError):
            ue.machine.finish(100.0)  # cannot be closed into a "complete" run
        with pytest.raises(RuntimeError, match="aborted"):
            _ = ue.promotions  # switch-count accessors are poisoned too
