"""Tests for the trace-driven simulator."""

from __future__ import annotations

import pytest

from repro.core import (
    CombinedPolicy,
    FixedDelayMakeActive,
    FixedTimerPolicy,
    MakeIdlePolicy,
    OraclePolicy,
    RadioPolicy,
    StatusQuoPolicy,
)
from repro.energy import TailEnergyModel
from repro.rrc import RadioState, SwitchKind
from repro.sim import TraceSimulator
from repro.traces import Direction, Packet, PacketTrace


class TestStatusQuoSemantics:
    def test_empty_trace(self, att_profile):
        result = TraceSimulator(att_profile).run(PacketTrace([]), StatusQuoPolicy())
        assert result.total_energy_j >= 0.0
        assert result.switch_count == 0
        assert len(result.effective_trace) == 0

    def test_single_packet_pays_full_tail(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100, Direction.UPLINK)])
        result = TraceSimulator(att_profile).run(trace, StatusQuoPolicy())
        expected_tail = TailEnergyModel(att_profile).full_tail_energy
        assert result.breakdown.tail_j == pytest.approx(expected_tail, rel=0.02)

    def test_status_quo_never_uses_fast_dormancy(self, att_profile, heartbeat_trace):
        result = TraceSimulator(att_profile).run(heartbeat_trace, StatusQuoPolicy())
        assert all(s.kind is not SwitchKind.FAST_DORMANCY for s in result.switches)

    def test_effective_trace_equals_input_without_makeactive(
        self, att_profile, heartbeat_trace
    ):
        result = TraceSimulator(att_profile).run(heartbeat_trace, StatusQuoPolicy())
        assert result.effective_trace == heartbeat_trace

    def test_two_packets_within_t1_no_demotion(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100), Packet(att_profile.t1 / 2, 100)])
        result = TraceSimulator(att_profile).run(trace, StatusQuoPolicy())
        demotions_between = [
            s for s in result.switches
            if s.is_demotion and 0.0 < s.time < att_profile.t1 / 2
        ]
        assert not demotions_between

    def test_gap_energy_matches_piecewise_model(self, att_profile):
        """Status-quo tail energy over one gap equals E(t) from Section 4.1."""
        gap = att_profile.t1 + att_profile.t2 / 2  # lands in the FACH region
        trace = PacketTrace([Packet(0.0, 100), Packet(gap, 100)])
        simulator = TraceSimulator(att_profile, trailing_time=0.0)
        result = simulator.run(trace, StatusQuoPolicy())
        model = TailEnergyModel(att_profile)
        expected = model.wait_energy(gap)
        assert result.breakdown.tail_j == pytest.approx(expected, rel=0.05)


class TestDormancySemantics:
    def test_fixed_timer_switch_time(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100), Packet(100.0, 100)])
        result = TraceSimulator(att_profile).run(trace, FixedTimerPolicy(2.0))
        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        assert dormancy
        assert dormancy[0].time == pytest.approx(2.0)

    def test_wait_cancelled_by_earlier_packet(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100), Packet(1.0, 100), Packet(100.0, 100)])
        result = TraceSimulator(att_profile).run(trace, FixedTimerPolicy(2.0))
        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        # Only after the 1.0 s packet (at 3.0 s) and after the last packet.
        assert [pytest.approx(3.0), pytest.approx(102.0)] == [s.time for s in dormancy]

    def test_oracle_switches_immediately(self, att_profile, simple_trace):
        result = TraceSimulator(att_profile).run(simple_trace, OraclePolicy())
        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        assert dormancy[0].time == pytest.approx(0.2)

    def test_negative_activation_delay_rejected(self, att_profile, simple_trace):
        class BadPolicy(RadioPolicy):
            name = "bad"

            def activation_delay(self, now):
                return -1.0

        with pytest.raises(ValueError):
            TraceSimulator(att_profile).run(simple_trace, BadPolicy())

    def test_pending_dormancy_applied_after_trace_end(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100)])
        result = TraceSimulator(att_profile).run(trace, FixedTimerPolicy(2.0))
        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        assert len(dormancy) == 1
        assert dormancy[0].time == pytest.approx(2.0)


class TestMakeActiveSemantics:
    def make_policy(self, bound):
        return CombinedPolicy(
            MakeIdlePolicy(window_size=20), FixedDelayMakeActive(delay_bound=bound)
        )

    def test_buffered_sessions_released_together(self, att_profile):
        trace = PacketTrace(
            [
                Packet(0.0, 100, flow_id=1),
                Packet(100.0, 100, flow_id=2),
                Packet(102.0, 100, flow_id=3),
            ]
        )
        result = TraceSimulator(att_profile).run(trace, self.make_policy(5.0))
        # Both late sessions are promoted in one go at 105.0.
        released = [p.timestamp for p in result.effective_trace if p.timestamp > 50.0]
        assert released == [pytest.approx(105.0), pytest.approx(105.0)]
        promotions = [s for s in result.switches if s.is_promotion and s.time > 50.0]
        assert len(promotions) == 1

    def test_delays_recorded_per_session(self, att_profile):
        trace = PacketTrace(
            [
                Packet(0.0, 100, flow_id=1),
                Packet(100.0, 100, flow_id=2),
                Packet(102.0, 100, flow_id=3),
            ]
        )
        result = TraceSimulator(att_profile).run(trace, self.make_policy(5.0))
        late = sorted(d.delay for d in result.session_delays if d.arrival_time > 50.0)
        assert late == [pytest.approx(3.0), pytest.approx(5.0)]

    def test_effective_times_never_precede_originals(self, att_profile, email_trace):
        result = TraceSimulator(att_profile).run(email_trace, self.make_policy(6.0))
        assert len(result.effective_trace) == len(email_trace)
        for original, effective in zip(email_trace, result.effective_trace):
            assert effective.timestamp >= original.timestamp - 1e-9

    def test_effective_trace_is_monotone(self, att_profile, email_trace):
        result = TraceSimulator(att_profile).run(email_trace, self.make_policy(6.0))
        times = result.effective_trace.timestamps
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_ongoing_unbuffered_session_forces_release(self, att_profile):
        # Flow 1's continuation packet arrives while flow 2 is being buffered:
        # the buffer must be released immediately and the continuation packet
        # must not be delayed at all.
        trace = PacketTrace(
            [
                Packet(0.0, 100, flow_id=1),
                Packet(100.0, 100, flow_id=2),
                Packet(103.0, 100, flow_id=1),
            ]
        )
        policy = CombinedPolicy(FixedTimerPolicy(0.5), FixedDelayMakeActive(8.0))
        result = TraceSimulator(att_profile, session_idle_gap=200.0).run(trace, policy)
        times = [p.timestamp for p in result.effective_trace]
        assert times[1] == pytest.approx(103.0)  # flow 2 released early
        assert times[2] == pytest.approx(103.0)  # continuation not delayed
        flow2_delay = [d for d in result.session_delays if d.flow_id == 2][0]
        assert flow2_delay.delay == pytest.approx(3.0)

    def test_buffer_drained_at_end_of_trace(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100, flow_id=1), Packet(100.0, 100, flow_id=2)])
        result = TraceSimulator(att_profile).run(trace, self.make_policy(8.0))
        assert len(result.effective_trace) == 2
        assert result.effective_trace.timestamps[-1] == pytest.approx(108.0)


class TestResultConsistency:
    @pytest.mark.parametrize("scheme_key", ["fixed_4.5s", "makeidle", "oracle"])
    def test_intervals_partition_simulated_time(
        self, att_profile, heartbeat_trace, scheme_key
    ):
        from repro.core import standard_policies

        policy = standard_policies(window_size=30)[scheme_key]
        result = TraceSimulator(att_profile).run(heartbeat_trace, policy)
        total = sum(i.duration for i in result.intervals)
        assert total == pytest.approx(result.intervals[-1].end)
        for previous, current in zip(result.intervals, result.intervals[1:]):
            assert current.start == pytest.approx(previous.end)

    def test_gap_decisions_cover_every_gap(self, att_profile, heartbeat_trace):
        result = TraceSimulator(att_profile).run(heartbeat_trace, FixedTimerPolicy(2.0))
        assert len(result.gap_decisions) == len(heartbeat_trace) - 1

    def test_oracle_gap_decisions_match_threshold_rule(self, att_profile, heartbeat_trace):
        threshold = TailEnergyModel(att_profile).t_threshold
        result = TraceSimulator(att_profile).run(heartbeat_trace, OraclePolicy())
        for decision in result.gap_decisions:
            assert decision.switched == (decision.gap > threshold)

    def test_energy_non_negative(self, att_profile, email_trace):
        from repro.core import standard_policies

        simulator = TraceSimulator(att_profile)
        for policy in standard_policies(window_size=30).values():
            result = simulator.run(email_trace, policy)
            breakdown = result.breakdown
            for value in (
                breakdown.data_j,
                breakdown.active_tail_j,
                breakdown.high_idle_tail_j,
                breakdown.idle_j,
                breakdown.switch_j,
            ):
                assert value >= 0.0

    def test_simulator_validation(self, att_profile):
        with pytest.raises(ValueError):
            TraceSimulator(att_profile, session_idle_gap=-1.0)
        with pytest.raises(ValueError):
            TraceSimulator(att_profile, trailing_time=-1.0)

    def test_policy_reuse_is_safe(self, att_profile, heartbeat_trace):
        simulator = TraceSimulator(att_profile)
        policy = MakeIdlePolicy(window_size=30)
        first = simulator.run(heartbeat_trace, policy)
        second = simulator.run(heartbeat_trace, policy)
        assert first.total_energy_j == pytest.approx(second.total_energy_j)
        assert first.switch_count == second.switch_count


class TestBoundaryCases:
    """Tie-breaks and degenerate inputs documented in the module docstring."""

    def test_dormancy_at_exact_packet_arrival_fires(self, att_profile):
        # The wait elapses at t=2.0, exactly when the next packet arrives:
        # the demotion fires strictly before the packet, which then pays a
        # fresh promotion instead of silently cancelling the demotion.
        trace = PacketTrace([Packet(0.0, 100), Packet(2.0, 100)])
        result = TraceSimulator(att_profile).run(trace, FixedTimerPolicy(2.0))
        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        assert [s.time for s in dormancy] == [pytest.approx(2.0), pytest.approx(4.0)]
        promotions = [s for s in result.switches if s.is_promotion]
        assert any(s.time == pytest.approx(2.0) for s in promotions)

    def test_packet_strictly_before_wait_cancels(self, att_profile):
        trace = PacketTrace([Packet(0.0, 100), Packet(1.999, 100)])
        result = TraceSimulator(att_profile).run(trace, FixedTimerPolicy(2.0))
        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        # Only the post-trace demotion of the second packet's wait remains.
        assert [s.time for s in dormancy] == [pytest.approx(3.999)]

    def test_empty_trace_is_a_zero_run(self, att_profile):
        result = TraceSimulator(att_profile).run(PacketTrace([]), StatusQuoPolicy())
        assert result.total_energy_j == 0.0
        assert result.switch_count == 0
        assert result.switches == ()
        assert result.session_delays == ()
        assert len(result.effective_trace) == 0
        # The timeline is zero-duration: no trailing tail is charged.
        assert sum(i.duration for i in result.intervals) == 0.0

    def test_empty_trace_consistent_across_policies(self, att_profile):
        for policy in (StatusQuoPolicy(), FixedTimerPolicy(2.0), OraclePolicy(),
                       MakeIdlePolicy(window_size=10)):
            result = TraceSimulator(att_profile).run(PacketTrace([]), policy)
            assert result.total_energy_j == 0.0
            assert result.switch_count == 0
