"""Kernel equivalence: the event engine reproduces the seed replay semantics.

``_reference_run`` below is a faithful port of the pre-kernel
``TraceSimulator.run`` loop (the seed semantics: demotion-at-arrival
tie-break, MakeActive buffering/compression, trailing tail, empty-trace
zero run).  The property tests assert that the kernel-backed
:class:`~repro.sim.TraceSimulator` produces **identical** results — same
floats, same event times, same effective packets — on randomly generated
traces under every standard policy.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core import FixedTimerPolicy, StatusQuoPolicy, standard_policies
from repro.energy.accounting import EnergyAccountant
from repro.rrc.profiles import CARRIER_PROFILES
from repro.rrc.state_machine import RrcStateMachine
from repro.rrc.states import RadioState
from repro.sim import TraceSimulator
from repro.sim.results import SessionDelay, SimulationResult
from repro.sim.simulator import _gap_decisions
from repro.traces import Direction, Packet, PacketTrace


def _reference_run(profile, trace, policy, session_idle_gap=None,
                   trailing_time=None) -> SimulationResult:
    """The seed (pre-kernel) single-UE replay loop, verbatim semantics."""
    accountant = EnergyAccountant(profile)
    session_idle_gap = (session_idle_gap if session_idle_gap is not None
                        else profile.total_inactivity_timeout)
    trailing_time = (trailing_time if trailing_time is not None
                     else profile.total_inactivity_timeout + 1.0)
    policy.prepare(trace, profile)
    policy.reset()

    if not trace:
        machine = RrcStateMachine(profile, start_time=0.0)
        machine.finish(0.0)
        empty = PacketTrace((), name=trace.name)
        return SimulationResult(
            policy_name=policy.name, profile_key=profile.key,
            trace_name=trace.name,
            breakdown=accountant.account(empty, machine.intervals,
                                         machine.switches),
            intervals=tuple(machine.intervals), switches=(),
            effective_trace=empty, gap_decisions=(), session_delays=(),
        )

    machine = RrcStateMachine(profile, start_time=0.0)
    effective_packets: list[Packet] = []
    session_delays: list[SessionDelay] = []
    last_flow_activity: dict[int, float] = {}
    pending_dormancy: float | None = None
    buffering = False
    release_time = 0.0
    buffered_packets: list[Packet] = []
    buffered_arrivals: list[SessionDelay] = []
    buffered_flows: set[int] = set()

    def emit(packet, time):
        machine.notify_activity(time)
        effective = packet if packet.timestamp == time else replace(
            packet, timestamp=time)
        effective_packets.append(effective)
        policy.observe_packet(time, effective)

    def ask_dormancy(time):
        nonlocal pending_dormancy
        wait = policy.dormancy_wait(time)
        pending_dormancy = time + wait if wait is not None else None

    def release_buffer(time):
        nonlocal buffering, buffered_packets, buffered_arrivals, buffered_flows
        for buffered in buffered_packets:
            emit(buffered, time)
        for pending in buffered_arrivals:
            session_delays.append(
                SessionDelay(pending.arrival_time, time, pending.flow_id))
        if buffered_arrivals:
            policy.on_release(time, [d.arrival_time for d in buffered_arrivals])
        ask_dormancy(time)
        buffering = False
        buffered_packets = []
        buffered_arrivals = []
        buffered_flows = set()

    for packet in trace:
        now = packet.timestamp
        if buffering and now >= release_time:
            release_buffer(release_time)
        if not buffering and pending_dormancy is not None:
            if pending_dormancy <= now:
                machine.request_fast_dormancy(pending_dormancy)
            pending_dormancy = None
        previous_activity = last_flow_activity.get(packet.flow_id)
        is_session_start = (previous_activity is None
                            or now - previous_activity > session_idle_gap)
        last_flow_activity[packet.flow_id] = now
        if buffering:
            if is_session_start or packet.flow_id in buffered_flows:
                buffered_packets.append(packet)
                if is_session_start:
                    buffered_arrivals.append(
                        SessionDelay(now, release_time, packet.flow_id))
                buffered_flows.add(packet.flow_id)
                continue
            release_buffer(now)
        elif machine.state_at(now) is RadioState.IDLE and is_session_start:
            delay = policy.activation_delay(now)
            if delay > 0:
                buffering = True
                release_time = now + delay
                buffered_packets = [packet]
                buffered_arrivals = [SessionDelay(now, release_time,
                                                  packet.flow_id)]
                buffered_flows = {packet.flow_id}
                pending_dormancy = None
                continue
            session_delays.append(SessionDelay(now, now, packet.flow_id))
        emit(packet, now)
        ask_dormancy(now)

    if buffering:
        release_buffer(release_time)
    if pending_dormancy is not None:
        machine.request_fast_dormancy(pending_dormancy)
        pending_dormancy = None

    last_time = effective_packets[-1].timestamp if effective_packets else 0.0
    machine.finish(max(last_time + trailing_time, machine.now))
    effective_trace = PacketTrace(effective_packets, name=trace.name)
    return SimulationResult(
        policy_name=policy.name, profile_key=profile.key,
        trace_name=trace.name,
        breakdown=accountant.account(effective_trace, machine.intervals,
                                     machine.switches),
        intervals=tuple(machine.intervals),
        switches=tuple(machine.switches),
        effective_trace=effective_trace,
        gap_decisions=tuple(_gap_decisions(effective_trace, machine.switches)),
        session_delays=tuple(session_delays),
    )


def _random_trace(rng: random.Random, packets: int) -> PacketTrace:
    """A random multi-flow trace mixing dense bursts and long quiet gaps."""
    time = 0.0
    out = []
    for _ in range(packets):
        # Mix sub-second burst spacing with gaps around the demotion timers
        # so tie-breaks, cancellations and session starts all get exercised.
        gap = rng.choice([
            rng.uniform(0.0, 0.5),
            rng.uniform(0.5, 5.0),
            rng.uniform(5.0, 30.0),
            float(rng.randint(0, 10)),  # integral gaps force exact ties
        ])
        time += gap
        out.append(Packet(
            timestamp=round(time, 3),
            size=rng.randint(40, 1500),
            direction=rng.choice((Direction.UPLINK, Direction.DOWNLINK)),
            flow_id=rng.randint(0, 3),
        ))
    return PacketTrace(out, name="random")


def _assert_identical(kernel: SimulationResult, reference: SimulationResult):
    assert kernel.breakdown == reference.breakdown
    assert kernel.intervals == reference.intervals
    assert kernel.switches == reference.switches
    assert tuple(kernel.effective_trace) == tuple(reference.effective_trace)
    assert kernel.gap_decisions == reference.gap_decisions
    assert kernel.session_delays == reference.session_delays


# Every carrier profile (both RRC machine shapes, both timer layouts) ×
# every standard policy: the table-driven hot path must reproduce the
# seed replay loop on all of them, not just the benchmarked combinations.
CARRIERS = tuple(CARRIER_PROFILES)
SCHEMES = tuple(standard_policies(window_size=20))


class TestKernelEquivalence:
    @pytest.mark.parametrize("carrier", CARRIERS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_random_traces_identical_under_every_scheme(self, carrier, scheme):
        profile = CARRIER_PROFILES[carrier]
        for seed in range(3):
            rng = random.Random(1000 * seed + hash(carrier) % 997)
            trace = _random_trace(rng, packets=120)
            kernel = TraceSimulator(profile).run(
                trace, standard_policies(window_size=20)[scheme])
            reference = _reference_run(
                profile, trace, standard_policies(window_size=20)[scheme])
            _assert_identical(kernel, reference)

    @pytest.mark.parametrize("carrier", CARRIERS)
    def test_status_quo_identical_on_every_carrier(self, carrier):
        profile = CARRIER_PROFILES[carrier]
        for seed in range(3):
            rng = random.Random(17 + seed)
            trace = _random_trace(rng, packets=120)
            kernel = TraceSimulator(profile).run(trace, StatusQuoPolicy())
            reference = _reference_run(profile, trace, StatusQuoPolicy())
            _assert_identical(kernel, reference)

    def test_demotion_at_arrival_tie_break(self, att_profile):
        # The wait elapses at exactly the next packet's arrival: the seed
        # semantics fire the demotion strictly before the packet.
        trace = PacketTrace([Packet(0.0, 100), Packet(2.0, 100)])
        kernel = TraceSimulator(att_profile).run(trace, FixedTimerPolicy(2.0))
        reference = _reference_run(att_profile, trace, FixedTimerPolicy(2.0))
        _assert_identical(kernel, reference)
        assert any(s.time == 2.0 and s.is_demotion for s in kernel.switches)

    def test_empty_trace_zero_run(self, att_profile):
        for policy in (StatusQuoPolicy(), FixedTimerPolicy(1.0)):
            kernel = TraceSimulator(att_profile).run(PacketTrace([]), policy)
            reference = _reference_run(att_profile, PacketTrace([]), policy)
            _assert_identical(kernel, reference)
            assert kernel.total_energy_j == 0.0

    def test_trailing_tail_identical(self, att_profile):
        # A single packet leaves the whole trailing tail to be charged.
        trace = PacketTrace([Packet(0.0, 500)])
        kernel = TraceSimulator(att_profile).run(trace, StatusQuoPolicy())
        reference = _reference_run(att_profile, trace, StatusQuoPolicy())
        _assert_identical(kernel, reference)
        assert kernel.intervals[-1].end == pytest.approx(
            att_profile.total_inactivity_timeout + 1.0)

    def test_custom_gap_and_trailing_parameters(self, att_profile):
        rng = random.Random(7)
        trace = _random_trace(rng, packets=60)
        policy = standard_policies(window_size=20)["makeidle+makeactive_fixed"]
        kernel = TraceSimulator(
            att_profile, session_idle_gap=30.0, trailing_time=2.0
        ).run(trace, policy)
        reference = _reference_run(
            att_profile, trace,
            standard_policies(window_size=20)["makeidle+makeactive_fixed"],
            session_idle_gap=30.0, trailing_time=2.0)
        _assert_identical(kernel, reference)
