"""Unit tests for the hot-path building blocks (PR 5 overhaul).

The kernel inlines several formerly-called methods over precomputed
constants; these tests pin the inlined arithmetic to the readable
reference implementations and cover the new mode guards.
"""

from __future__ import annotations

import pytest

from repro.core import FixedTimerPolicy, StatusQuoPolicy
from repro.energy.accounting import DataEnergyModel
from repro.rrc.profiles import CARRIER_PROFILES, get_profile
from repro.rrc.state_machine import RrcStateMachine
from repro.rrc.tables import TransitionTable, transition_table
from repro.sim.engine import SimulationEngine, UeContext
from repro.traces.packet import Direction, Packet, PacketTrace
from repro.traces.streaming import stream_application_packets


class TestTransitionTable:
    @pytest.mark.parametrize("key", sorted(CARRIER_PROFILES))
    def test_fields_equal_profile_derivations(self, key):
        profile = CARRIER_PROFILES[key]
        table = transition_table(profile)
        assert table.t1 == profile.t1
        assert table.t2 == profile.t2
        assert table.total_timeout == profile.total_inactivity_timeout
        assert table.has_high_idle == profile.has_high_idle_state
        assert table.idle_after == (
            profile.total_inactivity_timeout
            if profile.has_high_idle_state else profile.t1
        )
        assert table.promotion_energy_j == profile.promotion_energy_j
        assert table.demotion_energy_j == profile.demotion_energy_j
        assert table.power_active_w == profile.power_active_w
        assert table.power_high_idle_w == profile.power_high_idle_w
        assert table.power_send_w == profile.transfer_power_w(True)
        assert table.power_recv_w == profile.transfer_power_w(False)

    def test_cached_per_profile(self):
        profile = get_profile("att_hspa")
        assert transition_table(profile) is transition_table(profile)
        derived = profile.with_timers(1.0)
        assert transition_table(derived) is not transition_table(profile)
        assert isinstance(transition_table(derived), TransitionTable)


class TestDataModelConstants:
    def test_cached_powers_match_property_chain(self):
        profile = get_profile("verizon_lte")
        model = DataEnergyModel(profile)
        assert model.send_power_w == profile.transfer_power_w(True)
        assert model.recv_power_w == profile.transfer_power_w(False)
        assert model.uplink_rate == 1.0 * 1e6 / 8.0
        assert model.downlink_rate == 5.0 * 1e6 / 8.0
        assert model.min_packet_time == 0.002


class TestInlineTransferFold:
    def test_kernel_fold_equals_account_transfer_reference(self):
        """The kernel's inlined per-packet fold is the reference method."""
        profile = get_profile("att_hspa")
        packets = [
            Packet(0.0, 1200, Direction.DOWNLINK, 0, "t"),
            Packet(0.05, 90, Direction.UPLINK, 0, "t"),     # intra-burst gap
            Packet(30.0, 500, Direction.DOWNLINK, 0, "t"),  # beyond burst gap
            Packet(30.001, 40, Direction.UPLINK, 0, "t"),
        ]

        # Reference: fold the same effective sequence by hand.
        reference = UeContext(0, profile, StatusQuoPolicy(), collect=False)
        model = DataEnergyModel(profile)
        for packet in packets:
            reference.account_transfer(model, packet, packet.timestamp)

        # Kernel: run the packets through the engine (status quo emits
        # every packet at its arrival time).
        engine = SimulationEngine(profile)
        ue = UeContext(1, profile, StatusQuoPolicy(), collect=False)
        engine.run({1: PacketTrace(packets)}, {1: ue})

        assert ue.folded_totals()[0] == reference.folded_totals()[0]  # data_j
        assert ue.folded_totals()[1] == reference.folded_totals()[1]  # time_s


class TestFoldModeGuards:
    def test_drain_history_refused_in_fold_mode(self):
        machine = RrcStateMachine(get_profile("att_hspa"), fold_history=True)
        with pytest.raises(RuntimeError, match="fold"):
            machine.drain_history()

    def test_folded_totals_refused_without_fold_mode(self):
        machine = RrcStateMachine(get_profile("att_hspa"))
        with pytest.raises(RuntimeError, match="fold_history"):
            machine.folded_state_totals()

    def test_fold_counts_match_recorded_history(self):
        profile = get_profile("att_hspa")
        recording = RrcStateMachine(profile)
        folding = RrcStateMachine(profile, fold_history=True)
        for machine in (recording, folding):
            machine.notify_activity(1.0)
            machine.request_fast_dormancy(3.0)
            machine.notify_activity(10.0)
            machine.finish(60.0)
        assert folding.promotion_count == recording.promotion_count
        assert folding.demotion_count == recording.demotion_count
        assert folding.switch_count == recording.switch_count
        (active_s, high_s, idle_s, switch_j, promotions,
         timer_demotions, fast_demotions) = folding.folded_state_totals()
        assert promotions == 2
        assert fast_demotions == 1
        # Folded durations are the same additions the recorded intervals
        # would sum to, in the same order.
        from repro.rrc.states import RadioState

        def summed(state_set):
            return sum(i.duration for i in recording.intervals
                       if i.state in state_set)

        assert active_s == summed({RadioState.ACTIVE, RadioState.PROMOTING})
        assert high_s == summed({RadioState.HIGH_IDLE})
        assert idle_s == summed({RadioState.IDLE})
        assert switch_j == sum(s.energy_j for s in recording.switches)


class TestChunkedStreamBlockProtocol:
    def test_blocks_resume_after_partial_iteration(self):
        """Mixing next() and packet_blocks() neither drops nor repeats."""
        args = dict(duration=600.0, seed=3, chunk_s=120.0)
        full = list(stream_application_packets("im", **args))

        stream = stream_application_packets("im", **args)
        head = [next(stream) for _ in range(5)]
        rest = [p for block in stream.packet_blocks() for p in block]
        assert head + rest == full

    def test_packet_trace_is_one_block(self):
        trace = PacketTrace([Packet(1.0, 10), Packet(2.0, 10)])
        blocks = list(trace.packet_blocks())
        assert len(blocks) == 1
        assert list(blocks[0]) == list(trace)

    def test_iterator_protocol_preserved(self):
        stream = stream_application_packets("im", duration=300.0, seed=0)
        assert iter(stream) is stream
        first = next(stream)
        assert first.timestamp >= 0.0


class TestUnoverriddenHookSkips:
    def test_hook_flags_detect_overrides(self):
        profile = get_profile("att_hspa")
        plain = UeContext(0, profile, FixedTimerPolicy(2.0), collect=False)
        assert plain.observes_packets is False
        assert plain.delays_activation is False

        class Watcher(StatusQuoPolicy):
            def observe_packet(self, time, packet):  # noqa: D102
                pass

            def activation_delay(self, now):  # noqa: D102
                return 0.5

        hooked = UeContext(1, profile, Watcher(), collect=False)
        assert hooked.observes_packets is True
        assert hooked.delays_activation is True
