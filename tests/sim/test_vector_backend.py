"""Backend parity: ``engine="vector"`` is byte-identical to the scalar kernel.

The vector backend's contract (DESIGN.md §2.3) is *equality, not
approximation*: whatever the workload, policy, carrier or shard plan,
``engine="vector"`` must produce the same floats in the same order as the
scalar kernel — per-device breakdowns, signaling totals, switch times and
load samples alike.  These tests drive that contract across:

* the carrier × policy equivalence matrix (every profile shape, every
  standard scheme, eligible and hook-bearing alike);
* the fallback rules — hook-bearing device policies take the per-UE
  scalar fallback, arbitrating base stations and a missing numpy demote
  the whole shard, and ``CellResult.vector_devices`` reports exactly who
  ran where;
* mixed vector/scalar shard merges (eligible and fallback devices
  interleaved across shard boundaries);
* randomized traces under hypothesis, where the boundary/fold split is
  exercised at adversarial burst spacings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PolicySpec, execute_cell
from repro.api.cells import CellRunSpec, DormancySpec, cell
from repro.basestation import AcceptAllDormancy, CellSimulator
from repro.basestation.cell import DeviceSpec
from repro.core import FixedTimerPolicy
from repro.rrc.profiles import CARRIER_PROFILES, get_profile
from repro.sim.vector_engine import numpy_available
from repro.traces import Direction, Packet, PacketTrace

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="numpy unavailable — vector backend falls back to scalar",
)

#: Schemes whose policies keep the base ``observe_packet`` /
#: ``activation_delay`` hooks and a constant dormancy wait: every device
#: vectorizes.
ELIGIBLE_SCHEMES = ("status_quo", "fixed_4.5s")
#: Hook-bearing schemes: every device takes the per-UE scalar fallback.
FALLBACK_SCHEMES = ("makeidle", "makeidle+makeactive_learn")

_DEVICES = 10
_DURATION_S = 300.0


def _run_pair(carrier: str, scheme: str, *, dormancy=DormancySpec(),
              shards: int = 1, scenario: str | None = None,
              devices: int = _DEVICES):
    """One cell spec under both backends; returns (scalar, vector)."""
    results = {}
    for engine in ("scalar", "vector"):
        spec = CellRunSpec(
            cell=cell(devices=devices, scenario=scenario,
                      apps=None if scenario else ("im", "email", "news"),
                      duration=_DURATION_S, engine=engine),
            carrier=carrier,
            policy=PolicySpec(scheme=scheme).resolved(100),
            dormancy=dormancy,
            shards=shards,
        )
        results[engine] = execute_cell(spec)
    return results["scalar"], results["vector"]


class TestEquivalenceMatrix:
    """Carrier × policy grid: full-result equality plus who vectorized."""

    @pytest.mark.parametrize("carrier", sorted(CARRIER_PROFILES))
    @pytest.mark.parametrize("scheme", ELIGIBLE_SCHEMES)
    def test_eligible_schemes_vectorize_and_match(self, carrier, scheme):
        scalar, vector = _run_pair(carrier, scheme)
        assert vector == scalar
        assert scalar.vector_devices == 0
        assert vector.vector_devices == _DEVICES

    @pytest.mark.parametrize("carrier", sorted(CARRIER_PROFILES))
    @pytest.mark.parametrize("scheme", FALLBACK_SCHEMES)
    def test_hook_bearing_schemes_fall_back_and_match(self, carrier, scheme):
        scalar, vector = _run_pair(carrier, scheme)
        assert vector == scalar
        assert vector.vector_devices == 0

    @pytest.mark.parametrize("carrier", sorted(CARRIER_PROFILES))
    def test_trace_trained_timeout_vectorizes_and_matches(self, carrier):
        """``p95_iat`` trains its constant on the full trace in
        ``prepare()`` — eligible, but only on materialised traces (the
        policy itself refuses lazy sources on either backend)."""
        from repro.traces.streaming import stream_application_packets

        policy_spec = PolicySpec(scheme="p95_iat").resolved(100)
        results = {}
        for engine in ("scalar", "vector"):
            specs = [
                DeviceSpec(
                    device_id=index,
                    trace=PacketTrace(stream_application_packets(
                        ("im", "email")[index % 2],
                        duration=_DURATION_S, seed=index, chunk_s=60.0,
                    )),
                    policy=policy_spec.build(),
                )
                for index in range(_DEVICES)
            ]
            simulator = CellSimulator(
                get_profile(carrier), AcceptAllDormancy(), engine=engine,
            )
            results[engine] = simulator.run(specs)
        assert results["vector"] == results["scalar"]
        assert results["vector"].vector_devices == _DEVICES


class TestFallbackRules:
    def test_arbitrating_station_demotes_the_whole_shard(self):
        """A station that may deny requests needs live shard-global load
        ordering, so the vector path bows out entirely."""
        scalar, vector = _run_pair(
            "att_hspa", "fixed_4.5s",
            dormancy=DormancySpec("rate_limited", 10.0),
        )
        assert vector == scalar
        assert vector.vector_devices == 0

    def test_missing_numpy_falls_back_silently(self, monkeypatch):
        from repro.sim import vector_engine

        monkeypatch.setattr(vector_engine, "_np", None)
        assert not vector_engine.numpy_available()
        scalar, vector = _run_pair("att_hspa", "fixed_4.5s")
        assert vector == scalar
        assert vector.vector_devices == 0

    def test_mixed_policy_scenario_splits_the_population(self):
        """The mixed-policy scenario carries eligible and hook-bearing
        cohorts in one cell: the split is per-device, not per-shard."""
        scalar, vector = _run_pair(
            "att_hspa", "fixed_4.5s", scenario="mixed_policy", devices=9,
        )
        assert vector == scalar
        assert 0 < vector.vector_devices < 9


class TestMixedShardMerges:
    @pytest.mark.parametrize("scheme", ("fixed_4.5s", "makeidle"))
    def test_sharded_vector_merge_matches_sharded_scalar(self, scheme):
        scalar, vector = _run_pair("att_hspa", scheme, shards=3)
        assert vector == scalar

    def test_mixed_policy_sharded_interleaves_backends(self):
        """Shards holding both eligible and fallback devices merge into
        the same result the scalar kernel produces — and the vector
        count sums the per-shard batch populations."""
        scalar, vector = _run_pair(
            "att_hspa", "fixed_4.5s", scenario="mixed_policy", devices=9,
            shards=3,
        )
        assert vector == scalar
        assert 0 < vector.vector_devices < 9
        # The batch population is a property of the devices, not of the
        # shard plan: the unsharded run vectorizes the same count.
        _, unsharded_vector = _run_pair(
            "att_hspa", "fixed_4.5s", scenario="mixed_policy", devices=9,
        )
        assert vector.vector_devices == unsharded_vector.vector_devices


def _trace_from_draw(times, sizes, uplinks) -> PacketTrace:
    return PacketTrace(
        Packet(timestamp=t, size=s,
               direction=Direction.UPLINK if up else Direction.DOWNLINK)
        for t, s, up in zip(sorted(times), sizes, uplinks)
    )


@st.composite
def _device_populations(draw):
    """A handful of devices with adversarial burst spacings.

    Gaps cluster around the fixed timer's boundary values (the dormancy
    wait and the inactivity timeout) so the eligibility fold's
    fired-event masks and the same-instant heap tie-breaks are hit, not
    just the easy wide-gap cases.
    """
    n_devices = draw(st.integers(min_value=1, max_value=4))
    timeout = draw(st.sampled_from((0.0, 0.5, 4.5, 12.0)))
    devices = []
    for index in range(n_devices):
        n_packets = draw(st.integers(min_value=0, max_value=12))
        gaps = draw(st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
                st.sampled_from((0.0, timeout, 4.5, 5.0)),
            ),
            min_size=n_packets, max_size=n_packets,
        ))
        times = []
        now = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        for gap in gaps:
            now = now + gap
            times.append(now)
        sizes = draw(st.lists(st.integers(min_value=0, max_value=3000),
                              min_size=n_packets, max_size=n_packets))
        uplinks = draw(st.lists(st.booleans(),
                                min_size=n_packets, max_size=n_packets))
        devices.append((index, times, sizes, uplinks))
    return timeout, devices


class TestRandomizedParity:
    @settings(max_examples=40, deadline=None)
    @given(population=_device_populations())
    def test_random_traces_identical_under_both_backends(self, population):
        timeout, drawn = population
        results = {}
        for engine in ("scalar", "vector"):
            specs = [
                DeviceSpec(
                    device_id=index,
                    trace=_trace_from_draw(times, sizes, uplinks),
                    policy=FixedTimerPolicy(timeout=timeout),
                )
                for index, times, sizes, uplinks in drawn
            ]
            simulator = CellSimulator(
                get_profile("att_hspa"), AcceptAllDormancy(), engine=engine,
            )
            results[engine] = simulator.run(specs)
        assert results["vector"] == results["scalar"]
        assert results["vector"].vector_devices == len(drawn)
