"""Kernel handover semantics: closing a UE's context at its departure.

A HANDOVER event (metro mobility) must close the departing UE's timeline
with the *exact* :meth:`RrcStateMachine.finish` float operations of the
PR 3 shard-merge close-out replay — that is what makes metro results
byte-identical at any cell-shard partitioning.  These tests pin the
contract documented in ``docs/DESIGN.md`` §4:

* the handover close is bit-equal to a manual ``finish(T)`` on the same
  open run;
* a MakeActive buffer still held at departure is force-released *at* the
  departure instant and charged to the departing cell;
* timer/dormancy events queued before the departure are stale afterwards
  and must not advance the closed machine;
* at equal times a scheduled fast dormancy fires *before* the handover
  (the demotion is charged to the departure cell);
* departures for unknown UEs are rejected, and a packet arriving after
  its UE departed aborts the run atomically.
"""

from __future__ import annotations

import pytest

from repro.core import FixedTimerPolicy, StatusQuoPolicy
from repro.core.makeactive import FixedDelayMakeActive
from repro.rrc import RadioState
from repro.rrc.profiles import get_profile
from repro.sim.engine import SimulationEngine, UeContext
from repro.traces.packet import Direction, Packet


def _packets(*stamps: float) -> list[Packet]:
    return [Packet(t, 100, Direction.DOWNLINK, 0, "t") for t in stamps]


@pytest.fixture
def att_hspa():
    return get_profile("att_hspa")


class TestHandoverCloseout:
    def test_handover_close_equals_manual_finish(self, att_hspa):
        """A departure at T is bit-equal to finish(T) on the open run."""
        depart_at = 100.0
        stamps = (0.0, 5.0, 40.0, 80.0)

        engine = SimulationEngine(att_hspa)
        via_handover = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        engine.run({0: iter(_packets(*stamps))}, {0: via_handover},
                   handovers={0: depart_at})

        manual = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        open_run = SimulationEngine(att_hspa).run(
            {0: iter(_packets(*stamps))}, {0: manual}, finish=False,
        )
        assert not open_run.finished
        manual.machine.finish(depart_at)

        assert via_handover.folded_totals() == manual.folded_totals()
        assert via_handover.machine.now == manual.machine.now
        assert (via_handover.machine.folded_state_totals()
                == manual.machine.folded_state_totals())

    def test_departed_machine_is_closed_at_departure_time(self, att_hspa):
        depart_at = 60.0
        ue = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        SimulationEngine(att_hspa).run(
            {0: iter(_packets(0.0, 10.0))}, {0: ue}, handovers={0: depart_at},
        )
        assert ue.departed
        assert ue.machine.finished
        assert ue.machine.now == depart_at

    def test_finalize_leaves_departed_ue_untouched(self, att_hspa):
        """The shared end-time close skips UEs already closed by departure."""
        depart_at = 50.0
        departing = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        staying = UeContext(1, att_hspa, StatusQuoPolicy(), collect=False)
        engine = SimulationEngine(att_hspa)
        result = engine.run(
            {0: iter(_packets(0.0, 10.0)), 1: iter(_packets(0.0, 200.0))},
            {0: departing, 1: staying},
            handovers={0: depart_at},
        )
        assert departing.machine.now == depart_at
        # The stayer closes at the shared end time, after the departure.
        assert staying.machine.now == result.end_time
        assert result.end_time > depart_at


class TestBufferedDepartures:
    def test_makeactive_buffer_flushes_at_departure(self, att_hspa):
        """Sessions still buffered when the UE leaves are emitted at T."""
        # A 30 s delay bound would hold the 10.0 s session until 40.0 —
        # but the UE departs at 20.0, so the buffer is force-released
        # there: the session is delayed by 10 s and charged to this cell.
        policy = FixedDelayMakeActive(30.0)
        depart_at = 20.0
        ue = UeContext(0, att_hspa, policy, collect=False)
        SimulationEngine(att_hspa).run(
            {0: iter(_packets(10.0))}, {0: ue}, handovers={0: depart_at},
        )
        assert ue.departed
        assert not ue.buffering
        assert ue.delayed_sessions == 1
        assert ue.total_delay_s == pytest.approx(depart_at - 10.0)
        # The released packets were emitted at the departure instant.
        assert ue.last_effective == depart_at

    def test_flushed_buffer_promotes_before_close(self, att_hspa):
        """The forced release replays its packets: the radio promotes at T."""
        policy = FixedDelayMakeActive(30.0)
        depart_at = 20.0
        ue = UeContext(0, att_hspa, policy, collect=False)
        SimulationEngine(att_hspa).run(
            {0: iter(_packets(10.0))}, {0: ue}, handovers={0: depart_at},
        )
        totals = ue.machine.folded_state_totals()
        promotions = totals[4]
        assert promotions > 0  # the release really hit the radio


class TestStaleEventsAfterDeparture:
    def test_stale_timer_after_departure_is_ignored(self, att_hspa):
        """A TIMER queued before the departure must not reopen the machine."""
        # FixedTimer(4.5) queues an expiry at 10.0 + timers; departing at
        # 12.0 (before the full inactivity timeout) leaves that expiry
        # stale in the heap while UE 1 keeps the clock running past it.
        policy = FixedTimerPolicy(4.5)
        depart_at = 12.0
        departing = UeContext(0, att_hspa, policy, collect=False)
        staying = UeContext(1, att_hspa, StatusQuoPolicy(), collect=False)
        SimulationEngine(att_hspa).run(
            {0: iter(_packets(0.0, 10.0)), 1: iter(_packets(0.0, 300.0))},
            {0: departing, 1: staying},
            handovers={0: depart_at},
        )
        assert departing.machine.now == depart_at

    def test_pending_dormancy_cancelled_at_departure(self, att_hspa):
        """A dormancy scheduled after T dies with the departure."""
        # The packet at 2.0 cancels the dormancy scheduled at 4.5 and
        # reschedules it at 6.5; departing at 5.0 cancels that one too —
        # the close must come from finish(5.0), not from a demotion.
        policy = FixedTimerPolicy(4.5)
        depart_at = 5.0
        ue = UeContext(0, att_hspa, policy, collect=False)
        SimulationEngine(att_hspa).run(
            {0: iter(_packets(0.0, 2.0))}, {0: ue}, handovers={0: depart_at},
        )
        fast_demotions = ue.machine.folded_state_totals()[6]
        assert fast_demotions == 0
        assert ue.machine.now == depart_at


class TestEqualTimeOrdering:
    def test_dormancy_at_departure_instant_fires_first(self, att_hspa):
        """DORMANCY < HANDOVER: a demotion at exactly T is charged here."""
        # The packet at 2.0 reschedules the dormancy to exactly 6.5 — the
        # same instant the UE departs.  Tie-break priority (DORMANCY=1 <
        # HANDOVER=2) fires the demotion first, so the departing cell
        # records the fast-dormancy switch.
        policy = FixedTimerPolicy(4.5)
        depart_at = 2.0 + 4.5
        ue = UeContext(0, att_hspa, policy, collect=False)
        SimulationEngine(att_hspa).run(
            {0: iter(_packets(0.0, 2.0))}, {0: ue}, handovers={0: depart_at},
        )
        fast_demotions = ue.machine.folded_state_totals()[6]
        assert fast_demotions == 1
        assert ue.machine.state is RadioState.IDLE
        assert ue.machine.now == depart_at


class TestHandoverValidation:
    def test_unknown_ue_rejected(self, att_hspa):
        engine = SimulationEngine(att_hspa)
        ue = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        with pytest.raises(ValueError, match="unknown UE"):
            engine.run({0: iter(_packets(0.0))}, {0: ue}, handovers={7: 5.0})

    def test_arrival_after_departure_aborts_atomically(self, att_hspa):
        """The stream must end strictly before T; a later packet aborts."""
        ue = UeContext(0, att_hspa, StatusQuoPolicy(), collect=False)
        other = UeContext(1, att_hspa, StatusQuoPolicy(), collect=False)
        with pytest.raises(RuntimeError, match="finished"):
            SimulationEngine(att_hspa).run(
                {0: iter(_packets(0.0, 50.0)), 1: iter(_packets(0.0))},
                {0: ue, 1: other},
                handovers={0: 10.0},
            )
        # Atomic: no partial timeline observable from any context.
        for ctx in (ue, other):
            with pytest.raises(RuntimeError, match="aborted"):
                ctx.folded_totals()
