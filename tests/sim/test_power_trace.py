"""Tests for the power-versus-time reconstruction (Figure 3)."""

from __future__ import annotations

import pytest

from repro.core import StatusQuoPolicy
from repro.sim import TraceSimulator, build_power_trace
from repro.traces import Direction, Packet, PacketTrace


@pytest.fixture
def burst_run(att_profile):
    """One uplink/downlink burst followed by silence, under the status quo."""
    trace = PacketTrace(
        [
            Packet(0.0, 300, Direction.UPLINK),
            Packet(0.3, 1400, Direction.DOWNLINK),
            Packet(0.6, 1400, Direction.DOWNLINK),
        ],
        name="burst",
    )
    result = TraceSimulator(att_profile).run(trace, StatusQuoPolicy())
    return trace, result


class TestBuildPowerTrace:
    def test_profile_shows_paper_power_levels(self, att_profile, burst_run):
        trace, result = burst_run
        power = build_power_trace(att_profile, result.intervals, result.effective_trace)
        # During the transfer the power reaches the receive level.
        assert power.power_at(0.55) == pytest.approx(att_profile.power_recv_w)
        # During the DCH tail it sits at P_t1.
        assert power.power_at(3.0) == pytest.approx(att_profile.power_active_w)
        # During the FACH tail it sits at P_t2.
        assert power.power_at(att_profile.t1 + 3.0) == pytest.approx(
            att_profile.power_high_idle_w
        )
        # After t1 + t2 the radio is idle and draws nothing.
        assert power.power_at(att_profile.total_inactivity_timeout + 5.0) == 0.0

    def test_energy_close_to_accounted_total(self, att_profile, burst_run):
        trace, result = burst_run
        power = build_power_trace(att_profile, result.intervals, result.effective_trace)
        # The integral of the power profile should be close to the accounted
        # energy minus switch costs (which are instantaneous events).
        expected = result.total_energy_j - result.breakdown.switch_j
        assert power.total_energy_j == pytest.approx(expected, rel=0.1)

    def test_samples_are_ordered_and_contiguous_in_time(self, att_profile, burst_run):
        trace, result = burst_run
        power = build_power_trace(att_profile, result.intervals, result.effective_trace)
        samples = power.samples
        assert all(s.end >= s.start for s in samples)
        starts = [s.start for s in samples]
        assert starts == sorted(starts)

    def test_sample_grid(self, att_profile, burst_run):
        trace, result = burst_run
        power = build_power_trace(att_profile, result.intervals, result.effective_trace)
        grid = power.sample_grid(step=1.0)
        assert len(grid) >= int(power.duration)
        assert all(p >= 0.0 for _, p in grid)

    def test_sample_grid_validation(self, att_profile, burst_run):
        trace, result = burst_run
        power = build_power_trace(att_profile, result.intervals, result.effective_trace)
        with pytest.raises(ValueError):
            power.sample_grid(step=0.0)

    def test_power_outside_profile_is_zero(self, att_profile, burst_run):
        trace, result = burst_run
        power = build_power_trace(att_profile, result.intervals, result.effective_trace)
        assert power.power_at(-5.0) == 0.0
        assert power.power_at(power.samples[-1].end + 100.0) == 0.0

    def test_empty_profile(self, att_profile):
        power = build_power_trace(att_profile, [], PacketTrace([]))
        assert len(power) == 0
        assert power.duration == 0.0
        assert power.total_energy_j == 0.0
        assert power.sample_grid(1.0) == []

    def test_lte_has_no_fach_plateau(self, lte_profile):
        trace = PacketTrace([Packet(0.0, 500, Direction.DOWNLINK)])
        result = TraceSimulator(lte_profile).run(trace, StatusQuoPolicy())
        power = build_power_trace(lte_profile, result.intervals, result.effective_trace)
        levels = {round(s.power_w, 4) for s in power.samples}
        assert round(lte_profile.power_high_idle_w, 4) not in levels or (
            lte_profile.power_high_idle_w == 0.0
        )
