"""Tests for the simulation result containers."""

from __future__ import annotations

import pytest

from repro.core import FixedTimerPolicy, StatusQuoPolicy
from repro.sim import SessionDelay, SimulationResult, TraceSimulator
from repro.sim.results import GapDecision


@pytest.fixture
def pair(att_profile, heartbeat_trace):
    simulator = TraceSimulator(att_profile)
    baseline = simulator.run(heartbeat_trace, StatusQuoPolicy())
    scheme = simulator.run(heartbeat_trace, FixedTimerPolicy(2.0))
    return baseline, scheme


class TestSessionDelay:
    def test_delay_computation(self):
        delay = SessionDelay(arrival_time=10.0, release_time=14.5, flow_id=3)
        assert delay.delay == pytest.approx(4.5)

    def test_zero_delay(self):
        assert SessionDelay(5.0, 5.0, 1).delay == 0.0


class TestGapDecision:
    def test_fields(self):
        decision = GapDecision(time=1.0, gap=3.0, switched=True)
        assert decision.gap == 3.0
        assert decision.switched


class TestSimulationResult:
    def test_total_energy_matches_breakdown(self, pair):
        baseline, _ = pair
        assert baseline.total_energy_j == pytest.approx(baseline.breakdown.total_j)

    def test_energy_saved_vs(self, pair):
        baseline, scheme = pair
        saved = scheme.energy_saved_vs(baseline)
        assert saved == pytest.approx(
            baseline.total_energy_j - scheme.total_energy_j
        )
        assert scheme.energy_saved_fraction(baseline) == pytest.approx(
            saved / baseline.total_energy_j
        )

    def test_saving_is_positive_for_heartbeat_workload(self, pair):
        baseline, scheme = pair
        assert scheme.energy_saved_fraction(baseline) > 0.0

    def test_switches_normalized(self, pair):
        baseline, scheme = pair
        assert scheme.switches_normalized(baseline) == pytest.approx(
            scheme.switch_count / baseline.switch_count
        )

    def test_energy_saved_per_switch(self, pair):
        baseline, scheme = pair
        assert scheme.energy_saved_per_switch(baseline) == pytest.approx(
            scheme.energy_saved_vs(baseline) / scheme.switch_count
        )

    def test_delay_statistics_empty(self, pair):
        baseline, _ = pair
        assert baseline.mean_delay == 0.0
        assert baseline.median_delay == 0.0

    def test_median_delay_odd_and_even(self, pair):
        baseline, _ = pair
        odd = SimulationResult(
            policy_name="x", profile_key="p", trace_name="t",
            breakdown=baseline.breakdown, intervals=baseline.intervals,
            switches=baseline.switches, effective_trace=baseline.effective_trace,
            session_delays=(
                SessionDelay(0.0, 1.0, 1),
                SessionDelay(0.0, 3.0, 2),
                SessionDelay(0.0, 10.0, 3),
            ),
        )
        assert odd.median_delay == pytest.approx(3.0)
        even = SimulationResult(
            policy_name="x", profile_key="p", trace_name="t",
            breakdown=baseline.breakdown, intervals=baseline.intervals,
            switches=baseline.switches, effective_trace=baseline.effective_trace,
            session_delays=(SessionDelay(0.0, 2.0, 1), SessionDelay(0.0, 4.0, 2)),
        )
        assert even.median_delay == pytest.approx(3.0)

    def test_zero_baseline_energy_guard(self, pair):
        baseline, scheme = pair
        empty = SimulationResult(
            policy_name="x", profile_key="p", trace_name="t",
            breakdown=type(baseline.breakdown)(
                data_j=0, active_tail_j=0, high_idle_tail_j=0, idle_j=0,
                switch_j=0, data_time_s=0, active_time_s=0, high_idle_time_s=0,
                idle_time_s=0, promotions=0, demotions=0,
            ),
            intervals=(), switches=(), effective_trace=baseline.effective_trace,
        )
        assert scheme.energy_saved_fraction(empty) == 0.0
        assert scheme.switches_normalized(empty) == scheme.switch_count
        assert empty.energy_saved_per_switch(baseline) == 0.0
