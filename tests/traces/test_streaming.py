"""Tests for the lazy packet-stream generators."""

from __future__ import annotations

import itertools

import pytest

from repro.traces import (
    PacketTrace,
    merge_packet_streams,
    stream_application_packets,
    stream_user_day_packets,
)


class TestStreamApplicationPackets:
    def test_yields_time_ordered_packets(self):
        times = [p.timestamp for p in
                 stream_application_packets("im", duration=600.0, seed=1,
                                            chunk_s=120.0)]
        assert times
        assert times == sorted(times)
        assert times[-1] <= 600.0

    def test_deterministic_given_seed(self):
        def collect():
            return list(stream_application_packets("email", duration=400.0,
                                                   seed=3, chunk_s=100.0))

        first, second = collect(), collect()
        assert [(p.timestamp, p.size, p.flow_id) for p in first] == \
            [(p.timestamp, p.size, p.flow_id) for p in second]

    def test_different_seeds_differ(self):
        a = list(stream_application_packets("im", duration=300.0, seed=0))
        b = list(stream_application_packets("im", duration=300.0, seed=1))
        assert [p.timestamp for p in a] != [p.timestamp for p in b]

    def test_is_lazy(self):
        stream = stream_application_packets("im", duration=10_000.0, seed=0,
                                            chunk_s=50.0)
        # Pulling a handful of packets must not generate the whole workload.
        head = list(itertools.islice(stream, 5))
        assert len(head) == 5
        assert head[-1].timestamp < 10_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            next(stream_application_packets("im", duration=0.0))
        with pytest.raises(ValueError):
            next(stream_application_packets("im", duration=10.0, chunk_s=0.0))

    def test_materialises_to_a_valid_trace(self):
        trace = PacketTrace(
            stream_application_packets("finance", duration=300.0, seed=2),
            name="streamed",
        )
        assert len(trace) > 0
        assert trace.duration <= 300.0


class TestMergeAndUserStreams:
    def test_merge_preserves_global_order(self):
        a = stream_application_packets("im", duration=200.0, seed=0)
        b = stream_application_packets("email", duration=200.0, seed=1)
        merged = list(merge_packet_streams(a, b))
        times = [p.timestamp for p in merged]
        assert times == sorted(times)

    def test_user_day_remaps_flows_per_app(self):
        packets = list(stream_user_day_packets(("im", "finance"),
                                               duration=200.0, seed=0))
        assert packets
        flows = {p.flow_id for p in packets}
        # The second app's flows live in a distinct high range.
        assert any(f >= 1_000_000 for f in flows)
        assert any(f < 1_000_000 for f in flows)


class TestAppStreamSeedDerivation:
    """Regression: per-app stream seeds must not collide across devices.

    The old derivation was ``seed + 13 * index``; with the consecutive
    per-device seeds cell populations hand out, device ``i``'s app at
    index ``k`` replayed device ``i + 13k``'s index-0 app traffic —
    silently de-diversifying large cells.
    """

    @staticmethod
    def _shape(packets):
        return [(p.timestamp, p.size, p.direction) for p in packets]

    def test_cross_device_app_streams_do_not_replay(self):
        # Same app name at (seed=S, index=1) vs (seed=S+13, index=0): the
        # strided rule gave both generator seed S+13 — identical traffic.
        victim = list(stream_user_day_packets(("email", "im"),
                                              duration=400.0, seed=7))
        attacker = list(stream_user_day_packets(("im", "email"),
                                                duration=400.0, seed=7 + 13))
        victim_im = [p for p in victim if p.flow_id >= 1_000_000]
        attacker_im = [p for p in attacker if p.flow_id < 1_000_000]
        assert victim_im and attacker_im
        assert self._shape(victim_im) != self._shape(attacker_im)

    def test_single_app_user_day_differs_from_bare_app_stream_shifted(self):
        # index-0 seeds are hashed too, so consecutive device seeds no
        # longer walk the same derivation chain 13 apart.
        day_a = list(stream_user_day_packets(("im",), duration=300.0, seed=0))
        day_b = list(stream_user_day_packets(("im",), duration=300.0, seed=13))
        assert self._shape(day_a) != self._shape(day_b)

    def test_user_day_still_deterministic(self):
        first = list(stream_user_day_packets(("im", "email"),
                                             duration=300.0, seed=4))
        second = list(stream_user_day_packets(("im", "email"),
                                              duration=300.0, seed=4))
        assert self._shape(first) == self._shape(second)
        assert [p.flow_id for p in first] == [p.flow_id for p in second]


class TestRateEnvelopes:
    def test_no_envelope_is_byte_identical_to_before(self):
        # envelope=None must take the exact unshaped path (golden safety).
        plain = list(stream_application_packets("im", duration=400.0, seed=3,
                                                chunk_s=100.0))
        explicit = list(stream_application_packets("im", duration=400.0, seed=3,
                                                   chunk_s=100.0, envelope=None))
        assert plain == explicit

    def test_unit_envelope_matches_unshaped(self):
        # A constant 1.0 envelope divides every gap by exactly 1.0.
        plain = list(stream_application_packets("im", duration=400.0, seed=3,
                                                chunk_s=100.0))
        unit = list(stream_application_packets("im", duration=400.0, seed=3,
                                               chunk_s=100.0,
                                               envelope=lambda t: 1.0))
        assert plain == unit

    def test_higher_rate_yields_more_sessions(self):
        low = sum(1 for _ in stream_application_packets(
            "email", duration=3600.0, seed=5, chunk_s=600.0,
            envelope=lambda t: 0.25))
        high = sum(1 for _ in stream_application_packets(
            "email", duration=3600.0, seed=5, chunk_s=600.0,
            envelope=lambda t: 4.0))
        assert low < high

    def test_envelope_sees_absolute_time_across_chunks(self):
        # A rate step at t=600 must land on the second chunk's clock, not
        # restart at zero: the quiet half yields fewer packets than the
        # busy half even though each chunk is generated locally.
        step = lambda t: 0.1 if t < 600.0 else 4.0
        packets = list(stream_application_packets(
            "email", duration=1200.0, seed=5, chunk_s=300.0, envelope=step))
        quiet = sum(1 for p in packets if p.timestamp < 600.0)
        busy = sum(1 for p in packets if p.timestamp >= 600.0)
        assert quiet < busy

    def test_shaped_stream_is_still_time_ordered(self):
        stamps = [p.timestamp for p in stream_application_packets(
            "news", duration=900.0, seed=1, chunk_s=200.0,
            envelope=lambda t: 0.5 + (t // 300.0))]
        assert stamps == sorted(stamps)

    def test_non_positive_rate_raises(self):
        with pytest.raises(ValueError, match="must be positive"):
            list(stream_application_packets("im", duration=100.0, seed=0,
                                            envelope=lambda t: 0.0))

    def test_user_day_envelope_applies_to_every_app(self):
        low = sum(1 for _ in stream_user_day_packets(
            ("im", "email"), duration=1200.0, seed=2, chunk_s=400.0,
            envelope=lambda t: 0.2))
        high = sum(1 for _ in stream_user_day_packets(
            ("im", "email"), duration=1200.0, seed=2, chunk_s=400.0,
            envelope=lambda t: 3.0))
        assert low < high
