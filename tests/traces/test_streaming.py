"""Tests for the lazy packet-stream generators."""

from __future__ import annotations

import itertools

import pytest

from repro.traces import (
    PacketTrace,
    merge_packet_streams,
    stream_application_packets,
    stream_user_day_packets,
)


class TestStreamApplicationPackets:
    def test_yields_time_ordered_packets(self):
        times = [p.timestamp for p in
                 stream_application_packets("im", duration=600.0, seed=1,
                                            chunk_s=120.0)]
        assert times
        assert times == sorted(times)
        assert times[-1] <= 600.0

    def test_deterministic_given_seed(self):
        def collect():
            return list(stream_application_packets("email", duration=400.0,
                                                   seed=3, chunk_s=100.0))

        first, second = collect(), collect()
        assert [(p.timestamp, p.size, p.flow_id) for p in first] == \
            [(p.timestamp, p.size, p.flow_id) for p in second]

    def test_different_seeds_differ(self):
        a = list(stream_application_packets("im", duration=300.0, seed=0))
        b = list(stream_application_packets("im", duration=300.0, seed=1))
        assert [p.timestamp for p in a] != [p.timestamp for p in b]

    def test_is_lazy(self):
        stream = stream_application_packets("im", duration=10_000.0, seed=0,
                                            chunk_s=50.0)
        # Pulling a handful of packets must not generate the whole workload.
        head = list(itertools.islice(stream, 5))
        assert len(head) == 5
        assert head[-1].timestamp < 10_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            next(stream_application_packets("im", duration=0.0))
        with pytest.raises(ValueError):
            next(stream_application_packets("im", duration=10.0, chunk_s=0.0))

    def test_materialises_to_a_valid_trace(self):
        trace = PacketTrace(
            stream_application_packets("finance", duration=300.0, seed=2),
            name="streamed",
        )
        assert len(trace) > 0
        assert trace.duration <= 300.0


class TestMergeAndUserStreams:
    def test_merge_preserves_global_order(self):
        a = stream_application_packets("im", duration=200.0, seed=0)
        b = stream_application_packets("email", duration=200.0, seed=1)
        merged = list(merge_packet_streams(a, b))
        times = [p.timestamp for p in merged]
        assert times == sorted(times)

    def test_user_day_remaps_flows_per_app(self):
        packets = list(stream_user_day_packets(("im", "finance"),
                                               duration=200.0, seed=0))
        assert packets
        flows = {p.flow_id for p in packets}
        # The second app's flows live in a distinct high range.
        assert any(f >= 1_000_000 for f in flows)
        assert any(f < 1_000_000 for f in flows)
