"""Tests for the pcap reader/writer round trip."""

from __future__ import annotations

import io
import struct

import pytest

from repro.traces import Direction, Packet, PacketTrace, PcapError, read_pcap, write_pcap
from repro.traces.pcap import PcapReader, trace_to_bytes


@pytest.fixture
def round_trip_trace():
    return PacketTrace(
        [
            Packet(0.0, 200, Direction.UPLINK, flow_id=1),
            Packet(0.5, 1400, Direction.DOWNLINK, flow_id=1),
            Packet(10.0, 100, Direction.UPLINK, flow_id=2),
            Packet(10.2, 900, Direction.DOWNLINK, flow_id=2),
        ],
        name="roundtrip",
    )


class TestRoundTrip:
    def test_packet_count_preserved(self, round_trip_trace):
        data = trace_to_bytes(round_trip_trace)
        restored = read_pcap(io.BytesIO(data), device_address="10.0.0.2")
        assert len(restored) == len(round_trip_trace)

    def test_timestamps_preserved(self, round_trip_trace):
        data = trace_to_bytes(round_trip_trace)
        restored = read_pcap(io.BytesIO(data), device_address="10.0.0.2")
        for original, recovered in zip(round_trip_trace, restored):
            assert recovered.timestamp == pytest.approx(original.timestamp, abs=1e-5)

    def test_directions_preserved(self, round_trip_trace):
        data = trace_to_bytes(round_trip_trace)
        restored = read_pcap(io.BytesIO(data), device_address="10.0.0.2")
        for original, recovered in zip(round_trip_trace, restored):
            assert recovered.direction is original.direction

    def test_sizes_roughly_preserved(self, round_trip_trace):
        # The writer synthesises IP/UDP headers, so sizes are preserved for
        # packets at least as large as the 28-byte header overhead.
        data = trace_to_bytes(round_trip_trace)
        restored = read_pcap(io.BytesIO(data), device_address="10.0.0.2")
        for original, recovered in zip(round_trip_trace, restored):
            assert recovered.size == max(original.size, 28)

    def test_file_round_trip(self, round_trip_trace, tmp_path):
        path = tmp_path / "capture.pcap"
        write_pcap(path, round_trip_trace)
        restored = read_pcap(path)
        assert len(restored) == len(round_trip_trace)
        assert restored.name == "capture"

    def test_device_address_heuristic(self, round_trip_trace):
        # Without an explicit device address, the most common address is
        # taken to be the device; directions must still be self-consistent.
        data = trace_to_bytes(round_trip_trace)
        restored = read_pcap(io.BytesIO(data))
        uplink = sum(1 for p in restored if p.direction.is_uplink)
        assert uplink in (2, len(restored) - 2)


class TestPcapReader:
    def test_rejects_non_pcap(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_rejects_truncated_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_payload(self, round_trip_trace):
        data = trace_to_bytes(round_trip_trace)
        reader = PcapReader(io.BytesIO(data[:-4]))
        with pytest.raises(PcapError):
            list(reader)

    def test_reader_metadata(self, round_trip_trace):
        data = trace_to_bytes(round_trip_trace)
        reader = PcapReader(io.BytesIO(data))
        assert reader.version == (2, 4)
        assert reader.link_type == 101
        assert not reader.nanosecond_resolution

    def test_big_endian_header_accepted(self):
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        reader = PcapReader(io.BytesIO(header))
        assert reader.records() == []

    def test_empty_capture_gives_empty_trace(self):
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        trace = read_pcap(io.BytesIO(header), name="empty")
        assert len(trace) == 0
        assert trace.name == "empty"

    def test_non_ip_records_skipped(self):
        header = struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 101)
        junk = b"\x60" + b"\x00" * 39  # IPv6-looking payload: skipped
        record = struct.pack("<IIII", 0, 0, len(junk), len(junk)) + junk
        trace = read_pcap(io.BytesIO(header + record))
        assert len(trace) == 0


class TestWriter:
    def test_negative_timestamp_rejected(self, round_trip_trace):
        from repro.traces.pcap import PcapWriter

        writer = PcapWriter(io.BytesIO())
        with pytest.raises(ValueError):
            writer.write_record(-1.0, b"abc")

    def test_microsecond_rollover(self):
        from repro.traces.pcap import PcapWriter

        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write_record(1.9999999, b"x")
        buffer.seek(24)
        ts_sec, ts_usec, _, _ = struct.unpack("<IIII", buffer.read(16))
        assert ts_usec < 1_000_000
        assert ts_sec == 2
