"""Tests for burst and session segmentation."""

from __future__ import annotations

import pytest

from repro.traces import (
    Burst,
    Packet,
    PacketTrace,
    bursts_per_active_period,
    segment_bursts,
    session_start_times,
)
from repro.traces.bursts import iter_burst_gaps


def make_trace(times, flow_id=0):
    return PacketTrace([Packet(t, 100, flow_id=flow_id) for t in times])


class TestBurst:
    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Burst(start=5.0, end=4.0, packet_count=1, total_bytes=0)

    def test_requires_packet(self):
        with pytest.raises(ValueError):
            Burst(start=0.0, end=1.0, packet_count=0, total_bytes=0)

    def test_duration_and_gap(self):
        a = Burst(0.0, 1.0, 2, 100)
        b = Burst(5.0, 6.0, 1, 50)
        assert a.duration == pytest.approx(1.0)
        assert a.gap_to(b) == pytest.approx(4.0)


class TestSegmentBursts:
    def test_empty_trace(self):
        assert segment_bursts(PacketTrace([]), 1.0) == []

    def test_negative_threshold_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            segment_bursts(simple_trace, -1.0)

    def test_single_burst(self):
        bursts = segment_bursts(make_trace([0.0, 0.1, 0.2]), 1.0)
        assert len(bursts) == 1
        assert bursts[0].packet_count == 3

    def test_splits_on_long_gap(self, simple_trace):
        bursts = segment_bursts(simple_trace, 1.0)
        assert len(bursts) == 2
        assert bursts[0].packet_count == 3
        assert bursts[1].packet_count == 2

    def test_threshold_is_inclusive(self):
        bursts = segment_bursts(make_trace([0.0, 1.0, 2.0]), 1.0)
        assert len(bursts) == 1

    def test_burst_metadata(self, simple_trace):
        bursts = segment_bursts(simple_trace, 1.0)
        assert bursts[0].total_bytes == 2600
        assert bursts[0].flow_ids == (1,)
        assert bursts[1].flow_ids == (2,)

    def test_iter_burst_gaps(self, simple_trace):
        bursts = segment_bursts(simple_trace, 1.0)
        gaps = list(iter_burst_gaps(bursts))
        assert gaps == [pytest.approx(59.8)]


class TestBurstsPerActivePeriod:
    def test_empty_trace(self):
        assert bursts_per_active_period(PacketTrace([]), 1.0, 10.0) == 0.0

    def test_isolated_bursts(self):
        # Bursts 100 s apart, active window 10 s: one burst per period.
        trace = make_trace([0.0, 0.1, 100.0, 100.1, 200.0])
        assert bursts_per_active_period(trace, 1.0, 10.0) == pytest.approx(1.0)

    def test_clustered_bursts(self):
        # Three bursts 5 s apart (inside the 10 s window), then a lone burst.
        trace = make_trace([0.0, 5.0, 10.0, 200.0])
        k = bursts_per_active_period(trace, 1.0, 10.0)
        assert k == pytest.approx(2.0)  # periods of 3 and 1 bursts


class TestSessionStartTimes:
    def test_new_flow_is_session_start(self, simple_trace):
        starts = session_start_times(simple_trace, idle_gap=10.0)
        assert (0.0, 1) in starts
        assert (60.0, 2) in starts

    def test_continuation_not_a_start(self):
        trace = make_trace([0.0, 1.0, 2.0], flow_id=5)
        starts = session_start_times(trace, idle_gap=10.0)
        assert starts == [(0.0, 5)]

    def test_long_gap_restarts_session(self):
        trace = make_trace([0.0, 100.0], flow_id=5)
        starts = session_start_times(trace, idle_gap=10.0)
        assert len(starts) == 2

    def test_negative_idle_gap_rejected(self, simple_trace):
        with pytest.raises(ValueError):
            session_start_times(simple_trace, idle_gap=-1.0)
