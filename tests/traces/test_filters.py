"""Tests for the trace-transformation helpers."""

import pytest

from repro.traces import Direction, Packet, PacketTrace
from repro.traces.filters import (
    add_jitter,
    clip_sizes,
    downsample,
    drop_direction,
    gap_histogram,
    interleave,
    remap_flows,
    scale_time,
    slice_windows,
    split_by_app,
    split_by_flow,
    split_train_test,
    thin_by_fraction,
)


@pytest.fixture
def mixed_trace():
    return PacketTrace(
        [
            Packet(0.0, 100, Direction.UPLINK, flow_id=0, app="email"),
            Packet(1.0, 1400, Direction.DOWNLINK, flow_id=0, app="email"),
            Packet(10.0, 200, Direction.UPLINK, flow_id=1, app="im"),
            Packet(11.0, 2200, Direction.DOWNLINK, flow_id=1, app="im"),
            Packet(25.0, 300, Direction.UPLINK, flow_id=2, app="email"),
        ],
        name="mixed",
    )


class TestSliceWindows:
    def test_windows_cover_all_packets(self, mixed_trace):
        windows = slice_windows(mixed_trace, 10.0)
        assert sum(len(w) for w in windows) == len(mixed_trace)

    def test_empty_windows_dropped_by_default(self, mixed_trace):
        windows = slice_windows(mixed_trace, 5.0)
        assert all(len(w) > 0 for w in windows)

    def test_keep_empty_windows(self, mixed_trace):
        windows = slice_windows(mixed_trace, 5.0, keep_empty=True)
        assert any(len(w) == 0 for w in windows)

    def test_empty_trace(self):
        assert slice_windows(PacketTrace(), 10.0) == []

    def test_rejects_bad_window(self, mixed_trace):
        with pytest.raises(ValueError):
            slice_windows(mixed_trace, 0.0)


class TestSplitters:
    def test_split_by_app(self, mixed_trace):
        groups = split_by_app(mixed_trace)
        assert set(groups) == {"email", "im"}
        assert len(groups["email"]) == 3
        assert len(groups["im"]) == 2

    def test_split_by_flow(self, mixed_trace):
        groups = split_by_flow(mixed_trace)
        assert set(groups) == {0, 1, 2}
        assert all(
            all(p.flow_id == flow for p in sub) for flow, sub in groups.items()
        )

    def test_split_train_test_is_chronological(self, mixed_trace):
        train, test = split_train_test(mixed_trace, 0.5)
        assert len(train) + len(test) == len(mixed_trace)
        if train and test:
            assert train.end_time <= test.start_time

    def test_split_train_test_rejects_bad_fraction(self, mixed_trace):
        with pytest.raises(ValueError):
            split_train_test(mixed_trace, 1.0)


class TestThinning:
    def test_downsample_keeps_every_other(self, mixed_trace):
        thinned = downsample(mixed_trace, 2)
        assert len(thinned) == 3
        assert thinned[0].timestamp == 0.0

    def test_downsample_identity(self, mixed_trace):
        assert downsample(mixed_trace, 1) == mixed_trace

    def test_downsample_rejects_zero(self, mixed_trace):
        with pytest.raises(ValueError):
            downsample(mixed_trace, 0)

    def test_thin_by_fraction_deterministic(self, mixed_trace):
        first = thin_by_fraction(mixed_trace, 0.6, seed=4)
        second = thin_by_fraction(mixed_trace, 0.6, seed=4)
        assert first == second
        assert len(first) <= len(mixed_trace)

    def test_thin_full_fraction_keeps_all(self, mixed_trace):
        assert len(thin_by_fraction(mixed_trace, 1.0)) == len(mixed_trace)

    def test_thin_rejects_zero_fraction(self, mixed_trace):
        with pytest.raises(ValueError):
            thin_by_fraction(mixed_trace, 0.0)


class TestTimeTransforms:
    def test_add_jitter_bounded(self, mixed_trace):
        jittered = add_jitter(mixed_trace, 0.5, seed=1)
        assert len(jittered) == len(mixed_trace)
        for original, moved in zip(sorted(p.timestamp for p in mixed_trace),
                                   sorted(p.timestamp for p in jittered)):
            assert abs(moved - original) <= 0.5 + 1e-9

    def test_zero_jitter_is_identity(self, mixed_trace):
        assert add_jitter(mixed_trace, 0.0) == mixed_trace

    def test_jitter_rejects_negative(self, mixed_trace):
        with pytest.raises(ValueError):
            add_jitter(mixed_trace, -1.0)

    def test_scale_time_stretches_duration(self, mixed_trace):
        stretched = scale_time(mixed_trace, 2.0)
        assert stretched.duration == pytest.approx(2.0 * mixed_trace.duration)
        assert stretched.start_time == pytest.approx(mixed_trace.start_time)

    def test_scale_time_compresses(self, mixed_trace):
        squeezed = scale_time(mixed_trace, 0.5)
        assert squeezed.duration == pytest.approx(0.5 * mixed_trace.duration)

    def test_scale_time_rejects_non_positive(self, mixed_trace):
        with pytest.raises(ValueError):
            scale_time(mixed_trace, 0.0)


class TestStructureTransforms:
    def test_remap_flows(self, mixed_trace):
        collapsed = remap_flows(mixed_trace, lambda p: 0)
        assert set(collapsed.flow_ids) == {0}

    def test_interleave_offsets_flows(self, mixed_trace):
        combined = interleave([mixed_trace, mixed_trace])
        assert len(combined) == 2 * len(mixed_trace)
        # The second copy's flows must not collide with the first's.
        assert len(set(combined.flow_ids)) == 2 * len(set(mixed_trace.flow_ids))

    def test_interleave_without_flow_separation(self, mixed_trace):
        combined = interleave([mixed_trace, mixed_trace], separate_flows=False)
        assert set(combined.flow_ids) == set(mixed_trace.flow_ids)

    def test_clip_sizes(self, mixed_trace):
        clipped = clip_sizes(mixed_trace, mtu=1500)
        assert max(p.size for p in clipped) <= 1500
        assert len(clipped) == len(mixed_trace)

    def test_clip_sizes_rejects_bad_mtu(self, mixed_trace):
        with pytest.raises(ValueError):
            clip_sizes(mixed_trace, 0)

    def test_drop_direction(self, mixed_trace):
        downlink_only = drop_direction(mixed_trace, Direction.UPLINK)
        assert all(p.direction is Direction.DOWNLINK for p in downlink_only)
        assert len(downlink_only) == 2


class TestGapHistogram:
    def test_counts_sum_to_gap_count(self, mixed_trace):
        counts = gap_histogram(mixed_trace, [1.0, 10.0, 100.0])
        assert sum(counts) == len(mixed_trace) - 1

    def test_overflow_goes_to_last_bin(self):
        trace = PacketTrace([Packet(0.0), Packet(1000.0)])
        counts = gap_histogram(trace, [1.0, 2.0])
        assert counts == [0, 1]

    def test_rejects_non_increasing_edges(self, mixed_trace):
        with pytest.raises(ValueError):
            gap_histogram(mixed_trace, [2.0, 1.0])
        with pytest.raises(ValueError):
            gap_histogram(mixed_trace, [])
