"""Tests for inter-arrival statistics and the sliding-window distribution."""

from __future__ import annotations

import pytest

from repro.traces import (
    EmpiricalCdf,
    PacketTrace,
    Packet,
    SlidingWindowDistribution,
    inter_arrival_percentile,
    summarize_trace,
)


class TestEmpiricalCdf:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    def test_cdf_values(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.cdf(0.5) == 0.0
        assert cdf.cdf(2.0) == pytest.approx(0.5)
        assert cdf.cdf(10.0) == 1.0

    def test_survival_complements_cdf(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0])
        for x in (0.0, 1.5, 2.0, 5.0):
            assert cdf.survival(x) == pytest.approx(1.0 - cdf.cdf(x))

    def test_min_max_mean(self):
        cdf = EmpiricalCdf([2.0, 8.0, 5.0])
        assert cdf.min == 2.0
        assert cdf.max == 8.0
        assert cdf.mean == pytest.approx(5.0)

    def test_percentile_nearest_rank(self):
        cdf = EmpiricalCdf(range(1, 101))
        assert cdf.percentile(95.0) == 95
        assert cdf.percentile(100.0) == 100
        assert cdf.percentile(0.0) == 1

    def test_percentile_out_of_range(self):
        cdf = EmpiricalCdf([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(120.0)

    def test_conditional_survival_monotone_for_heavy_tail(self):
        # A distribution with a mass of short gaps and a mass of long gaps:
        # the longer you have waited without a packet, the more likely you
        # are in the long-gap regime (the property the paper relies on).
        samples = [0.1] * 80 + [30.0] * 20
        cdf = EmpiricalCdf(samples)
        p_short_wait = cdf.conditional_survival(0.0, 5.0)
        p_long_wait = cdf.conditional_survival(1.0, 5.0)
        assert p_long_wait >= p_short_wait

    def test_conditional_survival_degenerate(self):
        cdf = EmpiricalCdf([1.0, 2.0])
        assert cdf.conditional_survival(10.0, 1.0) == 1.0

    def test_histogram(self):
        cdf = EmpiricalCdf([0.5, 1.5, 2.5, 3.5])
        counts = cdf.histogram([0.0, 1.0, 2.0, 3.0, 4.0])
        assert counts == [1, 1, 1, 1]

    def test_histogram_requires_two_edges(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([1.0]).histogram([0.0])


class TestSlidingWindowDistribution:
    def test_window_size_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDistribution(window_size=1)

    def test_observe_builds_gaps(self):
        window = SlidingWindowDistribution(window_size=10)
        for t in (0.0, 1.0, 3.0, 6.0):
            window.observe(t)
        assert window.samples == (1.0, 2.0, 3.0)

    def test_window_slides(self):
        window = SlidingWindowDistribution(window_size=3)
        for t in range(10):
            window.observe(float(t))
        assert window.sample_count == 3

    def test_rejects_time_going_backwards(self):
        window = SlidingWindowDistribution()
        window.observe(5.0)
        with pytest.raises(ValueError):
            window.observe(4.0)

    def test_observe_gap_direct(self):
        window = SlidingWindowDistribution()
        window.observe_gap(2.0)
        assert window.samples == (2.0,)
        with pytest.raises(ValueError):
            window.observe_gap(-1.0)

    def test_reset(self):
        window = SlidingWindowDistribution()
        window.observe(0.0)
        window.observe(1.0)
        window.reset()
        assert window.sample_count == 0
        assert window.cdf() is None

    def test_is_warm(self):
        window = SlidingWindowDistribution()
        assert not window.is_warm()
        for t in (0.0, 1.0, 2.0):
            window.observe(t)
        assert window.is_warm(2)

    def test_cold_start_probability_is_pessimistic(self):
        window = SlidingWindowDistribution()
        assert window.probability_no_packet(0.5, 1.0) == 0.0

    def test_probability_gap_exceeds(self):
        window = SlidingWindowDistribution()
        for gap in (1.0, 2.0, 10.0, 12.0):
            window.observe_gap(gap)
        assert window.probability_gap_exceeds(5.0) == pytest.approx(0.5)


class TestTraceSummaries:
    def test_inter_arrival_percentile(self, heartbeat_trace):
        p95 = inter_arrival_percentile(heartbeat_trace, 95.0)
        assert 0.0 < p95 <= 15.0

    def test_inter_arrival_percentile_needs_two_packets(self):
        with pytest.raises(ValueError):
            inter_arrival_percentile(PacketTrace([Packet(0.0, 1)]))

    def test_summarize_trace(self, simple_trace):
        summary = summarize_trace(simple_trace)
        assert summary.packet_count == 5
        assert summary.total_bytes == 3600
        assert summary.max_inter_arrival == pytest.approx(59.8)
        assert summary.mean_throughput_bps > 0

    def test_summarize_single_packet_trace(self):
        summary = summarize_trace(PacketTrace([Packet(0.0, 10)], name="one"))
        assert summary.packet_count == 1
        assert summary.p95_inter_arrival == 0.0
        assert summary.mean_throughput_bps == 0.0
