"""Tests for the Packet and PacketTrace containers."""

from __future__ import annotations

import pytest

from repro.traces import Direction, Packet, PacketTrace, merge_traces


class TestDirection:
    def test_uplink_flags(self):
        assert Direction.UPLINK.is_uplink
        assert not Direction.UPLINK.is_downlink

    def test_downlink_flags(self):
        assert Direction.DOWNLINK.is_downlink
        assert not Direction.DOWNLINK.is_uplink

    def test_opposite(self):
        assert Direction.UPLINK.opposite() is Direction.DOWNLINK
        assert Direction.DOWNLINK.opposite() is Direction.UPLINK


class TestPacket:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(0.0, -1)

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Packet(-0.5, 100)

    def test_shifted_moves_timestamp_only(self):
        packet = Packet(10.0, 100, Direction.UPLINK, flow_id=3, app="im")
        shifted = packet.shifted(5.0)
        assert shifted.timestamp == pytest.approx(15.0)
        assert shifted.size == 100
        assert shifted.flow_id == 3
        assert shifted.app == "im"

    def test_with_flow_and_app(self):
        packet = Packet(1.0, 10)
        assert packet.with_flow(7).flow_id == 7
        assert packet.with_app("news").app == "news"

    def test_ordering_by_timestamp(self):
        assert Packet(1.0, 10) < Packet(2.0, 5)


class TestPacketTrace:
    def test_sorts_packets_by_time(self):
        trace = PacketTrace([Packet(5.0, 1), Packet(1.0, 2), Packet(3.0, 3)])
        assert trace.timestamps == (1.0, 3.0, 5.0)

    def test_len_and_iteration(self, simple_trace):
        assert len(simple_trace) == 5
        assert [p.size for p in simple_trace] == [200, 1200, 1200, 200, 800]

    def test_slice_returns_trace(self, simple_trace):
        head = simple_trace[:3]
        assert isinstance(head, PacketTrace)
        assert len(head) == 3

    def test_empty_trace_properties(self):
        trace = PacketTrace([])
        assert not trace
        assert trace.duration == 0.0
        assert trace.total_bytes == 0
        assert trace.inter_arrival_times == ()

    def test_inter_arrival_times(self, simple_trace):
        gaps = simple_trace.inter_arrival_times
        assert len(gaps) == 4
        assert gaps[0] == pytest.approx(0.1)
        assert gaps[2] == pytest.approx(59.8)

    def test_duration_and_bounds(self, simple_trace):
        assert simple_trace.start_time == pytest.approx(0.0)
        assert simple_trace.end_time == pytest.approx(60.1)
        assert simple_trace.duration == pytest.approx(60.1)

    def test_byte_counters(self, simple_trace):
        assert simple_trace.total_bytes == 3600
        assert simple_trace.uplink_bytes == 400
        assert simple_trace.downlink_bytes == 3200

    def test_flow_ids_and_only_flow(self, simple_trace):
        assert simple_trace.flow_ids == (1, 2)
        assert len(simple_trace.only_flow(1)) == 3

    def test_only_direction(self, simple_trace):
        assert len(simple_trace.only_direction(Direction.UPLINK)) == 2

    def test_between_half_open(self, simple_trace):
        window = simple_trace.between(0.0, 60.0)
        assert len(window) == 3
        assert simple_trace.between(0.0, 60.1 + 1e-9).count_between(0.0, 100.0) == 5

    def test_between_rejects_inverted_range(self, simple_trace):
        with pytest.raises(ValueError):
            simple_trace.between(10.0, 5.0)

    def test_count_between(self, simple_trace):
        assert simple_trace.count_between(0.0, 1.0) == 3
        assert simple_trace.count_between(1.0, 0.0) == 0

    def test_next_packet_after(self, simple_trace):
        nxt = simple_trace.next_packet_after(0.2)
        assert nxt is not None
        assert nxt.timestamp == pytest.approx(60.0)
        assert simple_trace.next_packet_after(60.1) is None

    def test_shifted_and_normalized(self, simple_trace):
        shifted = simple_trace.shifted(10.0)
        assert shifted.start_time == pytest.approx(10.0)
        assert shifted.normalized().start_time == pytest.approx(0.0)

    def test_renamed(self, simple_trace):
        assert simple_trace.renamed("other").name == "other"

    def test_equality_and_hash(self):
        a = PacketTrace([Packet(0.0, 1), Packet(1.0, 2)])
        b = PacketTrace([Packet(1.0, 2), Packet(0.0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_concatenate(self, simple_trace):
        other = PacketTrace([Packet(100.0, 10)])
        combined = simple_trace.concatenate(other)
        assert len(combined) == 6
        assert combined.end_time == pytest.approx(100.0)

    def test_filter(self, simple_trace):
        big = simple_trace.filter(lambda p: p.size >= 800)
        assert len(big) == 3


class TestMergeTraces:
    def test_merge_preserves_packets_and_order(self, simple_trace):
        other = PacketTrace([Packet(0.05, 500, Direction.DOWNLINK, flow_id=1)])
        merged = merge_traces([simple_trace, other])
        assert len(merged) == 6
        assert merged.timestamps == tuple(sorted(merged.timestamps))

    def test_merge_remaps_flow_ids(self):
        a = PacketTrace([Packet(0.0, 1, flow_id=1)])
        b = PacketTrace([Packet(1.0, 1, flow_id=1)])
        merged = merge_traces([a, b])
        assert len(set(p.flow_id for p in merged)) == 2

    def test_merge_empty_inputs(self):
        assert len(merge_traces([])) == 0
