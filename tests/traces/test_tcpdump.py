"""Tests for the tcpdump text-log parser and writer."""

import io

import pytest

from repro.traces import Direction, Packet, PacketTrace
from repro.traces.tcpdump import (
    format_tcpdump_line,
    parse_tcpdump_line,
    parse_tcpdump_lines,
    read_tcpdump,
    write_tcpdump,
)

DEVICE = "10.0.0.2"

SAMPLE_LOG = """\
1355241600.000000 IP 10.0.0.2.44312 > 93.184.216.34.443: tcp 120
1355241600.100000 IP 93.184.216.34.443 > 10.0.0.2.44312: tcp 1448
1355241600.200000 IP 93.184.216.34.443 > 10.0.0.2.44312: tcp 1448
garbage line that tcpdump sometimes prints
1355241615.000000 IP 10.0.0.2.51000 > 198.51.100.7.80: UDP, length 96
1355241615.500000 IP 198.51.100.7.80 > 10.0.0.2.51000: tcp 0
"""


class TestParseLine:
    def test_basic_tcp_line(self):
        fields = parse_tcpdump_line(
            "1355241600.0 IP 10.0.0.2.44312 > 93.184.216.34.443: tcp 1448", DEVICE
        )
        assert fields is not None
        timestamp, src, dst, length = fields
        assert timestamp == pytest.approx(1355241600.0)
        assert src == "10.0.0.2:44312"
        assert dst == "93.184.216.34:443"
        assert length == 1448

    def test_length_keyword_form(self):
        fields = parse_tcpdump_line(
            "100.5 IP 10.0.0.2.1 > 8.8.8.8.53: UDP, length 64", DEVICE
        )
        assert fields is not None
        assert fields[3] == 64

    def test_endpoints_without_ports(self):
        fields = parse_tcpdump_line(
            "7.0 IP 10.0.0.2 > 8.8.8.8: ICMP echo request (84)", DEVICE
        )
        assert fields is not None
        assert fields[1] == "10.0.0.2"
        assert fields[3] == 84

    def test_unparseable_line_returns_none(self):
        assert parse_tcpdump_line("listening on rmnet0, link-type RAW", DEVICE) is None
        assert parse_tcpdump_line("", DEVICE) is None


class TestParseLines:
    def test_parses_and_counts(self):
        result = parse_tcpdump_lines(SAMPLE_LOG.splitlines(), DEVICE)
        assert result.parsed_lines == 5
        assert result.skipped_lines == 1
        assert result.total_lines == 6
        assert len(result.trace) == 5

    def test_directions_inferred_from_device_address(self):
        result = parse_tcpdump_lines(SAMPLE_LOG.splitlines(), DEVICE)
        directions = [p.direction for p in result.trace]
        assert directions[0] is Direction.UPLINK
        assert directions[1] is Direction.DOWNLINK

    def test_flow_ids_per_remote_endpoint(self):
        result = parse_tcpdump_lines(SAMPLE_LOG.splitlines(), DEVICE)
        flows = {p.flow_id for p in result.trace}
        assert len(flows) == 2  # two remote endpoints in the sample

    def test_trace_is_normalised_to_zero(self):
        result = parse_tcpdump_lines(SAMPLE_LOG.splitlines(), DEVICE)
        assert result.trace.start_time == pytest.approx(0.0)
        assert result.trace.duration == pytest.approx(15.5)


class TestReadWrite:
    def test_read_from_file_object(self):
        result = read_tcpdump(io.StringIO(SAMPLE_LOG), DEVICE)
        assert len(result.trace) == 5

    def test_read_from_path(self, tmp_path):
        path = tmp_path / "capture.txt"
        path.write_text(SAMPLE_LOG, encoding="utf-8")
        result = read_tcpdump(path, DEVICE)
        assert result.trace.name == "capture"
        assert len(result.trace) == 5

    def test_round_trip_through_writer(self, tmp_path):
        original = PacketTrace(
            [
                Packet(0.0, 120, Direction.UPLINK, flow_id=0),
                Packet(0.5, 1400, Direction.DOWNLINK, flow_id=0),
                Packet(20.0, 96, Direction.UPLINK, flow_id=1),
            ],
            name="round",
        )
        path = tmp_path / "round.txt"
        lines = write_tcpdump(original, path, device_address=DEVICE)
        assert lines == 3
        parsed = read_tcpdump(path, DEVICE).trace
        assert len(parsed) == 3
        assert [p.size for p in parsed] == [120, 1400, 96]
        assert [p.direction for p in parsed] == [p.direction for p in original]
        assert parsed.duration == pytest.approx(original.duration)

    def test_write_empty_trace(self, tmp_path):
        path = tmp_path / "empty.txt"
        assert write_tcpdump(PacketTrace(), path) == 0
        assert read_tcpdump(path).trace == PacketTrace()

    def test_format_line_uplink_and_downlink(self):
        up = format_tcpdump_line(Packet(1.0, 99, Direction.UPLINK, flow_id=3), DEVICE)
        down = format_tcpdump_line(Packet(1.0, 99, Direction.DOWNLINK, flow_id=3), DEVICE)
        assert up.startswith("1.000000 IP 10.0.0.2.")
        assert "> 10.0.0.2." in down
        assert up.endswith("tcp 99")
