"""Tests for the synthetic per-user trace data sets."""

from __future__ import annotations

import pytest

from repro.traces import (
    USER_POPULATIONS,
    population_traces,
    user_ids,
    user_profile,
    user_trace,
)


class TestRosters:
    def test_populations_match_paper_counts(self):
        # Figures 10-12 plot six Verizon 3G users and three Verizon LTE users;
        # Section 6.1 describes six T-Mobile users.
        assert len(USER_POPULATIONS["verizon_3g"]) == 6
        assert len(USER_POPULATIONS["verizon_lte"]) == 3
        assert len(USER_POPULATIONS["tmobile_3g"]) == 6

    def test_user_ids(self):
        assert user_ids("verizon_3g") == (1, 2, 3, 4, 5, 6)
        assert user_ids("verizon_lte") == (1, 2, 3)

    def test_total_device_days_close_to_paper(self):
        # The paper collected 28 device-days across nine users on T-Mobile
        # and Verizon; the synthetic rosters should be of the same order.
        days = sum(
            profile.days
            for population in ("verizon_3g", "verizon_lte")
            for profile in USER_POPULATIONS[population]
        )
        assert 20 <= days <= 36

    def test_unknown_population(self):
        with pytest.raises(KeyError):
            user_ids("sprint_5g")

    def test_unknown_user(self):
        with pytest.raises(KeyError):
            user_profile("verizon_3g", 99)

    def test_profile_labels(self):
        assert user_profile("verizon_lte", 2).label == "verizon_lte/user2"

    def test_every_app_reference_is_valid(self):
        from repro.traces import APPLICATION_PROFILES

        for population in USER_POPULATIONS.values():
            for profile in population:
                for app in profile.apps:
                    assert app in APPLICATION_PROFILES


class TestUserTraces:
    def test_trace_determinism(self):
        a = user_trace("verizon_3g", 1, hours_per_day=0.5, seed=0)
        b = user_trace("verizon_3g", 1, hours_per_day=0.5, seed=0)
        assert a == b

    def test_users_differ(self):
        a = user_trace("verizon_3g", 1, hours_per_day=0.5, seed=0)
        b = user_trace("verizon_3g", 2, hours_per_day=0.5, seed=0)
        assert a != b

    def test_trace_is_normalised_and_named(self):
        trace = user_trace("verizon_lte", 1, hours_per_day=0.5, seed=0)
        assert trace.start_time == pytest.approx(0.0)
        assert trace.name == "verizon_lte/user1"

    def test_duration_scales_with_days(self):
        profile = user_profile("verizon_3g", 3)
        trace = user_trace("verizon_3g", 3, hours_per_day=0.5, seed=0)
        assert trace.duration <= profile.days * 0.5 * 3600.0 + 1.0
        assert trace.duration > (profile.days - 1) * 0.5 * 3600.0

    def test_invalid_hours(self):
        with pytest.raises(ValueError):
            user_trace("verizon_3g", 1, hours_per_day=0.0)

    def test_heavier_user_sends_more_traffic(self):
        light = user_trace("verizon_3g", 6, hours_per_day=0.5, seed=0)  # factor 0.5
        heavy = user_trace("verizon_3g", 5, hours_per_day=0.5, seed=0)  # factor 1.6
        packets_per_day_light = len(light) / user_profile("verizon_3g", 6).days
        packets_per_day_heavy = len(heavy) / user_profile("verizon_3g", 5).days
        assert packets_per_day_heavy > packets_per_day_light

    def test_population_traces_covers_all_users(self):
        traces = population_traces("verizon_lte", hours_per_day=0.25, seed=1)
        assert set(traces) == {1, 2, 3}
        assert all(len(t) > 0 for t in traces.values())
