"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.traces import (
    APPLICATION_NAMES,
    APPLICATION_PROFILES,
    PacketTrainSpec,
    generate_application_trace,
    generate_mixed_trace,
    generate_periodic_trace,
    generate_poisson_trace,
    summarize_trace,
)


class TestPacketTrainSpec:
    def test_requires_at_least_one_packet(self):
        with pytest.raises(ValueError):
            PacketTrainSpec(uplink_packets=0, downlink_packets=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            PacketTrainSpec(uplink_packets=-1, downlink_packets=1)

    def test_invalid_gaps_rejected(self):
        with pytest.raises(ValueError):
            PacketTrainSpec(1, 1, intra_gap_mean=0.0)

    def test_emit_counts_and_order(self):
        import random

        spec = PacketTrainSpec(uplink_packets=2, downlink_packets=3)
        packets = spec.emit(random.Random(0), start=10.0, flow_id=4, app="x")
        assert len(packets) == 5
        assert all(p.flow_id == 4 and p.app == "x" for p in packets)
        times = [p.timestamp for p in packets]
        assert times == sorted(times)
        assert packets[0].direction.is_uplink
        assert packets[-1].direction.is_downlink


class TestApplicationProfiles:
    def test_all_seven_categories_present(self):
        assert set(APPLICATION_NAMES) == set(APPLICATION_PROFILES)
        assert len(APPLICATION_NAMES) == 7

    @pytest.mark.parametrize("app", APPLICATION_NAMES)
    def test_each_profile_generates_packets(self, app):
        trace = generate_application_trace(app, duration=600.0, seed=1)
        assert len(trace) > 0
        assert trace.name == app
        assert trace.end_time < 600.0

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            generate_application_trace("does-not-exist", duration=100.0)

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            generate_application_trace("im", duration=0.0)

    def test_determinism(self):
        a = generate_application_trace("news", duration=1200.0, seed=42)
        b = generate_application_trace("news", duration=1200.0, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_application_trace("news", duration=1200.0, seed=1)
        b = generate_application_trace("news", duration=1200.0, seed=2)
        assert a != b

    def test_im_heartbeat_cadence(self):
        # IM heartbeats are described as every 5-20 seconds; the median
        # inter-burst gap of the generated trace must fall in that band.
        trace = generate_application_trace("im", duration=1800.0, seed=5)
        gaps = [g for g in trace.inter_arrival_times if g > 2.0]
        assert gaps, "IM trace should contain inter-heartbeat gaps"
        gaps.sort()
        median = gaps[len(gaps) // 2]
        assert 4.0 <= median <= 21.0

    def test_email_sync_cadence(self):
        trace = generate_application_trace("email", duration=3600.0, seed=5)
        gaps = [g for g in trace.inter_arrival_times if g > 60.0]
        assert gaps
        mean = sum(gaps) / len(gaps)
        assert 240.0 <= mean <= 330.0

    def test_finance_is_dense(self):
        trace = generate_application_trace("finance", duration=300.0, seed=5)
        summary = summarize_trace(trace)
        assert summary.packet_count > 300
        assert summary.p95_inter_arrival < 2.0


class TestGenericGenerators:
    def test_poisson_rate(self):
        trace = generate_poisson_trace(rate=1.0, duration=2000.0, seed=3)
        assert 1700 < len(trace) < 2300

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            generate_poisson_trace(rate=0.0, duration=10.0)
        with pytest.raises(ValueError):
            generate_poisson_trace(rate=1.0, duration=-1.0)

    def test_periodic_burst_structure(self):
        trace = generate_periodic_trace(period=10.0, duration=100.0, burst_packets=3)
        assert len(trace) == 9 * 3
        bursts = [g for g in trace.inter_arrival_times if g > 1.0]
        assert all(abs(g - 10.0) < 0.2 for g in bursts)

    def test_periodic_validation(self):
        with pytest.raises(ValueError):
            generate_periodic_trace(period=0.0, duration=10.0)
        with pytest.raises(ValueError):
            generate_periodic_trace(period=1.0, duration=10.0, burst_packets=0)

    def test_mixed_trace_merges_apps(self):
        trace = generate_mixed_trace(["im", "email"], duration=1200.0, seed=0)
        assert trace.apps == ("email", "im")
        assert len(trace) > 0
        assert trace.timestamps == tuple(sorted(trace.timestamps))
