"""CLI validation for scenario sweeps: flag guards, presets, plan round-trips."""

import json

import pytest

from repro.cli import main
from repro.config import load_plan
from repro.scenarios import scenario_names


def _sweep(*extra):
    return main([
        "sweep", "--cell", "--devices", "8", "--duration", "200",
        "--carriers", "att_hspa", "--schemes", "makeidle", *extra,
    ])


class TestScenarioFlagValidation:
    def test_scenario_without_cell_is_rejected(self, capsys):
        code = main(["sweep", "--apps", "im", "--scenario", "office_day",
                     "--duration", "120"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--scenario" in err
        assert "--cell" in err

    def test_unknown_preset_lists_available_presets(self, capsys):
        code = _sweep("--scenario", "not_a_preset")
        assert code == 2
        err = capsys.readouterr().err
        for name in scenario_names():
            assert name in err

    def test_scenario_conflicts_with_apps(self, capsys):
        code = main([
            "sweep", "--cell", "--apps", "im", "--scenario", "uniform",
            "--duration", "120",
        ])
        assert code == 2
        assert "--apps" in capsys.readouterr().err

    def test_empty_scenario_list_is_rejected(self, capsys):
        code = _sweep("--scenario", ",")
        assert code == 2
        assert "at least one preset" in capsys.readouterr().err


class TestScenarioSweeps:
    def test_scenario_sweep_prints_cohort_table(self, capsys):
        code = _sweep("--scenario", "office_day")
        assert code == 0
        out = capsys.readouterr().out
        assert "office_day" in out
        assert "cohort" in out
        for cohort in ("office_worker", "heavy_streamer", "idle_messenger"):
            assert cohort in out
        # The cohort table repeats the disambiguating axes of the cell
        # table (carrier/shards/seed), so multi-carrier or repeated
        # sweeps stay readable.
        cohort_header = [line for line in out.splitlines()
                         if "cohort" in line and "carrier" in line]
        assert cohort_header and "seed" in cohort_header[0]

    def test_scenario_json_carries_cohort_breakdowns(self, capsys):
        code = _sweep("--scenario", "uniform", "--json", "-")
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        records = payload["records"]
        assert records
        for record in records:
            assert set(record["cohorts"]) == {"background_chatter"}

    def test_multiple_presets_sweep_together(self, capsys):
        code = _sweep("--scenario", "uniform,evening_peak", "--json", "-")
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        labels = {record["trace"] for record in payload["records"]}
        assert any(label.startswith("uniform") for label in labels)
        assert any(label.startswith("evening_peak") for label in labels)


class TestScenarioPlanRoundTrip:
    def test_save_plan_round_trips_scenario_json(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = _sweep("--scenario", "mixed_policy", "--shards", "2",
                      "--save-plan", str(plan_path))
        assert code == 0
        first = capsys.readouterr()

        saved = load_plan(plan_path)
        assert saved.is_cell_plan
        (spec,) = saved.cell_specs
        assert spec.scenario is not None
        assert spec.scenario.name == "mixed_policy"
        assert spec.scenario.has_policy_overrides

        # Replaying the saved plan reproduces the exact same sweep.
        code = main(["sweep", "--plan", str(plan_path)])
        assert code == 0
        replay = capsys.readouterr()
        assert replay.out == first.out

    def test_saved_plan_json_is_self_contained(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        code = _sweep("--scenario", "office_day", "--save-plan",
                      str(plan_path))
        assert code == 0
        capsys.readouterr()
        data = json.loads(plan_path.read_text(encoding="utf-8"))
        (cell_entry,) = data["cells"]
        scenario = cell_entry["scenario"]
        assert scenario["name"] == "office_day"
        assert scenario["shape"]["name"] == "office_hours"
        assert [c["archetype"]["name"] for c in scenario["cohorts"]] == [
            "office_worker", "heavy_streamer", "idle_messenger",
        ]
