"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FixedTimerPolicy, OraclePolicy, StatusQuoPolicy
from repro.energy import TailEnergyModel
from repro.learning import FixedShareExperts, LearnAlpha, MakeActiveLoss
from repro.rrc import CARRIER_PROFILES, RrcStateMachine, get_profile
from repro.sim import TraceSimulator
from repro.traces import (
    Direction,
    EmpiricalCdf,
    Packet,
    PacketTrace,
    SlidingWindowDistribution,
    segment_bursts,
)

carrier_keys = st.sampled_from(sorted(CARRIER_PROFILES))

packet_lists = st.lists(
    st.builds(
        Packet,
        timestamp=st.floats(min_value=0.0, max_value=5000.0,
                            allow_nan=False, allow_infinity=False),
        size=st.integers(min_value=0, max_value=65_000),
        direction=st.sampled_from(list(Direction)),
        flow_id=st.integers(min_value=0, max_value=5),
    ),
    min_size=0,
    max_size=60,
)

gap_lists = st.lists(
    st.floats(min_value=0.0, max_value=500.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=80,
)


class TestTraceProperties:
    @given(packets=packet_lists)
    def test_trace_is_always_sorted(self, packets):
        trace = PacketTrace(packets)
        times = trace.timestamps
        assert all(b >= a for a, b in zip(times, times[1:]))

    @given(packets=packet_lists)
    def test_inter_arrivals_are_non_negative_and_sum_to_duration(self, packets):
        trace = PacketTrace(packets)
        gaps = trace.inter_arrival_times
        assert all(g >= 0.0 for g in gaps)
        assert math.isclose(sum(gaps), trace.duration, rel_tol=1e-9, abs_tol=1e-6)

    @given(packets=packet_lists, offset=st.floats(min_value=0.0, max_value=100.0))
    def test_shifting_preserves_gaps(self, packets, offset):
        trace = PacketTrace(packets)
        shifted = trace.shifted(offset)
        for a, b in zip(trace.inter_arrival_times, shifted.inter_arrival_times):
            assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)

    @given(packets=packet_lists, threshold=st.floats(min_value=0.0, max_value=100.0))
    def test_bursts_partition_the_trace(self, packets, threshold):
        trace = PacketTrace(packets)
        bursts = segment_bursts(trace, threshold)
        assert sum(b.packet_count for b in bursts) == len(trace)
        assert sum(b.total_bytes for b in bursts) == trace.total_bytes
        for previous, current in zip(bursts, bursts[1:]):
            assert current.start - previous.end > threshold


class TestStatisticsProperties:
    @given(samples=gap_lists)
    def test_cdf_is_monotone_and_bounded(self, samples):
        cdf = EmpiricalCdf(samples)
        points = sorted({0.0, min(samples), max(samples), sum(samples) / len(samples)})
        values = [cdf.cdf(p) for p in points]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert all(b >= a for a, b in zip(values, values[1:]))

    @given(samples=gap_lists, q=st.floats(min_value=1.0, max_value=100.0))
    def test_percentile_is_an_observed_sample(self, samples, q):
        cdf = EmpiricalCdf(samples)
        assert cdf.percentile(q) in set(samples)

    @given(samples=gap_lists)
    def test_conditional_survival_in_unit_interval(self, samples):
        cdf = EmpiricalCdf(samples)
        value = cdf.conditional_survival(1.0, 2.0)
        assert 0.0 <= value <= 1.0

    @given(gaps=gap_lists)
    def test_sliding_window_never_exceeds_capacity(self, gaps):
        window = SlidingWindowDistribution(window_size=16)
        for gap in gaps:
            window.observe_gap(gap)
        assert window.sample_count <= 16
        assert window.samples == tuple(gaps[-16:])


class TestEnergyModelProperties:
    @given(carrier=carrier_keys,
           gaps=st.tuples(st.floats(min_value=0.0, max_value=120.0),
                          st.floats(min_value=0.0, max_value=120.0)))
    def test_tail_energy_is_monotone(self, carrier, gaps):
        model = TailEnergyModel(get_profile(carrier))
        low, high = sorted(gaps)
        assert model.tail_energy(low) <= model.tail_energy(high) + 1e-12

    @given(carrier=carrier_keys, gap=st.floats(min_value=0.0, max_value=120.0))
    def test_wait_energy_never_exceeds_tail_energy(self, carrier, gap):
        model = TailEnergyModel(get_profile(carrier))
        assert model.wait_energy(gap) <= model.tail_energy(gap) + 1e-12

    @given(carrier=carrier_keys)
    def test_threshold_consistent_with_switch_energy(self, carrier):
        model = TailEnergyModel(get_profile(carrier))
        threshold = model.t_threshold
        assert model.tail_energy(max(0.0, threshold - 1e-6)) <= model.switch_energy + 1e-9


class TestLearningProperties:
    loss_matrix = st.lists(
        st.lists(st.floats(min_value=0.0, max_value=5.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=4, max_size=4),
        min_size=1, max_size=30,
    )

    @given(losses=loss_matrix)
    def test_fixed_share_weights_remain_a_distribution(self, losses):
        learner = FixedShareExperts([1.0, 2.0, 3.0, 4.0], alpha=0.15)
        for row in losses:
            learner.update(row)
            assert math.isclose(sum(learner.weights), 1.0, rel_tol=1e-9)
            assert all(w >= 0.0 for w in learner.weights)

    @given(losses=loss_matrix)
    def test_learn_alpha_prediction_stays_in_expert_range(self, losses):
        learner = LearnAlpha([1.0, 2.0, 3.0, 4.0], alphas=[0.01, 0.2])
        for row in losses:
            value = learner.update(row)
            assert 1.0 - 1e-9 <= value <= 4.0 + 1e-9

    @given(bound=st.floats(min_value=0.0, max_value=20.0),
           offsets=st.lists(st.floats(min_value=0.0, max_value=20.0),
                            min_size=0, max_size=10))
    def test_loss_is_non_negative(self, bound, offsets):
        assert MakeActiveLoss()(bound, offsets) >= 0.0


class TestStateMachineProperties:
    event_times = st.lists(
        st.floats(min_value=0.0, max_value=2000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=40,
    )

    @given(carrier=carrier_keys, times=event_times)
    @settings(max_examples=50)
    def test_timeline_is_contiguous_and_complete(self, carrier, times):
        machine = RrcStateMachine(get_profile(carrier))
        ordered = sorted(times)
        for t in ordered:
            machine.notify_activity(t)
        end = ordered[-1] + 60.0
        machine.finish(end)
        total = sum(i.duration for i in machine.intervals)
        assert math.isclose(total, end, rel_tol=1e-9, abs_tol=1e-6)
        for previous, current in zip(machine.intervals, machine.intervals[1:]):
            assert math.isclose(previous.end, current.start, rel_tol=1e-9)

    @given(carrier=carrier_keys, times=event_times)
    @settings(max_examples=50)
    def test_switch_energy_is_non_negative(self, carrier, times):
        machine = RrcStateMachine(get_profile(carrier))
        for t in sorted(times):
            machine.notify_activity(t)
        machine.finish(sorted(times)[-1] + 30.0)
        assert all(s.energy_j >= 0.0 for s in machine.switches)


class TestSimulatorProperties:
    @given(carrier=carrier_keys, packets=packet_lists)
    @settings(max_examples=30, deadline=None)
    def test_any_trace_any_carrier_runs_and_balances(self, carrier, packets):
        profile = get_profile(carrier)
        trace = PacketTrace(packets)
        simulator = TraceSimulator(profile)
        result = simulator.run(trace, StatusQuoPolicy())
        breakdown = result.breakdown
        assert breakdown.total_j >= 0.0
        assert math.isclose(
            breakdown.total_j,
            breakdown.data_j + breakdown.active_tail_j + breakdown.high_idle_tail_j
            + breakdown.idle_j + breakdown.switch_j,
            rel_tol=1e-9, abs_tol=1e-9,
        )
        assert len(result.effective_trace) == len(trace)

    @given(carrier=carrier_keys, packets=packet_lists,
           timeout=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_fixed_timer_never_loses_packets(self, carrier, packets, timeout):
        profile = get_profile(carrier)
        trace = PacketTrace(packets)
        result = TraceSimulator(profile).run(trace, FixedTimerPolicy(timeout))
        assert len(result.effective_trace) == len(trace)
        assert result.effective_trace.total_bytes == trace.total_bytes

    @given(carrier=carrier_keys, packets=packet_lists)
    @settings(max_examples=30, deadline=None)
    def test_oracle_never_worse_than_status_quo(self, carrier, packets):
        profile = get_profile(carrier)
        trace = PacketTrace(packets)
        simulator = TraceSimulator(profile)
        baseline = simulator.run(trace, StatusQuoPolicy())
        oracle = simulator.run(trace, OraclePolicy())
        # The oracle applies the offline-optimal rule per gap, so it can never
        # consume meaningfully more than the status quo (tiny tolerance for
        # the trailing-tail edge at the end of the trace).
        assert oracle.total_energy_j <= baseline.total_energy_j * 1.01 + 1e-6
