"""Property-based tests for the extension modules (filters, predictors, battery, DRX)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.battery import Battery, DevicePowerBudget, project_lifetime
from repro.learning.predictors import (
    DecayedHistogramPredictor,
    ExponentialRatePredictor,
    SlidingWindowPredictor,
)
from repro.rrc.drx import DrxConfig, effective_tail_power
from repro.traces import Direction, Packet, PacketTrace
from repro.traces.filters import (
    downsample,
    interleave,
    scale_time,
    slice_windows,
    split_by_flow,
    thin_by_fraction,
)

# -- strategies ----------------------------------------------------------------------

timestamps = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=60,
)


@st.composite
def packet_traces(draw):
    times = draw(timestamps)
    packets = [
        Packet(
            timestamp=t,
            size=draw(st.integers(min_value=0, max_value=1500)),
            direction=draw(st.sampled_from([Direction.UPLINK, Direction.DOWNLINK])),
            flow_id=draw(st.integers(min_value=0, max_value=4)),
        )
        for t in times
    ]
    return PacketTrace(packets, name="prop")


gaps = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=80,
)


# -- trace filters --------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(packet_traces(), st.integers(min_value=1, max_value=10))
def test_downsample_never_grows_and_preserves_order(trace, keep_every):
    thinned = downsample(trace, keep_every)
    assert len(thinned) <= len(trace)
    stamps = [p.timestamp for p in thinned]
    assert stamps == sorted(stamps)


@settings(max_examples=60, deadline=None)
@given(packet_traces(), st.floats(min_value=0.05, max_value=1.0))
def test_thinning_is_a_subset(trace, fraction):
    thinned = thin_by_fraction(trace, fraction, seed=1)
    original = list(trace)
    for packet in thinned:
        assert packet in original


@settings(max_examples=60, deadline=None)
@given(packet_traces(), st.floats(min_value=0.1, max_value=10.0))
def test_scale_time_preserves_count_and_scales_duration(trace, factor):
    scaled = scale_time(trace, factor)
    assert len(scaled) == len(trace)
    assert math.isclose(scaled.duration, trace.duration * factor, rel_tol=1e-6, abs_tol=1e-6)


@settings(max_examples=60, deadline=None)
@given(packet_traces(), st.floats(min_value=1.0, max_value=500.0))
def test_slice_windows_partition_packets(trace, window):
    windows = slice_windows(trace, window)
    assert sum(len(w) for w in windows) == len(trace)


@settings(max_examples=60, deadline=None)
@given(packet_traces())
def test_split_by_flow_partitions_trace(trace):
    groups = split_by_flow(trace)
    assert sum(len(g) for g in groups.values()) == len(trace)
    for flow_id, group in groups.items():
        assert all(p.flow_id == flow_id for p in group)


@settings(max_examples=40, deadline=None)
@given(st.lists(packet_traces(), min_size=1, max_size=4))
def test_interleave_preserves_packet_count(traces):
    combined = interleave(traces)
    assert len(combined) == sum(len(t) for t in traces)


# -- predictors ------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(gaps)
def test_sliding_window_weights_match_retained_gaps(gap_values):
    predictor = SlidingWindowPredictor(window_size=16)
    for gap in gap_values:
        predictor.observe(gap)
    kept, weights = predictor.weighted_gaps()
    assert len(kept) == len(weights) == min(len(gap_values), 16)
    assert predictor.sample_count == len(gap_values)


@settings(max_examples=60, deadline=None)
@given(gaps)
def test_decayed_histogram_mass_is_finite_and_positive(gap_values):
    predictor = DecayedHistogramPredictor()
    for gap in gap_values:
        predictor.observe(gap)
    kept, weights = predictor.weighted_gaps()
    assert all(w > 0 for w in weights)
    assert all(g >= 0 for g in kept)
    # Total decayed mass can never exceed the number of observations.
    assert sum(weights) <= len(gap_values) + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e4, allow_nan=False), min_size=1, max_size=40))
def test_exponential_rate_mean_within_observed_range(gap_values):
    predictor = ExponentialRatePredictor()
    for gap in gap_values:
        predictor.observe(gap)
    assert min(gap_values) - 1e-9 <= predictor.mean_gap <= max(gap_values) + 1e-9


# -- battery ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    st.floats(min_value=100.0, max_value=5000.0),
    st.floats(min_value=0.01, max_value=3.0),
    st.floats(min_value=0.01, max_value=3.0),
    st.floats(min_value=0.0, max_value=0.95),
)
def test_lifetime_projection_monotone_in_savings(capacity, radio, platform, saving):
    battery = Battery(capacity_mah=capacity)
    budget = DevicePowerBudget(radio_power_w=radio, platform_power_w=platform)
    projection = project_lifetime(battery, budget, saving)
    assert projection.scheme_hours >= projection.baseline_hours - 1e-9
    more = project_lifetime(battery, budget, min(saving + 0.04, 0.99))
    assert more.scheme_hours >= projection.scheme_hours - 1e-9


# -- DRX ---------------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(
    st.floats(min_value=0.05, max_value=5.0),
    st.floats(min_value=0.1, max_value=20.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_effective_tail_power_bounded_by_sleep_and_awake(awake_power, tail, sleep_fraction):
    config = DrxConfig(sleep_power_fraction=sleep_fraction)
    average = effective_tail_power(config, awake_power, tail)
    assert awake_power * sleep_fraction - 1e-9 <= average <= awake_power + 1e-9
