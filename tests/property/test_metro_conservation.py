"""Metro conservation properties: tiling, additivity, shard-invariance.

The metro merge contract (DESIGN.md §4) promises three structural
invariants for any topology, population and shard partitioning:

* **Tiling** — each UE's per-cell state times, summed over every visit
  in every cell, tile the globally resolved run duration exactly (the
  UE is always *somewhere*, and visit timelines neither overlap nor
  leave gaps);
* **Additivity** — metro totals are the exact float sums of the
  per-cell totals, which are themselves sums over visit devices;
* **Shard-invariance** — results are byte-identical at any cell-shard
  count: per-visit energy breakdowns, packet counts and dormancy
  counters carry the same bits whether a cell ran as one shard or many.

Plus the bookkeeping identity that makes handover counts trustworthy:
``handovers == total visits − population`` (every visit after a UE's
first one began with exactly one handover).
"""

from __future__ import annotations

import math

import pytest

from repro.api.metro import MetroRunSpec, execute_metro, metro
from repro.api.spec import PolicySpec
from repro.metro import workload_seed
from repro.traces.streaming import stream_application_packets

DEVICES = 18
DURATION_S = 1800.0
CHUNK_S = 120.0


def _execute(metro_name: str, shards: int, scheme: str = "makeidle",
             devices: int = DEVICES, duration: float = DURATION_S):
    spec = MetroRunSpec(
        metro=metro(metro_name, devices=devices, duration=duration,
                    chunk_s=CHUNK_S),
        carrier="att_hspa",
        policy=PolicySpec(scheme=scheme).resolved(100),
        shards=shards,
    )
    return execute_metro(spec)


@pytest.fixture(scope="module")
def shuffle_run():
    return _execute("metro_4cell", shards=1)


def _state_time(device) -> float:
    b = device.breakdown
    return b.active_time_s + b.high_idle_time_s + b.idle_time_s


class TestTiling:
    def test_per_ue_state_times_tile_the_duration(self, shuffle_run):
        """Summed over its visits in every cell, each UE covers [0, E)."""
        per_ue = {index: 0.0 for index in range(DEVICES)}
        for entry in shuffle_run.cells:
            for device in entry.result.devices:
                per_ue[shuffle_run.ue_index(device.device_id)] += (
                    _state_time(device)
                )
        for index, covered in per_ue.items():
            assert math.isclose(covered, shuffle_run.duration_s,
                                rel_tol=1e-9, abs_tol=1e-6), (
                f"UE {index} covers {covered}, run lasts "
                f"{shuffle_run.duration_s}"
            )

    def test_every_cell_reports_the_global_duration(self, shuffle_run):
        for entry in shuffle_run.cells:
            assert entry.result.duration_s == shuffle_run.duration_s


class TestAdditivity:
    def test_metro_totals_are_cell_sums(self, shuffle_run):
        assert shuffle_run.total_energy_j == sum(
            entry.result.total_energy_j for entry in shuffle_run.cells
        )
        assert shuffle_run.total_packets == sum(
            entry.result.total_packets for entry in shuffle_run.cells
        )
        assert shuffle_run.total_switches == sum(
            entry.result.total_switches for entry in shuffle_run.cells
        )
        assert shuffle_run.dormancy_requests == sum(
            entry.result.dormancy_requests for entry in shuffle_run.cells
        )

    def test_cell_totals_are_visit_sums(self, shuffle_run):
        for entry in shuffle_run.cells:
            assert entry.result.total_energy_j == sum(
                device.total_energy_j for device in entry.result.devices
            )

    def test_packets_conserved_against_unwindowed_streams(self, shuffle_run):
        """Visit windows tile each workload: no packet lost or duplicated."""
        metro_4cell = metro("metro_4cell").metro
        expected = 0
        for index in range(DEVICES):
            app = metro_4cell.apps[index % len(metro_4cell.apps)]
            expected += sum(
                1 for _ in stream_application_packets(
                    app, duration=DURATION_S,
                    seed=workload_seed(0, index), chunk_s=CHUNK_S,
                )
            )
        assert shuffle_run.total_packets == expected


class TestHandoverAccounting:
    def test_handovers_equal_visits_minus_population(self, shuffle_run):
        total_visits = sum(entry.visits for entry in shuffle_run.cells)
        assert shuffle_run.handovers == total_visits - DEVICES
        assert shuffle_run.handovers > 0  # 10-min residencies over 30 min

    def test_arrivals_match_departures(self, shuffle_run):
        """Every departure lands somewhere: global arrivals == departures."""
        departures = sum(entry.departures for entry in shuffle_run.cells)
        arrivals = sum(entry.arrivals for entry in shuffle_run.cells)
        assert departures == arrivals == shuffle_run.handovers


class TestShardInvariance:
    def _device_map(self, result):
        flat = {}
        for entry in result.cells:
            for device in entry.result.devices:
                assert device.device_id not in flat
                flat[device.device_id] = (
                    entry.name,
                    device.policy_name,
                    device.cohort,
                    device.breakdown,
                    device.packets,
                    device.dormancy_requests,
                    device.dormancy_granted,
                    device.dormancy_denied,
                    device.delayed_sessions,
                    device.total_session_delay_s,
                )
        return flat

    @pytest.mark.parametrize("metro_name,scheme", [
        ("metro_4cell", "makeidle"),
        ("commuter_2cell", "status_quo"),
    ])
    def test_byte_identical_across_cell_shard_counts(self, metro_name, scheme):
        """K ∈ {1, n_cells, 2·n_cells} shards: bit-equal per-visit results."""
        reference = _execute(metro_name, shards=1, scheme=scheme)
        n_cells = len(reference.cells)
        ref_map = self._device_map(reference)
        for shards in (n_cells, 2 * n_cells):
            sharded = _execute(metro_name, shards=shards, scheme=scheme)
            assert sharded.duration_s == reference.duration_s
            assert self._device_map(sharded) == ref_map
            assert sharded.total_energy_j == reference.total_energy_j
            assert sharded.handovers == reference.handovers
            for ours, theirs in zip(sharded.cells, reference.cells):
                assert ours.result.signaling == theirs.result.signaling
                assert ours.departures == theirs.departures
                assert ours.arrivals == theirs.arrivals
