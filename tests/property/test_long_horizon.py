"""Long-horizon float robustness: week-long runs and large absolute times.

Two fragilities this suite pins down (PR 5 satellites):

* **Week-long shard byte-identity** — the shard merge replays the
  single-process close (``_close_device``) as plain float arithmetic; at
  ``t ≥ 604800 s`` the absolute times are ~2^19, so any hidden reliance
  on small-magnitude cancellation would surface as per-device drift
  between shard counts.  The property here holds K ∈ {1, 5} byte-equal
  over a full simulated week.  (It passes with plain summation — the
  merge performs the *same* float operations in the same order, so no
  compensated summation is needed in ``_close_device``; if this test
  ever fails after a refactor, Kahan-compensate the close instead of
  widening the tolerance.)

* **Diurnal-envelope evaluation at day multiples** — ``DiurnalShape``
  folds absolute stream time with ``time % 86400.0``.  IEEE-754 ``fmod``
  is exact and hour marks divide the day exactly, so the envelope must
  be *exactly* periodic at whole-hour offsets however many days in; and
  a flat (identity) envelope must leave streamed workloads byte-identical
  to the un-shaped generator at any horizon.
"""

from __future__ import annotations

import pytest

from repro.basestation.cell import CellSimulator, DeviceSpec, merge_cell_shards
from repro.core import FixedTimerPolicy
from repro.rrc.profiles import get_profile
from repro.scenarios.shapes import (
    DIURNAL_SHAPES,
    EVENING_PEAK,
    FLAT,
    OFFICE_HOURS,
)
from repro.traces.streaming import stream_application_packets
from repro.traces.synthetic import ApplicationProfile, PacketTrainSpec

WEEK_S = 604_800.0
DAY_S = 86_400.0

#: A deliberately sparse application so a simulated week stays a
#: few-thousand-packet test, not a benchmark: one small request/response
#: train roughly every hour.
SPARSE_APP = ApplicationProfile(
    name="sparse_sync",
    description="hourly background sync (long-horizon test workload)",
    session_gap=lambda rng: rng.uniform(3000.0, 4200.0),
    trains=(PacketTrainSpec(uplink_packets=1, downlink_packets=3),),
    flows=1,
)


def _week_devices(count: int = 5) -> list[DeviceSpec]:
    return [
        DeviceSpec(
            device_id=index,
            trace=stream_application_packets(
                SPARSE_APP, duration=WEEK_S, seed=1000 + index,
                chunk_s=DAY_S,
            ),
            policy=FixedTimerPolicy(3.0),
        )
        for index in range(count)
    ]


class TestWeekLongShardByteIdentity:
    @pytest.mark.parametrize("shards", [1, 5])
    def test_week_long_run_is_shard_invariant(self, shards):
        profile = get_profile("att_hspa")
        reference = CellSimulator(profile).run(_week_devices())

        devices = _week_devices()
        bounds = [(i * len(devices)) // shards for i in range(shards + 1)]
        partials = [
            CellSimulator(profile).run_shard(devices[lo:hi])
            for lo, hi in zip(bounds, bounds[1:])
        ]
        merged = merge_cell_shards(partials)

        assert merged.duration_s == reference.duration_s  # exact, not approx
        assert merged.devices == reference.devices        # byte-identical
        assert merged.signaling == reference.signaling
        assert merged.switch_times == reference.switch_times

    def test_week_long_run_covers_a_week(self):
        profile = get_profile("att_hspa")
        result = CellSimulator(profile).run(_week_devices(2))
        assert result.duration_s >= WEEK_S * 0.95
        assert result.total_packets > 500


class TestDiurnalShapeLargeTimes:
    @pytest.mark.parametrize("shape", [FLAT, OFFICE_HOURS, EVENING_PEAK],
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("days", [0, 1, 7, 30, 365, 10_000])
    def test_exact_day_multiples_wrap_to_hour_zero(self, shape, days):
        assert shape.rate_at(days * DAY_S) == shape.rate_at(0.0)

    @pytest.mark.parametrize("shape", [OFFICE_HOURS, EVENING_PEAK],
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("days", [1, 7, 365, 10_000])
    def test_whole_hour_offsets_are_exactly_periodic(self, shape, days):
        offset = days * DAY_S
        for start_hour, multiplier in shape.segments:
            at = offset + start_hour * 3600.0
            # Segment starts are whole or half hours: both divide the day
            # exactly in binary, so the wrap must hit the segment exactly.
            assert shape.rate_at(at) == multiplier
            assert shape.rate_at(at) == shape.rate_at(start_hour * 3600.0)

    def test_segment_boundaries_honoured_far_from_zero(self):
        # Just below a segment start the previous multiplier must hold,
        # however many weeks of absolute time have accumulated.
        offset = 52 * 7 * DAY_S  # one year of weeks
        for index in range(1, len(OFFICE_HOURS.segments)):
            start_hour, multiplier = OFFICE_HOURS.segments[index]
            previous_multiplier = OFFICE_HOURS.segments[index - 1][1]
            at = offset + start_hour * 3600.0
            assert OFFICE_HOURS.rate_at(at) == multiplier
            assert OFFICE_HOURS.rate_at(at - 1e-3) == previous_multiplier

    def test_builtin_shapes_registry_consistent(self):
        for name, shape in DIURNAL_SHAPES.items():
            assert shape.name == name
            assert shape.rate_at(WEEK_S) == shape.rate_at(0.0)

    def test_flat_envelope_streams_byte_identical_over_a_week(self):
        shaped = list(stream_application_packets(
            SPARSE_APP, duration=WEEK_S, seed=7, chunk_s=DAY_S,
            envelope=FLAT,
        ))
        plain = list(stream_application_packets(
            SPARSE_APP, duration=WEEK_S, seed=7, chunk_s=DAY_S,
        ))
        # FLAT divides every drawn gap by exactly 1.0: same floats, same
        # packets, at every absolute offset across the week.
        assert [(p.timestamp, p.size, p.flow_id) for p in shaped] \
            == [(p.timestamp, p.size, p.flow_id) for p in plain]
