"""Engine conservation invariants under randomized traces, policies and seeds.

Three families of law, each guarding a different layer of the kernel:

* **time conservation** — a single-UE run's state intervals tile its
  timeline with no gaps or overlaps, and the per-state durations in the
  energy breakdown sum to exactly the timeline span;
* **cohort conservation** — a scenario cell's per-cohort breakdowns
  partition the whole-cell totals (energy, switches, packets, dormancy
  counters) with nothing lost or double-counted;
* **shard exactness** — a scenario cell run at K∈{1,3} shards produces
  byte-identical per-device records, whatever scenario/policy/seed
  hypothesis draws.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import PolicySpec, execute_cell
from repro.api.cells import CellRunSpec, CellSpec, DormancySpec
from repro.core.controller import standard_policies
from repro.core.policy import StatusQuoPolicy
from repro.rrc.profiles import CARRIER_PROFILES, get_profile
from repro.scenarios import Cohort, DiurnalShape, Scenario, get_archetype
from repro.sim import TraceSimulator
from repro.traces.synthetic import generate_application_trace

#: Schemes that run online (no full-trace prepare), usable on streamed cells.
_ONLINE_SCHEMES = (
    "status_quo",
    "fixed_4.5s",
    "makeidle",
    "makeidle+makeactive_learn",
)


def _policy(scheme: str, window: int = 50):
    if scheme == "status_quo":
        return StatusQuoPolicy()
    return standard_policies(window)[scheme]


# -- time conservation (single UE) ----------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    carrier=st.sampled_from(sorted(CARRIER_PROFILES)),
    app=st.sampled_from(("im", "email", "news", "finance")),
    scheme=st.sampled_from(_ONLINE_SCHEMES),
    seed=st.integers(min_value=0, max_value=2**31),
    duration=st.floats(min_value=60.0, max_value=900.0),
)
def test_intervals_tile_the_timeline(carrier, app, scheme, seed, duration):
    trace = generate_application_trace(app, duration=duration, seed=seed)
    result = TraceSimulator(get_profile(carrier)).run(trace, _policy(scheme))
    intervals = result.intervals
    if not trace:
        # An empty workload is a well-defined zero run: no timeline to tile.
        assert result.total_energy_j == 0.0
        return
    assert intervals, "a non-empty run produces at least one interval"
    assert intervals[0].start == 0.0
    for previous, current in zip(intervals, intervals[1:]):
        assert current.start == previous.end, "timeline has a gap or overlap"
    span = intervals[-1].end - intervals[0].start
    total = math.fsum(interval.duration for interval in intervals)
    assert math.isclose(total, span, rel_tol=1e-9, abs_tol=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    carrier=st.sampled_from(sorted(CARRIER_PROFILES)),
    app=st.sampled_from(("im", "email", "social")),
    scheme=st.sampled_from(_ONLINE_SCHEMES),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_per_state_durations_sum_to_run_duration(carrier, app, scheme, seed):
    trace = generate_application_trace(app, duration=400.0, seed=seed)
    result = TraceSimulator(get_profile(carrier)).run(trace, _policy(scheme))
    breakdown = result.breakdown
    if not trace:
        assert result.total_energy_j == 0.0
        return
    span = result.intervals[-1].end - result.intervals[0].start
    per_state = (
        breakdown.active_time_s
        + breakdown.high_idle_time_s
        + breakdown.idle_time_s
    )
    assert math.isclose(per_state, span, rel_tol=1e-9, abs_tol=1e-6)
    # And each component is individually the sum over its state's intervals.
    from repro.rrc.states import RadioState

    active = math.fsum(
        i.duration for i in result.intervals
        if i.state in (RadioState.ACTIVE, RadioState.PROMOTING)
    )
    assert math.isclose(breakdown.active_time_s, active,
                        rel_tol=1e-9, abs_tol=1e-9)


# -- scenario strategies ---------------------------------------------------------------

_ARCHETYPE_NAMES = (
    "heavy_streamer", "background_chatter", "idle_messenger", "casual_gamer",
)


@st.composite
def scenarios(draw):
    count = draw(st.integers(min_value=1, max_value=3))
    names = draw(
        st.lists(st.sampled_from(_ARCHETYPE_NAMES), min_size=count,
                 max_size=count, unique=True)
    )
    cohorts = []
    for index, name in enumerate(names):
        override = draw(
            st.one_of(
                st.none(),
                st.sampled_from(_ONLINE_SCHEMES),
            )
        )
        cohorts.append(
            Cohort(
                archetype=get_archetype(name),
                weight=draw(st.floats(min_value=0.2, max_value=3.0)),
                policy=(PolicySpec(scheme=override, window_size=50)
                        if override not in (None, "status_quo")
                        else (PolicySpec(scheme="status_quo")
                              if override == "status_quo" else None)),
                name=f"cohort{index}",
            )
        )
    shape = draw(
        st.one_of(
            st.none(),
            st.just(DiurnalShape(
                name="step",
                segments=((0.0, 0.4), (8.0, 1.8), (17.0, 0.7)),
            )),
        )
    )
    return Scenario(name="prop", cohorts=tuple(cohorts), shape=shape)


def _scenario_spec(scenario, devices, seed, scheme, shards=1):
    return CellRunSpec(
        cell=CellSpec(devices=devices, duration_s=250.0, seed=seed,
                      chunk_s=100.0, scenario=scenario),
        carrier="att_hspa",
        policy=PolicySpec(scheme=scheme).resolved(50),
        dormancy=DormancySpec(),
        shards=shards,
    )


# -- cohort conservation ---------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(
    scenario=scenarios(),
    devices=st.integers(min_value=3, max_value=12),
    seed=st.integers(min_value=0, max_value=1000),
    scheme=st.sampled_from(_ONLINE_SCHEMES),
)
def test_cohort_breakdowns_partition_cell_totals(scenario, devices, seed,
                                                 scheme):
    result = execute_cell(_scenario_spec(scenario, devices, seed, scheme))
    breakdown = result.cohort_breakdown()
    # Every device is labelled, so cohort totals must partition the cell.
    assert sum(b.devices for b in breakdown.values()) == len(result.devices)
    assert sum(b.packets for b in breakdown.values()) == result.total_packets
    assert (sum(b.dormancy_requests for b in breakdown.values())
            == result.dormancy_requests)
    assert (sum(b.dormancy_denied for b in breakdown.values())
            == result.dormancy_denied)
    assert (sum(b.promotions + b.demotions for b in breakdown.values())
            == result.total_switches)
    assert math.isclose(
        math.fsum(b.energy_j for b in breakdown.values()),
        math.fsum(d.total_energy_j for d in result.devices),
        rel_tol=1e-9, abs_tol=1e-9,
    )
    # Per-cohort device counts follow the declared apportionment.
    sizes = {f"cohort{i}": size
             for i, size in enumerate(scenario.cohort_sizes(devices))}
    for label, entry in breakdown.items():
        assert entry.devices == sizes[label]


# -- shard exactness -------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(
    scenario=scenarios(),
    devices=st.integers(min_value=4, max_value=11),
    seed=st.integers(min_value=0, max_value=1000),
    scheme=st.sampled_from(("status_quo", "makeidle")),
)
def test_scenario_shard_runs_byte_identical(scenario, devices, seed, scheme):
    reference = execute_cell(_scenario_spec(scenario, devices, seed, scheme))
    sharded = execute_cell(
        _scenario_spec(scenario, devices, seed, scheme, shards=3)
    )
    assert sharded.devices == reference.devices
    assert sharded.signaling == reference.signaling
    assert sharded.duration_s == reference.duration_s
    assert sharded.switch_times == reference.switch_times
    assert sharded.cohort_breakdown() == reference.cohort_breakdown()
