"""Property tests for the Fixed-Share / Learn-α weight updates.

The streaming learning contract (DESIGN.md §6) lets these learners run
unattended inside million-device kernels, so their weight vectors must be
unconditionally well-formed: normalised, non-negative and finite after any
sequence of admissible losses — including the degenerate extremes (all-zero
losses, astronomically large losses, infinite losses) that a pathological
traffic mix can produce.  The reductions pinned here (``alpha=0`` and a
single expert both recover plain exponential weights) are the textbook
identities of Herbster & Warmuth's Fixed-Share construction.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning import FixedShareExperts, LearnAlpha

#: Admissible per-expert losses, deliberately including the extremes the
#: issue calls out: exactly 0, huge-but-finite (1e3), and infinity.
extreme_losses = st.one_of(
    st.just(0.0),
    st.just(1e3),
    st.just(math.inf),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
)


def _loss_rounds(n_experts: int):
    return st.lists(
        st.lists(extreme_losses, min_size=n_experts, max_size=n_experts),
        min_size=1,
        max_size=12,
    )


def _assert_simplex(weights) -> None:
    assert all(w >= 0.0 for w in weights)
    assert all(math.isfinite(w) for w in weights)
    assert math.isclose(sum(weights), 1.0, rel_tol=1e-9, abs_tol=1e-12)


class TestFixedShareWeightInvariants:
    @given(rounds=_loss_rounds(4), alpha=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200)
    def test_weights_stay_on_the_simplex(self, rounds, alpha):
        learner = FixedShareExperts((1.0, 2.0, 3.0, 4.0), alpha=alpha)
        for losses in rounds:
            learner.update(losses)
            _assert_simplex(learner.weights)
            assert math.isfinite(learner.predict())

    @given(rounds=_loss_rounds(1), alpha=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_single_expert_weight_is_always_one(self, rounds, alpha):
        learner = FixedShareExperts((5.0,), alpha=alpha)
        for losses in rounds:
            learner.update(losses)
            assert learner.weights == (1.0,)
            assert learner.predict() == 5.0

    def test_all_infinite_losses_fall_back_to_uniform(self):
        learner = FixedShareExperts((1.0, 2.0, 3.0), alpha=0.3)
        learner.update([0.0, 1.0, 2.0])  # move off uniform first
        learner.update([math.inf] * 3)
        _assert_simplex(learner.weights)
        assert learner.weights == (1 / 3, 1 / 3, 1 / 3)


def _exponential_weights(losses_rounds, n):
    """Reference implementation: plain (static) exponential weights."""
    weights = [1.0 / n] * n
    for losses in losses_rounds:
        boosted = [w * math.exp(-l) for w, l in zip(weights, losses)]
        total = sum(boosted)
        if total <= 0.0:
            weights = [1.0 / n] * n
        else:
            weights = [b / total for b in boosted]
    return weights


class TestExponentialWeightReductions:
    @given(rounds=_loss_rounds(3))
    @settings(max_examples=150)
    def test_alpha_zero_is_exactly_exponential_weights(self, rounds):
        learner = FixedShareExperts((1.0, 2.0, 3.0), alpha=0.0)
        for losses in rounds:
            learner.update(losses)
        expected = _exponential_weights(rounds, 3)
        assert learner.weights == tuple(expected)

    @given(rounds=_loss_rounds(1), alpha=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100)
    def test_n_one_is_exactly_exponential_weights(self, rounds, alpha):
        # With a single expert the switching kernel is the identity, so any
        # alpha reduces to the (trivial) exponential-weights update.
        learner = FixedShareExperts((7.0,), alpha=alpha)
        for losses in rounds:
            learner.update(losses)
        assert learner.weights == tuple(_exponential_weights(rounds, 1))


class TestLearnAlphaWeightInvariants:
    @given(rounds=_loss_rounds(3))
    @settings(max_examples=100)
    def test_both_layers_stay_on_the_simplex(self, rounds):
        learner = LearnAlpha((1.0, 2.0, 3.0), alphas=(0.0, 0.1, 0.5))
        for losses in rounds:
            prediction = learner.update(losses)
            _assert_simplex(learner.alpha_weights)
            assert math.isfinite(prediction)
            assert 0.0 <= learner.effective_alpha <= 1.0

    @given(rounds=_loss_rounds(2))
    @settings(max_examples=100)
    def test_single_alpha_expert_top_layer_is_degenerate(self, rounds):
        learner = LearnAlpha((1.0, 2.0), alphas=(0.2,))
        for losses in rounds:
            learner.update(losses)
            assert learner.alpha_weights == (1.0,)

    def test_infinite_losses_keep_prediction_in_expert_range(self):
        learner = LearnAlpha((1.0, 2.0, 3.0, 4.0))
        for _ in range(5):
            learner.update([math.inf, 1e3, 0.0, math.inf])
            _assert_simplex(learner.alpha_weights)
            prediction = learner.predict()
            assert 1.0 <= prediction <= 4.0

    def test_rejects_negative_losses(self):
        with pytest.raises(ValueError):
            FixedShareExperts((1.0, 2.0)).update([-0.1, 0.0])
