"""Tests for the Oracle (offline-optimal) policy."""

from __future__ import annotations

import pytest

from repro.core import OraclePolicy, StatusQuoPolicy, oracle_switch_decisions
from repro.energy import TailEnergyModel
from repro.sim import TraceSimulator
from repro.traces import Packet, PacketTrace


class TestOracleDecisions:
    def test_prepare_sets_threshold(self, att_profile, simple_trace):
        policy = OraclePolicy()
        policy.prepare(simple_trace, att_profile)
        assert policy.t_threshold == pytest.approx(
            TailEnergyModel(att_profile).t_threshold
        )

    def test_switches_before_long_gap(self, att_profile, simple_trace):
        policy = OraclePolicy()
        policy.prepare(simple_trace, att_profile)
        # After the packet at 0.2 the next packet is at 60.0 — switch now.
        assert policy.dormancy_wait(0.2) == 0.0

    def test_stays_on_within_burst(self, att_profile, simple_trace):
        policy = OraclePolicy()
        policy.prepare(simple_trace, att_profile)
        # After the packet at 0.0 the next packet is 0.1 s away — keep radio on.
        assert policy.dormancy_wait(0.0) is None

    def test_switches_after_last_packet(self, att_profile, simple_trace):
        policy = OraclePolicy()
        policy.prepare(simple_trace, att_profile)
        assert policy.dormancy_wait(60.1) == 0.0

    def test_decision_list_matches_policy(self, att_profile, simple_trace):
        decisions = oracle_switch_decisions(simple_trace, att_profile)
        assert decisions == [False, False, True, False, True]

    def test_decisions_length(self, att_profile, heartbeat_trace):
        decisions = oracle_switch_decisions(heartbeat_trace, att_profile)
        assert len(decisions) == len(heartbeat_trace)


class TestOracleOptimality:
    @pytest.mark.parametrize("carrier_fixture", ["att_profile", "lte_profile"])
    def test_oracle_beats_status_quo(self, request, carrier_fixture, heartbeat_trace):
        profile = request.getfixturevalue(carrier_fixture)
        simulator = TraceSimulator(profile)
        baseline = simulator.run(heartbeat_trace, StatusQuoPolicy())
        oracle = simulator.run(heartbeat_trace, OraclePolicy())
        assert oracle.total_energy_j < baseline.total_energy_j

    def test_oracle_never_switches_inside_dense_burst(self, att_profile):
        # A trace whose every gap is below the threshold: the oracle must
        # behave like the status quo (no fast-dormancy demotions).
        trace = PacketTrace([Packet(i * 0.2, 100) for i in range(50)])
        simulator = TraceSimulator(att_profile)
        result = simulator.run(trace, OraclePolicy())
        from repro.rrc import SwitchKind

        dormancy = [s for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY]
        # Only the final switch (after the last packet) is allowed.
        assert len(dormancy) <= 1

    def test_oracle_is_upper_bound_among_no_delay_schemes(self, att_profile, im_trace):
        """The oracle saves at least as much as MakeIdle and the fixed baselines."""
        from repro.core import FixedTimerPolicy, MakeIdlePolicy

        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(im_trace, StatusQuoPolicy())
        oracle = simulator.run(im_trace, OraclePolicy())
        for policy in (FixedTimerPolicy(4.5), MakeIdlePolicy(window_size=50)):
            other = simulator.run(im_trace, policy)
            assert oracle.total_energy_j <= other.total_energy_j * 1.02
        assert oracle.total_energy_j <= baseline.total_energy_j
