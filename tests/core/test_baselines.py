"""Tests for the status quo and prior-work baseline policies."""

from __future__ import annotations

import pytest

from repro.core import FixedTimerPolicy, PercentileIatPolicy, StatusQuoPolicy
from repro.traces import Packet, PacketTrace, inter_arrival_percentile


class TestStatusQuo:
    def test_never_requests_dormancy(self):
        policy = StatusQuoPolicy()
        assert policy.dormancy_wait(10.0) is None

    def test_never_delays_activation(self):
        assert StatusQuoPolicy().activation_delay(10.0) == 0.0

    def test_name(self):
        assert StatusQuoPolicy().name == "status_quo"


class TestFixedTimerPolicy:
    def test_default_is_4_5_seconds(self):
        policy = FixedTimerPolicy()
        assert policy.timeout == pytest.approx(4.5)
        assert policy.dormancy_wait(0.0) == pytest.approx(4.5)

    def test_custom_timeout(self):
        assert FixedTimerPolicy(2.0).dormancy_wait(5.0) == pytest.approx(2.0)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            FixedTimerPolicy(-1.0)

    def test_name_encodes_timeout(self):
        assert FixedTimerPolicy(4.5).name == "fixed_4.5s"

    def test_never_delays_activation(self):
        assert FixedTimerPolicy().activation_delay(1.0) == 0.0


class TestPercentileIatPolicy:
    def test_prepare_uses_trace_percentile(self, att_profile, heartbeat_trace):
        policy = PercentileIatPolicy(95.0)
        policy.prepare(heartbeat_trace, att_profile)
        expected = inter_arrival_percentile(heartbeat_trace, 95.0)
        assert policy.timeout == pytest.approx(expected)
        assert policy.dormancy_wait(100.0) == pytest.approx(expected)

    def test_short_trace_falls_back(self, att_profile):
        policy = PercentileIatPolicy(95.0, fallback_timeout=4.5)
        policy.prepare(PacketTrace([Packet(0.0, 10)]), att_profile)
        assert policy.timeout == pytest.approx(4.5)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            PercentileIatPolicy(0.0)
        with pytest.raises(ValueError):
            PercentileIatPolicy(150.0)
        with pytest.raises(ValueError):
            PercentileIatPolicy(fallback_timeout=-1.0)

    def test_name(self):
        assert PercentileIatPolicy(95.0).name == "p95_iat"
        assert PercentileIatPolicy(90.0).name == "p90_iat"

    def test_reset_keeps_prepared_timeout(self, att_profile, heartbeat_trace):
        policy = PercentileIatPolicy()
        policy.prepare(heartbeat_trace, att_profile)
        timeout = policy.timeout
        policy.reset()
        assert policy.timeout == pytest.approx(timeout)

    def test_different_percentiles_differ(self, att_profile, email_trace):
        p50 = PercentileIatPolicy(50.0)
        p95 = PercentileIatPolicy(95.0)
        p50.prepare(email_trace, att_profile)
        p95.prepare(email_trace, att_profile)
        assert p95.timeout >= p50.timeout
