"""Tests for the MakeIdle online prediction policy."""

from __future__ import annotations

import pytest

from repro.core import MakeIdlePolicy, OraclePolicy, StatusQuoPolicy
from repro.energy import TailEnergyModel
from repro.sim import TraceSimulator
from repro.traces import Packet, PacketTrace, generate_periodic_trace


class TestConstruction:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            MakeIdlePolicy(window_size=1)

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            MakeIdlePolicy(candidate_count=1)

    def test_min_samples_validation(self):
        with pytest.raises(ValueError):
            MakeIdlePolicy(min_samples=1)

    def test_requires_prepare(self):
        policy = MakeIdlePolicy()
        with pytest.raises(RuntimeError):
            policy.dormancy_wait(0.0)
        with pytest.raises(RuntimeError):
            policy.best_wait()


class TestDecisionLogic:
    def prepared(self, profile, window_size=20):
        policy = MakeIdlePolicy(window_size=window_size, min_samples=3)
        policy.prepare(PacketTrace([]), profile)
        return policy

    def test_cold_start_behaves_like_status_quo(self, att_profile):
        policy = self.prepared(att_profile)
        assert policy.dormancy_wait(0.0) is None

    def test_long_gaps_trigger_immediate_switch(self, att_profile):
        # Window full of 60 s gaps: switching is clearly beneficial and the
        # optimal waiting time is (close to) zero.
        policy = self.prepared(att_profile)
        for gap in [60.0] * 10:
            policy.window.observe_gap(gap)
        wait = policy.dormancy_wait(600.0)
        assert wait is not None
        assert wait <= policy.t_threshold / 4

    def test_short_gaps_keep_radio_on(self, att_profile):
        policy = self.prepared(att_profile)
        for gap in [0.05] * 20:
            policy.window.observe_gap(gap)
        assert policy.dormancy_wait(10.0) is None

    def test_bimodal_gaps_choose_intermediate_wait(self, att_profile):
        # Mostly short intra-burst gaps with occasional long inter-burst gaps:
        # the best strategy waits long enough to let the short gaps pass.
        policy = self.prepared(att_profile, window_size=100)
        for _ in range(8):
            for gap in [0.2] * 9 + [90.0]:
                policy.window.observe_gap(gap)
        wait = policy.dormancy_wait(1000.0)
        assert wait is not None
        assert 0.2 < wait <= policy.t_threshold

    def test_expected_gain_consistency(self, att_profile):
        policy = self.prepared(att_profile)
        for gap in [30.0] * 10:
            policy.window.observe_gap(gap)
        best_wait, best_gain = policy.best_wait()
        assert best_gain == pytest.approx(policy.expected_gain(best_wait))
        # No other candidate should beat the reported optimum.
        assert policy.expected_gain(policy.t_threshold) <= best_gain + 1e-9

    def test_conditional_probability_interface(self, att_profile):
        policy = self.prepared(att_profile)
        for gap in [0.1] * 50 + [30.0] * 50:
            policy.window.observe_gap(gap)
        p_early = policy.conditional_no_packet_probability(0.0)
        p_late = policy.conditional_no_packet_probability(1.0)
        # The paper's observed property: P(t_wait) grows with t_wait.
        assert p_late >= p_early

    def test_history_records_every_decision(self, att_profile, heartbeat_trace):
        simulator = TraceSimulator(att_profile)
        policy = MakeIdlePolicy(window_size=30)
        simulator.run(heartbeat_trace, policy)
        assert len(policy.wait_history) == len(heartbeat_trace)

    def test_reset_clears_state(self, att_profile):
        policy = self.prepared(att_profile)
        policy.observe_packet(0.0, Packet(0.0, 10))
        policy.observe_packet(1.0, Packet(1.0, 10))
        policy.reset()
        assert policy.window.sample_count == 0
        assert policy.wait_history == ()


class TestEndToEndBehaviour:
    def test_beats_status_quo_on_heartbeat_traffic(self, att_profile, heartbeat_trace):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(heartbeat_trace, StatusQuoPolicy())
        makeidle = simulator.run(heartbeat_trace, MakeIdlePolicy(window_size=50))
        assert makeidle.energy_saved_fraction(baseline) > 0.3

    def test_close_to_oracle_on_regular_traffic(self, att_profile):
        trace = generate_periodic_trace(period=20.0, duration=2400.0,
                                        burst_packets=3, seed=9)
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(trace, StatusQuoPolicy())
        oracle = simulator.run(trace, OraclePolicy())
        makeidle = simulator.run(trace, MakeIdlePolicy(window_size=50))
        oracle_saving = oracle.energy_saved_fraction(baseline)
        makeidle_saving = makeidle.energy_saved_fraction(baseline)
        assert makeidle_saving >= 0.8 * oracle_saving

    def test_does_not_hurt_dense_foreground_traffic(self, att_profile):
        # Every gap is tiny: MakeIdle must not switch inside the burst and
        # therefore must not consume more than a few percent extra energy.
        trace = PacketTrace([Packet(i * 0.1, 400) for i in range(400)])
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(trace, StatusQuoPolicy())
        makeidle = simulator.run(trace, MakeIdlePolicy(window_size=50))
        assert makeidle.total_energy_j <= baseline.total_energy_j * 1.05

    def test_larger_window_reduces_false_switches(self, att_profile, im_trace):
        from repro.metrics import confusion_for_result

        threshold = TailEnergyModel(att_profile).t_threshold
        simulator = TraceSimulator(att_profile)
        small = simulator.run(im_trace, MakeIdlePolicy(window_size=5))
        large = simulator.run(im_trace, MakeIdlePolicy(window_size=200))
        fp_small = confusion_for_result(small, threshold).false_switch_rate
        fp_large = confusion_for_result(large, threshold).false_switch_rate
        assert fp_large <= fp_small + 0.02
