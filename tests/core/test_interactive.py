"""Tests for interactive-application awareness (registry, schedule, wrapper)."""

import pytest

from repro.core import (
    ApplicationRegistry,
    CombinedPolicy,
    DEFAULT_REGISTRY,
    FixedDelayMakeActive,
    InteractiveAwarePolicy,
    MakeIdlePolicy,
    StatusQuoPolicy,
)
from repro.core.interactive import ForegroundInterval, ForegroundSchedule
from repro.sim import TraceSimulator
from repro.traces import Direction, Packet, PacketTrace


class TestApplicationRegistry:
    def test_explicit_classification(self):
        registry = ApplicationRegistry(interactive=("social",), background=("email",))
        assert registry.is_interactive("social")
        assert registry.is_background("email")

    def test_case_insensitive(self):
        registry = ApplicationRegistry(interactive=("Social",))
        assert registry.is_interactive("SOCIAL")

    def test_unknown_defaults_to_interactive(self):
        registry = ApplicationRegistry()
        assert registry.is_interactive("mystery")
        lenient = ApplicationRegistry(default_interactive=False)
        assert lenient.is_background("mystery")

    def test_register_reclassifies(self):
        registry = ApplicationRegistry(background=("email",))
        registry.register("email", interactive=True)
        assert registry.is_interactive("email")

    def test_overlapping_labels_rejected(self):
        with pytest.raises(ValueError):
            ApplicationRegistry(interactive=("x",), background=("x",))

    def test_default_registry_matches_paper_categories(self):
        assert DEFAULT_REGISTRY.is_background("email")
        assert DEFAULT_REGISTRY.is_background("im")
        assert DEFAULT_REGISTRY.is_interactive("social")
        assert DEFAULT_REGISTRY.is_interactive("finance")


class TestForegroundSchedule:
    def test_lookup_inside_and_outside_intervals(self):
        schedule = ForegroundSchedule(
            [
                ForegroundInterval(0.0, 10.0, "social"),
                ForegroundInterval(20.0, 30.0, "finance"),
            ]
        )
        assert schedule.foreground_app(5.0) == "social"
        assert schedule.foreground_app(15.0) is None
        assert schedule.foreground_app(25.0) == "finance"
        assert schedule.foreground_app(-1.0) is None

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(ValueError):
            ForegroundSchedule(
                [
                    ForegroundInterval(0.0, 10.0, "a"),
                    ForegroundInterval(5.0, 15.0, "b"),
                ]
            )

    def test_always_helper(self):
        schedule = ForegroundSchedule.always("social", 100.0)
        assert schedule.foreground_app(0.0) == "social"
        assert schedule.foreground_app(99.0) == "social"

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ForegroundInterval(10.0, 5.0, "a")


def _background_trace(app: str = "email") -> PacketTrace:
    """Sparse background sessions, each a new flow, radio idle in between."""
    packets = []
    for index, start in enumerate((0.0, 120.0, 240.0, 360.0)):
        packets.append(Packet(start, 300, Direction.UPLINK, flow_id=index, app=app))
        packets.append(
            Packet(start + 0.3, 1200, Direction.DOWNLINK, flow_id=index, app=app)
        )
    return PacketTrace(packets, name=f"bg-{app}")


class TestInteractiveAwarePolicy:
    def _combined(self):
        return CombinedPolicy(
            MakeIdlePolicy(), FixedDelayMakeActive(delay_bound=8.0), name="combined"
        )

    def test_background_app_with_screen_off_still_delayed(self, att_profile):
        trace = _background_trace("email")
        policy = InteractiveAwarePolicy(self._combined())
        result = TraceSimulator(att_profile).run(trace, policy)
        assert any(d > 0 for d in result.delays)
        assert policy.suppressed_delays == 0

    def test_interactive_foreground_suppresses_delays(self, att_profile):
        trace = _background_trace("email")
        schedule = ForegroundSchedule.always("social", trace.duration + 10.0)
        policy = InteractiveAwarePolicy(self._combined(), schedule=schedule)
        result = TraceSimulator(att_profile).run(trace, policy)
        assert all(d == 0 for d in result.delays)
        assert policy.suppressed_delays > 0

    def test_interactive_session_itself_never_delayed(self, att_profile):
        trace = _background_trace("finance")  # finance is interactive
        policy = InteractiveAwarePolicy(self._combined())
        result = TraceSimulator(att_profile).run(trace, policy)
        assert all(d == 0 for d in result.delays)

    def test_protection_can_be_disabled(self, att_profile):
        trace = _background_trace("finance")
        policy = InteractiveAwarePolicy(
            self._combined(), protect_interactive_sessions=False
        )
        result = TraceSimulator(att_profile).run(trace, policy)
        assert any(d > 0 for d in result.delays)

    def test_dormancy_side_passes_through(self, att_profile, im_trace):
        simulator = TraceSimulator(att_profile)
        wrapped = InteractiveAwarePolicy(
            CombinedPolicy(MakeIdlePolicy(), FixedDelayMakeActive(), name="c"),
            schedule=ForegroundSchedule.always("social", im_trace.duration + 10.0),
        )
        plain = simulator.run(im_trace, MakeIdlePolicy())
        result = simulator.run(im_trace, wrapped)
        baseline = simulator.run(im_trace, StatusQuoPolicy())
        # With MakeActive suppressed the wrapper still saves MakeIdle-level energy.
        assert result.energy_saved_fraction(baseline) == pytest.approx(
            plain.energy_saved_fraction(baseline), abs=0.1
        )

    def test_reset_clears_counters(self, att_profile):
        trace = _background_trace("email")
        schedule = ForegroundSchedule.always("social", trace.duration + 10.0)
        policy = InteractiveAwarePolicy(self._combined(), schedule=schedule)
        TraceSimulator(att_profile).run(trace, policy)
        # The simulator calls reset() at the start of each run, so a second
        # run's counter reflects only that run.
        first_count = policy.suppressed_delays
        TraceSimulator(att_profile).run(trace, policy)
        assert policy.suppressed_delays == first_count

    def test_name_mentions_inner_policy(self):
        policy = InteractiveAwarePolicy(StatusQuoPolicy())
        assert "status_quo" in policy.name
