"""Tests for the MakeActive policies (fixed delay bound and learning)."""

from __future__ import annotations

import pytest

from repro.core import (
    CombinedPolicy,
    FixedDelayMakeActive,
    LearningMakeActive,
    MakeIdlePolicy,
    StatusQuoPolicy,
    compute_fixed_delay_bound,
)
from repro.core.makeactive import MAX_DELAY_BOUND
from repro.sim import TraceSimulator
from repro.traces import Packet, PacketTrace, generate_mixed_trace


class TestFixedDelayBound:
    def test_explicit_bound(self):
        policy = FixedDelayMakeActive(delay_bound=3.0)
        assert policy.activation_delay(0.0) == pytest.approx(3.0)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayMakeActive(delay_bound=-1.0)

    def test_bound_computed_from_trace(self, att_profile, email_trace):
        policy = FixedDelayMakeActive()
        policy.prepare(email_trace, att_profile)
        assert 0.5 <= policy.delay_bound <= MAX_DELAY_BOUND

    def test_compute_fixed_delay_bound_formula(self, att_profile):
        # A trace with exactly one burst per active period gives k = 1, so
        # the bound is t1 + t2 (clamped to the maximum).
        trace = PacketTrace(
            [Packet(0.0, 100), Packet(300.0, 100), Packet(600.0, 100)]
        )
        bound = compute_fixed_delay_bound(trace, att_profile)
        assert bound == pytest.approx(
            min(att_profile.total_inactivity_timeout, MAX_DELAY_BOUND)
        )

    def test_short_trace_fallback(self, att_profile):
        bound = compute_fixed_delay_bound(PacketTrace([Packet(0.0, 1)]), att_profile)
        assert 0.0 < bound <= MAX_DELAY_BOUND

    def test_bound_never_exceeds_cap(self, tmobile_profile, im_trace):
        # T-Mobile's t1 + t2 is 19.5 s; the bound must still respect the cap.
        assert compute_fixed_delay_bound(im_trace, tmobile_profile) <= MAX_DELAY_BOUND


class TestLearningMakeActive:
    def test_expert_grid_matches_appendix(self):
        policy = LearningMakeActive(max_delay=10.0)
        assert policy.learner.expert_values == tuple(float(i) for i in range(1, 11))

    def test_max_delay_validation(self):
        with pytest.raises(ValueError):
            LearningMakeActive(max_delay=0.5)

    def test_initial_delay_is_mid_grid(self):
        policy = LearningMakeActive(max_delay=12.0)
        assert 1.0 <= policy.activation_delay(0.0) <= 12.0

    def test_on_release_updates_learner_and_history(self):
        policy = LearningMakeActive()
        policy.activation_delay(0.0)
        policy.on_release(5.0, [0.0, 2.0, 4.0])
        assert policy.learner.iterations == 1
        assert len(policy.history) == 1
        record = policy.history[0]
        assert record.buffered_sessions == 3
        assert record.mean_session_delay == pytest.approx((5.0 + 3.0 + 1.0) / 3)

    def test_on_release_without_sessions_is_noop(self):
        policy = LearningMakeActive()
        policy.on_release(5.0, [])
        assert policy.learner.iterations == 0
        assert policy.history == ()

    def test_reset(self):
        policy = LearningMakeActive()
        policy.activation_delay(0.0)
        policy.on_release(3.0, [0.0])
        policy.reset()
        assert policy.history == ()
        assert policy.learner.iterations == 0

    def test_single_sessions_drive_delay_down(self):
        # When batching never succeeds (every release holds one session),
        # the loss is minimised by the smallest expert, so the learned delay
        # must shrink (Figure 16's mechanism in reverse).
        policy = LearningMakeActive()
        initial = policy.current_delay
        for i in range(40):
            delay = policy.activation_delay(float(i * 30))
            policy.on_release(i * 30 + delay, [float(i * 30)])
        assert policy.current_delay < initial

    def test_successful_batching_sustains_larger_delay(self):
        # When waiting longer reliably batches several sessions, the learner
        # should settle near the smallest delay that still captures them all
        # (about 3 s here), whereas with no batching it keeps shrinking
        # toward the smallest expert.
        batching = LearningMakeActive()
        for i in range(300):
            start = i * 60.0
            delay = batching.activation_delay(start)
            batching.on_release(start + delay, [start, start + 1.5, start + 3.0])
        lonely = LearningMakeActive()
        for i in range(300):
            start = i * 60.0
            delay = lonely.activation_delay(start)
            lonely.on_release(start + delay, [start])
        assert batching.current_delay > lonely.current_delay
        assert batching.current_delay >= 2.5


class TestMakeActiveInSimulation:
    def test_fixed_bound_delays_idle_sessions(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        policy = CombinedPolicy(MakeIdlePolicy(window_size=50),
                                FixedDelayMakeActive(delay_bound=5.0))
        result = simulator.run(email_trace, policy)
        delayed = [d for d in result.delays if d > 0.01]
        assert delayed
        assert max(delayed) <= 5.0 + 1e-6
        assert max(delayed) == pytest.approx(5.0, abs=0.2)

    def test_learning_reduces_mean_delay_vs_fixed(self, att_profile):
        # Paper Figure 15: the learning algorithm roughly halves the average
        # delay compared with the fixed bound at comparable signalling.
        trace = generate_mixed_trace(["im", "email", "news"], duration=2400.0, seed=4)
        simulator = TraceSimulator(att_profile)
        fixed = simulator.run(
            trace,
            CombinedPolicy(MakeIdlePolicy(window_size=50),
                           FixedDelayMakeActive()),
        )
        learning = simulator.run(
            trace,
            CombinedPolicy(MakeIdlePolicy(window_size=50), LearningMakeActive()),
        )
        fixed_delays = [d for d in fixed.delays if d > 0.01]
        learning_delays = [d for d in learning.delays if d > 0.01]
        assert fixed_delays and learning_delays
        assert (sum(learning_delays) / len(learning_delays)) < (
            sum(fixed_delays) / len(fixed_delays)
        )

    def test_batching_reduces_promotions(self, att_profile):
        # Two applications whose sessions start within a few seconds of each
        # other: batching them must cut the number of promotions.
        packets = []
        for burst in range(20):
            base = burst * 120.0
            packets.append(Packet(base, 300, flow_id=1))
            packets.append(Packet(base + 0.2, 900, flow_id=1))
            packets.append(Packet(base + 3.0, 300, flow_id=2))
            packets.append(Packet(base + 3.2, 900, flow_id=2))
        trace = PacketTrace(packets, name="pairs")
        simulator = TraceSimulator(att_profile)
        no_batching = simulator.run(trace, MakeIdlePolicy(window_size=30))
        batching = simulator.run(
            trace,
            CombinedPolicy(MakeIdlePolicy(window_size=30),
                           FixedDelayMakeActive(delay_bound=5.0)),
        )
        assert batching.promotion_count < no_batching.promotion_count

    def test_delays_never_exceed_bound(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        result = simulator.run(
            email_trace,
            CombinedPolicy(MakeIdlePolicy(window_size=50), LearningMakeActive()),
        )
        assert all(d <= MAX_DELAY_BOUND + 1e-6 for d in result.delays)

    def test_status_quo_records_no_positive_delays(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        result = simulator.run(email_trace, StatusQuoPolicy())
        assert all(d == 0.0 for d in result.delays)
