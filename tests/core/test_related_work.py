"""Tests for the related-work comparison policies (TOP, TailEnder, TailTheft)."""

import pytest

from repro.core import (
    MakeIdlePolicy,
    OraclePolicy,
    StatusQuoPolicy,
    TailEnderPolicy,
    TailTheftPolicy,
    TopHintPolicy,
)
from repro.sim import TraceSimulator


class TestTopHintPolicy:
    def test_perfect_hints_match_oracle(self, att_profile, im_trace):
        simulator = TraceSimulator(att_profile)
        oracle = simulator.run(im_trace, OraclePolicy())
        top = simulator.run(im_trace, TopHintPolicy(hint_accuracy=1.0))
        assert top.total_energy_j == pytest.approx(oracle.total_energy_j, rel=0.01)

    def test_perfect_hints_save_energy(self, att_profile, im_trace):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(im_trace, StatusQuoPolicy())
        top = simulator.run(im_trace, TopHintPolicy(hint_accuracy=1.0))
        assert top.energy_saved_fraction(baseline) > 0.3

    def test_degrading_hints_do_not_beat_perfect_hints(self, att_profile, im_trace):
        simulator = TraceSimulator(att_profile)
        perfect = simulator.run(im_trace, TopHintPolicy(hint_accuracy=1.0, seed=1))
        poor = simulator.run(im_trace, TopHintPolicy(hint_accuracy=0.1, seed=1))
        assert poor.total_energy_j >= perfect.total_energy_j - 1e-6

    def test_runs_are_deterministic_per_seed(self, att_profile, im_trace):
        simulator = TraceSimulator(att_profile)
        first = simulator.run(im_trace, TopHintPolicy(hint_accuracy=0.5, seed=9))
        second = simulator.run(im_trace, TopHintPolicy(hint_accuracy=0.5, seed=9))
        assert first.total_energy_j == pytest.approx(second.total_energy_j)

    def test_invalid_accuracy(self):
        with pytest.raises(ValueError):
            TopHintPolicy(hint_accuracy=1.2)

    def test_threshold_exposed_after_prepare(self, att_profile, im_trace):
        policy = TopHintPolicy()
        assert policy.t_threshold == 0.0
        policy.prepare(im_trace, att_profile)
        assert policy.t_threshold > 0.0


class TestTailEnderPolicy:
    def test_batches_sessions_with_long_deadline(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(email_trace, StatusQuoPolicy())
        tailender = simulator.run(email_trace, TailEnderPolicy(deadline_s=600.0))
        # Deferring transfers into shared promotions must not increase the
        # number of switches, and the deferred sessions carry real delays.
        assert tailender.switch_count <= baseline.switch_count
        delayed = [d for d in tailender.delays if d > 0.0]
        assert delayed
        assert max(delayed) <= 600.0 + 1e-9

    def test_saves_energy_on_periodic_background_traffic(
        self, att_profile, email_trace
    ):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(email_trace, StatusQuoPolicy())
        tailender = simulator.run(email_trace, TailEnderPolicy())
        assert tailender.energy_saved_fraction(baseline) > 0.0

    def test_delays_are_much_larger_than_makeactive_targets(
        self, att_profile, email_trace
    ):
        # The paper's point about TailEnder: it needs ~10-minute deadlines,
        # whereas MakeActive targets a few seconds.
        simulator = TraceSimulator(att_profile)
        tailender = simulator.run(email_trace, TailEnderPolicy(deadline_s=600.0))
        delayed = [d for d in tailender.delays if d > 0.0]
        assert delayed and max(delayed) > 60.0

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            TailEnderPolicy(deadline_s=0.0)


class TestTailTheftPolicy:
    def test_queues_when_radio_idle(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        result = simulator.run(email_trace, TailTheftPolicy(timeout_s=60.0))
        delayed = [d for d in result.delays if d > 0.0]
        assert delayed
        assert max(delayed) <= 60.0 + 1e-9

    def test_recent_activity_releases_immediately(self):
        # Directly exercise the decision logic: recent traffic -> no delay.
        from repro.traces import Direction, Packet

        policy = TailTheftPolicy(timeout_s=60.0, recent_activity_s=2.0)
        policy.reset()
        policy.observe_packet(100.0, Packet(100.0, 10, Direction.UPLINK))
        assert policy.activation_delay(101.0) == 0.0
        assert policy.activation_delay(200.0) == 60.0

    def test_reduces_switches_vs_makeidle_alone(self, att_profile, email_trace):
        simulator = TraceSimulator(att_profile)
        makeidle = simulator.run(email_trace, MakeIdlePolicy())
        tailtheft = simulator.run(email_trace, TailTheftPolicy())
        assert tailtheft.promotion_count <= max(makeidle.promotion_count, 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TailTheftPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            TailTheftPolicy(recent_activity_s=-1.0)
