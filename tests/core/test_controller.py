"""Tests for the combined controller and the standard scheme set."""

from __future__ import annotations

import pytest

from repro.core import (
    SCHEME_ORDER,
    CombinedPolicy,
    FixedDelayMakeActive,
    MakeIdlePolicy,
    RadioPolicy,
    standard_policies,
)
from repro.traces import Packet


class RecordingPolicy(RadioPolicy):
    """Test double that records which hooks were invoked."""

    name = "recording"

    def __init__(self):
        self.calls: list[str] = []

    def prepare(self, trace, profile):
        self.calls.append("prepare")

    def reset(self):
        self.calls.append("reset")

    def observe_packet(self, time, packet):
        self.calls.append("observe")

    def dormancy_wait(self, now):
        self.calls.append("dormancy")
        return 1.0

    def activation_delay(self, now):
        self.calls.append("activation")
        return 2.0

    def on_release(self, release_time, arrival_times):
        self.calls.append("release")


class TestCombinedPolicy:
    def test_name_composition(self):
        combined = CombinedPolicy(MakeIdlePolicy(), FixedDelayMakeActive(3.0))
        assert combined.name == "makeidle+makeactive_fixed"

    def test_explicit_name(self):
        combined = CombinedPolicy(MakeIdlePolicy(), FixedDelayMakeActive(3.0),
                                  name="custom")
        assert combined.name == "custom"

    def test_demotion_comes_from_idle_policy(self):
        idle, active = RecordingPolicy(), RecordingPolicy()
        combined = CombinedPolicy(idle, active)
        assert combined.dormancy_wait(0.0) == 1.0
        assert "dormancy" in idle.calls
        assert "dormancy" not in active.calls

    def test_activation_comes_from_active_policy(self):
        idle, active = RecordingPolicy(), RecordingPolicy()
        combined = CombinedPolicy(idle, active)
        assert combined.activation_delay(0.0) == 2.0
        assert "activation" in active.calls
        assert "activation" not in idle.calls

    def test_observation_hooks_forwarded_to_both(self, att_profile, simple_trace):
        idle, active = RecordingPolicy(), RecordingPolicy()
        combined = CombinedPolicy(idle, active)
        combined.prepare(simple_trace, att_profile)
        combined.reset()
        combined.observe_packet(0.0, Packet(0.0, 10))
        combined.on_release(1.0, [0.5])
        for policy in (idle, active):
            for hook in ("prepare", "reset", "observe", "release"):
                assert hook in policy.calls

    def test_component_accessors(self):
        idle = MakeIdlePolicy()
        active = FixedDelayMakeActive(2.0)
        combined = CombinedPolicy(idle, active)
        assert combined.idle_policy is idle
        assert combined.active_policy is active


class TestStandardPolicies:
    def test_contains_all_paper_schemes(self):
        policies = standard_policies()
        assert set(policies) == set(SCHEME_ORDER)

    def test_scheme_order_matches_figures(self):
        assert SCHEME_ORDER == (
            "fixed_4.5s",
            "p95_iat",
            "makeidle",
            "oracle",
            "makeidle+makeactive_learn",
            "makeidle+makeactive_fixed",
        )

    def test_policy_names_match_keys(self):
        for key, policy in standard_policies().items():
            assert policy.name == key

    def test_window_size_propagates(self):
        policies = standard_policies(window_size=42)
        assert policies["makeidle"].window_size == 42
        assert policies["makeidle+makeactive_learn"].idle_policy.window_size == 42

    def test_each_call_returns_fresh_instances(self):
        first = standard_policies()
        second = standard_policies()
        assert first["makeidle"] is not second["makeidle"]
