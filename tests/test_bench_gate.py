"""Unit tests for the benchmark regression gate (tools/check_bench_floor.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_bench_floor.py"
_spec = importlib.util.spec_from_file_location("check_bench_floor", _TOOL)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_floor", gate)
_spec.loader.exec_module(gate)


def _bench_file(tmp_path: Path, name: str, pps: float | None,
                section: str = "single_1k") -> Path:
    path = tmp_path / name
    payload = {"cpu_count": 4}
    if pps is not None:
        payload[section] = {"packets_per_sec": pps}
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def _memory_file(tmp_path: Path, name: str, rss: float,
                 ceiling: float) -> Path:
    path = tmp_path / name
    path.write_text(json.dumps({
        "cell_1m": {"rss_now_mb": rss, "rss_ceiling_mb": ceiling},
    }), encoding="utf-8")
    return path


class TestEvaluate:
    def test_passes_at_and_above_threshold(self):
        ok, message = gate.evaluate(60_000.0, 27_000.0, tolerance=0.45)
        assert ok and "ok:" in message
        ok, _ = gate.evaluate(60_000.0, 120_000.0, tolerance=0.45)
        assert ok

    def test_fails_below_threshold(self):
        ok, message = gate.evaluate(60_000.0, 20_000.0, tolerance=0.45)
        assert not ok
        assert "REGRESSION" in message


class TestMain:
    def test_regression_exits_nonzero(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 10_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.REGRESSION

    def test_healthy_measurement_passes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 58_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_skips_cleanly_on_constrained_runner(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 1)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 1_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_skips_cleanly_via_environment(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        monkeypatch.setenv(gate.SKIP_ENV, "skip")
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 1_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_missing_floor_or_current_skips_cleanly(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        no_floor = _bench_file(tmp_path, "floor.json", None)
        current = _bench_file(tmp_path, "current.json", 50_000.0)
        assert gate.main([
            "--floor", str(no_floor), "--current", str(current),
        ]) == gate.OK
        # A gated section absent from the fresh run skips cleanly too —
        # a heavy section may legitimately not be benchmarked on every
        # runner, and gate ordering must not block its first commit.
        floor = _bench_file(tmp_path, "floor2.json", 60_000.0)
        no_current = _bench_file(tmp_path, "current2.json", None)
        assert gate.main([
            "--floor", str(floor), "--current", str(no_current),
        ]) == gate.OK

    def test_section_flag_gates_other_sections(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0,
                            section="metro_250k")
        slow = _bench_file(tmp_path, "current.json", 10_000.0,
                           section="metro_250k")
        assert gate.main([
            "--floor", str(floor), "--current", str(slow),
            "--section", "metro_250k",
        ]) == gate.REGRESSION
        # Under an explicit section with no data: clean skip.
        assert gate.main([
            "--floor", str(floor), "--current", str(slow),
            "--section", "single_1k",
        ]) == gate.OK

    def test_default_gates_every_throughput_section(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        assert "metro_250k" in gate.DEFAULT_SECTIONS
        assert "sharded_100k" in gate.DEFAULT_SECTIONS
        assert "vector_1k" in gate.DEFAULT_SECTIONS
        # A regression in any default section trips the gate even when
        # the others are healthy.
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({
            section: {"packets_per_sec": 60_000.0}
            for section in gate.DEFAULT_SECTIONS
        }), encoding="utf-8")
        current_payload = {
            section: {"packets_per_sec": 59_000.0}
            for section in gate.DEFAULT_SECTIONS
        }
        current_payload["metro_250k"] = {"packets_per_sec": 10_000.0}
        current = tmp_path / "current.json"
        current.write_text(json.dumps(current_payload), encoding="utf-8")
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.REGRESSION
        # All healthy: passes.
        current.write_text(json.dumps({
            section: {"packets_per_sec": 59_000.0}
            for section in gate.DEFAULT_SECTIONS
        }), encoding="utf-8")
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_repeated_section_flags_gate_a_subset(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({
            "single_1k": {"packets_per_sec": 60_000.0},
            "metro_250k": {"packets_per_sec": 60_000.0},
        }), encoding="utf-8")
        current = tmp_path / "current.json"
        current.write_text(json.dumps({
            "single_1k": {"packets_per_sec": 59_000.0},
            "metro_250k": {"packets_per_sec": 10_000.0},
        }), encoding="utf-8")
        # Only the healthy section requested: passes.
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
            "--section", "single_1k",
        ]) == gate.OK
        # Both requested: the regressed one trips it.
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
            "--section", "single_1k", "--section", "metro_250k",
        ]) == gate.REGRESSION

    def test_memory_regression_trips_the_gate(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _memory_file(tmp_path, "floor.json", rss=390.0, ceiling=440.0)
        bloated = _memory_file(tmp_path, "current.json", rss=612.0,
                               ceiling=440.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(bloated),
            "--section", "cell_1m",
        ]) == gate.REGRESSION

    def test_memory_within_ceiling_passes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _memory_file(tmp_path, "floor.json", rss=390.0, ceiling=440.0)
        current = _memory_file(tmp_path, "current.json", rss=410.0,
                               ceiling=440.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
            "--section", "cell_1m",
        ]) == gate.OK

    def test_memory_section_absent_from_fresh_run_skips(self, tmp_path,
                                                        monkeypatch):
        # cell_1m is opt-in (REPRO_BENCH_1M=1); a run without it must not
        # trip the gate.
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _memory_file(tmp_path, "floor.json", rss=390.0, ceiling=440.0)
        no_current = _bench_file(tmp_path, "current.json", 50_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(no_current),
            "--section", "cell_1m",
        ]) == gate.OK

    def test_committed_ceiling_wins_over_fresh_one(self, tmp_path,
                                                   monkeypatch):
        # A PR cannot dodge the gate by shipping a looser ceiling in the
        # fresh file: the floor snapshot's ceiling binds.
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _memory_file(tmp_path, "floor.json", rss=390.0, ceiling=440.0)
        dodger = _memory_file(tmp_path, "current.json", rss=612.0,
                              ceiling=9_999.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(dodger),
            "--section", "cell_1m",
        ]) == gate.REGRESSION

    def test_memory_gate_runs_even_on_constrained_runners(self, tmp_path,
                                                          monkeypatch):
        # Resident set does not jitter with core contention, so unlike
        # the throughput sections the memory gate binds below --min-cores.
        monkeypatch.setattr(gate, "usable_cores", lambda: 1)
        floor = _memory_file(tmp_path, "floor.json", rss=390.0, ceiling=440.0)
        bloated = _memory_file(tmp_path, "current.json", rss=612.0,
                               ceiling=440.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(bloated),
        ]) == gate.REGRESSION

    def test_bad_tolerance_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        with pytest.raises(SystemExit):
            gate.main(["--floor", str(floor), "--tolerance", "not-a-number"])
        assert gate.main([
            "--floor", str(floor), "--tolerance", "1.5",
        ]) == gate.BAD_INPUT
