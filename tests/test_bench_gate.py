"""Unit tests for the benchmark regression gate (tools/check_bench_floor.py)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parent.parent / "tools" / "check_bench_floor.py"
_spec = importlib.util.spec_from_file_location("check_bench_floor", _TOOL)
gate = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_floor", gate)
_spec.loader.exec_module(gate)


def _bench_file(tmp_path: Path, name: str, pps: float | None,
                section: str = "single_1k") -> Path:
    path = tmp_path / name
    payload = {"cpu_count": 4}
    if pps is not None:
        payload[section] = {"packets_per_sec": pps}
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestEvaluate:
    def test_passes_at_and_above_threshold(self):
        ok, message = gate.evaluate(60_000.0, 27_000.0, tolerance=0.45)
        assert ok and "ok:" in message
        ok, _ = gate.evaluate(60_000.0, 120_000.0, tolerance=0.45)
        assert ok

    def test_fails_below_threshold(self):
        ok, message = gate.evaluate(60_000.0, 20_000.0, tolerance=0.45)
        assert not ok
        assert "REGRESSION" in message


class TestMain:
    def test_regression_exits_nonzero(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 10_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.REGRESSION

    def test_healthy_measurement_passes(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 58_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_skips_cleanly_on_constrained_runner(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 1)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 1_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_skips_cleanly_via_environment(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        monkeypatch.setenv(gate.SKIP_ENV, "skip")
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        current = _bench_file(tmp_path, "current.json", 1_000.0)
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_missing_floor_or_current_skips_cleanly(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        no_floor = _bench_file(tmp_path, "floor.json", None)
        current = _bench_file(tmp_path, "current.json", 50_000.0)
        assert gate.main([
            "--floor", str(no_floor), "--current", str(current),
        ]) == gate.OK
        # A gated section absent from the fresh run skips cleanly too —
        # a heavy section may legitimately not be benchmarked on every
        # runner, and gate ordering must not block its first commit.
        floor = _bench_file(tmp_path, "floor2.json", 60_000.0)
        no_current = _bench_file(tmp_path, "current2.json", None)
        assert gate.main([
            "--floor", str(floor), "--current", str(no_current),
        ]) == gate.OK

    def test_section_flag_gates_other_sections(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0,
                            section="metro_250k")
        slow = _bench_file(tmp_path, "current.json", 10_000.0,
                           section="metro_250k")
        assert gate.main([
            "--floor", str(floor), "--current", str(slow),
            "--section", "metro_250k",
        ]) == gate.REGRESSION
        # Under an explicit section with no data: clean skip.
        assert gate.main([
            "--floor", str(floor), "--current", str(slow),
            "--section", "single_1k",
        ]) == gate.OK

    def test_default_gates_every_throughput_section(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        assert "metro_250k" in gate.DEFAULT_SECTIONS
        assert "sharded_100k" in gate.DEFAULT_SECTIONS
        assert "vector_1k" in gate.DEFAULT_SECTIONS
        # A regression in any default section trips the gate even when
        # the others are healthy.
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({
            section: {"packets_per_sec": 60_000.0}
            for section in gate.DEFAULT_SECTIONS
        }), encoding="utf-8")
        current_payload = {
            section: {"packets_per_sec": 59_000.0}
            for section in gate.DEFAULT_SECTIONS
        }
        current_payload["metro_250k"] = {"packets_per_sec": 10_000.0}
        current = tmp_path / "current.json"
        current.write_text(json.dumps(current_payload), encoding="utf-8")
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.REGRESSION
        # All healthy: passes.
        current.write_text(json.dumps({
            section: {"packets_per_sec": 59_000.0}
            for section in gate.DEFAULT_SECTIONS
        }), encoding="utf-8")
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
        ]) == gate.OK

    def test_repeated_section_flags_gate_a_subset(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = tmp_path / "floor.json"
        floor.write_text(json.dumps({
            "single_1k": {"packets_per_sec": 60_000.0},
            "metro_250k": {"packets_per_sec": 60_000.0},
        }), encoding="utf-8")
        current = tmp_path / "current.json"
        current.write_text(json.dumps({
            "single_1k": {"packets_per_sec": 59_000.0},
            "metro_250k": {"packets_per_sec": 10_000.0},
        }), encoding="utf-8")
        # Only the healthy section requested: passes.
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
            "--section", "single_1k",
        ]) == gate.OK
        # Both requested: the regressed one trips it.
        assert gate.main([
            "--floor", str(floor), "--current", str(current),
            "--section", "single_1k", "--section", "metro_250k",
        ]) == gate.REGRESSION

    def test_bad_tolerance_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setattr(gate, "usable_cores", lambda: 8)
        floor = _bench_file(tmp_path, "floor.json", 60_000.0)
        with pytest.raises(SystemExit):
            gate.main(["--floor", str(floor), "--tolerance", "not-a-number"])
        assert gate.main([
            "--floor", str(floor), "--tolerance", "1.5",
        ]) == gate.BAD_INPUT
