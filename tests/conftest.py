"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.rrc import CARRIER_PROFILES, get_profile
from repro.traces import (
    Direction,
    Packet,
    PacketTrace,
    generate_application_trace,
    generate_periodic_trace,
    generate_poisson_trace,
)


@pytest.fixture(params=sorted(CARRIER_PROFILES))
def any_profile(request):
    """Each carrier profile in turn."""
    return get_profile(request.param)


@pytest.fixture
def att_profile():
    """The AT&T HSPA+ profile (the paper's 3G anchor for t_threshold)."""
    return get_profile("att_hspa")


@pytest.fixture
def lte_profile():
    """The Verizon LTE profile (two-state RRC machine)."""
    return get_profile("verizon_lte")


@pytest.fixture
def tmobile_profile():
    """The T-Mobile 3G profile (long t2 timer)."""
    return get_profile("tmobile_3g")


@pytest.fixture
def verizon3g_profile():
    """The Verizon 3G profile (no FACH-like state)."""
    return get_profile("verizon_3g")


@pytest.fixture
def simple_trace():
    """A tiny hand-built trace: one 3-packet burst, a long gap, a 2-packet burst."""
    return PacketTrace(
        [
            Packet(0.0, 200, Direction.UPLINK, flow_id=1),
            Packet(0.1, 1200, Direction.DOWNLINK, flow_id=1),
            Packet(0.2, 1200, Direction.DOWNLINK, flow_id=1),
            Packet(60.0, 200, Direction.UPLINK, flow_id=2),
            Packet(60.1, 800, Direction.DOWNLINK, flow_id=2),
        ],
        name="simple",
    )


@pytest.fixture
def heartbeat_trace():
    """A periodic heartbeat trace (the regime where fixed timers waste the most)."""
    return generate_periodic_trace(period=15.0, duration=1800.0, burst_packets=2,
                                   size=120, seed=3, name="heartbeat")


@pytest.fixture
def poisson_trace():
    """A memoryless arrival trace."""
    return generate_poisson_trace(rate=0.2, duration=1200.0, seed=7)


@pytest.fixture
def email_trace():
    """A short synthetic email-application trace."""
    return generate_application_trace("email", duration=1800.0, seed=1)


@pytest.fixture
def im_trace():
    """A short synthetic instant-messaging trace (heartbeats every 5-20 s)."""
    return generate_application_trace("im", duration=900.0, seed=2)
