"""Tests for the paper-claims registry and claim checking."""

import pytest

from repro.reporting import PAPER_CLAIMS, ClaimCheck, PaperClaim, check_claims


class TestPaperClaim:
    def test_within_band(self):
        claim = PaperClaim("k", "d", "s", paper_value=50.0, accept_low=40.0,
                           accept_high=60.0)
        assert claim.within_band(45.0)
        assert claim.within_band(40.0)
        assert not claim.within_band(39.9)

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            PaperClaim("k", "d", "s", 50.0, accept_low=60.0, accept_high=40.0)


class TestClaimsRegistry:
    def test_headline_claims_present(self):
        for key in (
            "makeidle_3g_savings_high",
            "makeidle_lte_savings",
            "combined_3g_savings_high",
            "combined_lte_savings",
            "makeidle_switch_overhead_max",
            "combined_switch_overhead",
            "makeactive_median_delay",
        ):
            assert key in PAPER_CLAIMS

    def test_paper_values_match_the_text(self):
        assert PAPER_CLAIMS["makeidle_lte_savings"].paper_value == 67.0
        assert PAPER_CLAIMS["combined_3g_savings_high"].paper_value == 75.0
        assert PAPER_CLAIMS["combined_switch_overhead"].paper_value == pytest.approx(1.33)
        assert PAPER_CLAIMS["makeactive_median_delay"].paper_value == pytest.approx(4.48)

    def test_bands_contain_paper_values(self):
        for claim in PAPER_CLAIMS.values():
            assert claim.within_band(claim.paper_value)

    def test_keys_match_claim_keys(self):
        for key, claim in PAPER_CLAIMS.items():
            assert key == claim.key


class TestCheckClaims:
    def test_check_pass_and_fail(self):
        checks = check_claims(
            {"makeidle_lte_savings": 60.0, "combined_switch_overhead": 10.0}
        )
        by_key = {c.claim.key: c for c in checks}
        assert by_key["makeidle_lte_savings"].passed
        assert not by_key["combined_switch_overhead"].passed

    def test_deviation(self):
        check = ClaimCheck(PAPER_CLAIMS["makeidle_lte_savings"], measured=62.0)
        assert check.deviation == pytest.approx(-5.0)

    def test_unknown_measurement_rejected(self):
        with pytest.raises(KeyError):
            check_claims({"definitely_not_a_claim": 1.0})

    def test_empty_measurements(self):
        assert check_claims({}) == []
