"""Tests for the markdown report generators."""

from repro.reporting import experiments_report, headline_report


class TestHeadlineReport:
    def test_contains_table_and_summary(self):
        report = headline_report(
            {"makeidle_lte_savings": 62.0, "combined_lte_savings": 68.0}
        )
        assert "| claim |" in report
        assert "makeidle_lte_savings" in report
        assert "2/2 headline claims reproduced" in report

    def test_failures_are_visible(self):
        report = headline_report({"combined_switch_overhead": 50.0})
        assert "NO" in report
        assert "0/1 headline claims" in report


class TestExperimentsReport:
    def test_sections_are_rendered_in_order(self):
        report = experiments_report(
            [("Figure 9", "app table"), ("Table 3", "delay table")],
            title="Repro record",
        )
        assert report.startswith("# Repro record")
        assert report.index("## Figure 9") < report.index("## Table 3")
        assert "app table" in report
        assert report.endswith("\n")

    def test_headline_section_prepended_when_measured_given(self):
        report = experiments_report(
            [("Figure 9", "body")],
            measured={"makeidle_lte_savings": 62.0},
        )
        assert report.index("## Headline claims") < report.index("## Figure 9")

    def test_no_headline_section_without_measurements(self):
        report = experiments_report([("Figure 9", "body")])
        assert "Headline claims" not in report
