"""Tests for the low-level renderers (markdown tables, CSV, formatting)."""

import csv
import io

import pytest

from repro.reporting import (
    csv_rows,
    format_markdown_table,
    format_percent,
    format_seconds,
    write_csv,
)


class TestFormatting:
    def test_format_percent_from_fraction(self):
        assert format_percent(0.664) == "66.4%"

    def test_format_percent_from_percentage(self):
        assert format_percent(66.4) == "66.4%"

    def test_format_percent_decimals(self):
        assert format_percent(0.5, decimals=0) == "50%"

    def test_format_seconds(self):
        assert format_seconds(4.481) == "4.48s"
        assert format_seconds(4.481, decimals=1) == "4.5s"


class TestMarkdownTable:
    def test_structure(self):
        table = format_markdown_table(["a", "b"], [[1, 2.5], ["x", "y"]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1].count("---") == 2
        assert lines[2] == "| 1 | 2.5 |"
        assert lines[3] == "| x | y |"

    def test_float_trimming(self):
        table = format_markdown_table(["v"], [[1.0], [0.3333333]])
        assert "| 1 |" in table
        assert "| 0.333 |" in table

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_markdown_table([], [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a", "b"], [[1]])


class TestCsv:
    def test_round_trip_through_csv_reader(self):
        records = [
            {"carrier": "att_hspa", "saved": 61.5},
            {"carrier": "verizon_lte", "saved": 67.0},
        ]
        text = csv_rows(records)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed[0]["carrier"] == "att_hspa"
        assert float(parsed[1]["saved"]) == pytest.approx(67.0)

    def test_missing_fields_become_empty_cells(self):
        text = csv_rows(
            [{"a": 1, "b": 2}, {"a": 3}], fieldnames=["a", "b"]
        )
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[1]["b"] == ""

    def test_extra_fields_rejected(self):
        with pytest.raises(ValueError):
            csv_rows([{"a": 1, "surprise": 2}], fieldnames=["a"])

    def test_empty_records(self):
        assert csv_rows([]) == ""

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        count = write_csv([{"x": 1}, {"x": 2}], path)
        assert count == 2
        assert path.read_text(encoding="utf-8").startswith("x")
