"""Integration tests: full pipeline from workload generation to paper-level claims.

These tests exercise the whole stack (trace generation → simulation →
metrics → experiment drivers) and check the *qualitative* claims of the
paper's evaluation — the relative ordering of schemes, the effect of
MakeActive on signalling, and the headline savings band — on small but
realistic synthetic workloads.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_schemes
from repro.core import standard_policies
from repro.energy import TailEnergyModel
from repro.metrics import (
    confusion_for_result,
    delay_stats_for_result,
    savings_table,
    switches_normalized_table,
)
from repro.rrc import get_profile
from repro.traces import generate_mixed_trace, read_pcap, user_trace, write_pcap


@pytest.fixture(scope="module")
def verizon3g_user_results():
    """All schemes simulated on one Verizon 3G user (shared across tests)."""
    profile = get_profile("verizon_3g")
    trace = user_trace("verizon_3g", 2, hours_per_day=0.5, seed=0)
    return run_schemes(trace, profile, window_size=100), profile, trace


class TestSchemeOrdering:
    def test_makeidle_saves_majority_of_energy(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        saving = results["makeidle"].energy_saved_fraction(baseline)
        # The paper reports 51-75 % savings across carriers; on the synthetic
        # workload we accept anything in a generous band around that.
        assert 0.4 <= saving <= 0.95

    def test_makeidle_beats_the_fixed_45_second_tail(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        assert (
            results["makeidle"].energy_saved_fraction(baseline)
            > results["fixed_4.5s"].energy_saved_fraction(baseline)
        )

    def test_makeidle_within_striking_distance_of_oracle(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        oracle = results["oracle"].energy_saved_fraction(baseline)
        makeidle = results["makeidle"].energy_saved_fraction(baseline)
        assert makeidle >= 0.75 * oracle

    def test_combined_schemes_do_not_regress_makeidle(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        makeidle = results["makeidle"].energy_saved_fraction(baseline)
        for key in ("makeidle+makeactive_learn", "makeidle+makeactive_fixed"):
            assert results[key].energy_saved_fraction(baseline) >= makeidle - 0.05


class TestSignallingOverhead:
    def test_makeactive_reduces_switches_relative_to_makeidle(
        self, verizon3g_user_results
    ):
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        table = switches_normalized_table(
            {k: v for k, v in results.items() if k != "status_quo"}, baseline
        )
        assert table["makeidle+makeactive_fixed"] < table["makeidle"]
        assert table["makeidle+makeactive_learn"] <= table["makeidle"] + 1e-9

    def test_makeidle_switch_inflation_is_bounded(self, verizon3g_user_results):
        # The paper observes at most 4-5x the status-quo switches for
        # MakeIdle alone.
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        assert results["makeidle"].switches_normalized(baseline) <= 6.0


class TestMakeActiveDelays:
    def test_learning_delays_are_a_few_seconds(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        stats = delay_stats_for_result(
            results["makeidle+makeactive_learn"], only_delayed=True
        )
        assert stats.count > 0
        # Table 3 reports mean session delays between about 4.6 and 5.1 s;
        # accept the broader "a few seconds" band.
        assert 0.5 <= stats.mean <= 8.0

    def test_learning_mean_delay_below_fixed(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        learn = delay_stats_for_result(
            results["makeidle+makeactive_learn"], only_delayed=True
        )
        fixed = delay_stats_for_result(
            results["makeidle+makeactive_fixed"], only_delayed=True
        )
        assert learn.mean < fixed.mean


class TestConfusionAgainstOracle:
    def test_makeidle_has_lower_error_than_baselines(self, verizon3g_user_results):
        results, profile, _ = verizon3g_user_results
        threshold = TailEnergyModel(profile).t_threshold
        makeidle = confusion_for_result(results["makeidle"], threshold)
        fixed = confusion_for_result(results["fixed_4.5s"], threshold)
        combined_error_makeidle = (
            makeidle.false_switch_rate + makeidle.missed_switch_rate
        )
        combined_error_fixed = fixed.false_switch_rate + fixed.missed_switch_rate
        assert combined_error_makeidle <= combined_error_fixed + 0.05


class TestSavingsReportsConsistency:
    def test_reports_match_raw_results(self, verizon3g_user_results):
        results, _, _ = verizon3g_user_results
        baseline = results["status_quo"]
        schemes = {k: v for k, v in results.items() if k != "status_quo"}
        table = savings_table(schemes, baseline)
        for key, report in table.items():
            assert report.energy_j == pytest.approx(schemes[key].total_energy_j)
            assert report.saved_percent == pytest.approx(
                100.0 * schemes[key].energy_saved_fraction(baseline)
            )


class TestPcapPipeline:
    def test_pcap_round_trip_preserves_simulation_results(self, tmp_path):
        # Export a generated workload to pcap, read it back, and check the
        # simulated energy is essentially unchanged — the full external-data
        # path a downstream user with real tcpdump captures would exercise.
        profile = get_profile("att_hspa")
        trace = generate_mixed_trace(["im", "email"], duration=900.0, seed=6)
        path = tmp_path / "workload.pcap"
        write_pcap(path, trace)
        restored = read_pcap(path, device_address="10.0.0.2")
        assert len(restored) == len(trace)

        policies = standard_policies(window_size=50)
        original = run_schemes(trace, profile, schemes={"makeidle": policies["makeidle"]})
        replayed = run_schemes(
            restored, profile, schemes={"makeidle": standard_policies(50)["makeidle"]}
        )
        original_saving = original["makeidle"].energy_saved_fraction(
            original["status_quo"]
        )
        replayed_saving = replayed["makeidle"].energy_saved_fraction(
            replayed["status_quo"]
        )
        assert replayed_saving == pytest.approx(original_saving, abs=0.08)


class TestLteVersus3g:
    def test_lte_profile_also_benefits(self):
        profile = get_profile("verizon_lte")
        trace = user_trace("verizon_lte", 1, hours_per_day=0.5, seed=0)
        results = run_schemes(trace, profile, window_size=100)
        baseline = results["status_quo"]
        assert results["makeidle"].energy_saved_fraction(baseline) > 0.4
        assert results["oracle"].energy_saved_fraction(baseline) >= (
            results["makeidle"].energy_saved_fraction(baseline) - 0.02
        )
