"""Golden-record regression suite: canonical results compared byte-for-byte.

Each suite in ``tests/golden/*.json`` pins a small canonical grid of runs
— single-UE sweeps, homogeneous cells, scenario cells — down to the exact
float.  The test rebuilds every payload from scratch through the public
API (:mod:`repro.reporting.golden` owns the builders, shared with the
refresh tool) and compares the rendered JSON text with the checked-in
file **byte for byte**: shortest-round-trip float formatting makes byte
equality float equality, so any drift in seed-equivalent results — a
reordered float fold, a changed seed derivation, a kernel refactor with a
subtly different close — fails here before it ships.

If a change is *supposed* to move these numbers, regenerate with::

    PYTHONPATH=src python tools/refresh_golden.py

and justify the refresh in the commit message.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path

import pytest

from repro.reporting.golden import (
    ENGINE_AWARE_SUITES,
    GOLDEN_BUILDERS,
    build_golden,
    render_golden,
)
from repro.sim.vector_engine import numpy_available

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


@pytest.mark.parametrize("suite", sorted(GOLDEN_BUILDERS))
def test_golden_records_are_byte_exact(suite):
    path = GOLDEN_DIR / f"{suite}.json"
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "`PYTHONPATH=src python tools/refresh_golden.py`"
    )
    expected = path.read_text(encoding="utf-8")
    actual = render_golden(build_golden(suite))
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(), actual.splitlines(),
                fromfile=f"tests/golden/{suite}.json (checked in)",
                tofile=f"{suite} (rebuilt)", lineterm="", n=2,
            )
        )
        preview = "\n".join(diff.splitlines()[:60])
        pytest.fail(
            f"golden suite {suite!r} drifted from the checked-in record.\n"
            "If this change is intentional, refresh with "
            "`PYTHONPATH=src python tools/refresh_golden.py` and explain "
            f"why in the commit message.\nFirst differences:\n{preview}"
        )


@pytest.mark.parametrize("suite", sorted(ENGINE_AWARE_SUITES))
def test_golden_records_are_byte_exact_under_vector_backend(suite):
    """The vector backend reproduces every golden suite byte-for-byte.

    Same checked-in files, same comparison — only ``engine="vector"``
    differs.  This is the backend contract at its sharpest: the numpy
    kernel is not *approximately* the scalar kernel, it is the same
    floats in the same order, including the scalar-fallback devices the
    eligibility rules route around the folds (MakeIdle cohorts, the
    mixed-policy scenario).
    """
    if not numpy_available():
        pytest.skip("numpy unavailable — vector backend falls back to scalar")
    path = GOLDEN_DIR / f"{suite}.json"
    expected = path.read_text(encoding="utf-8")
    actual = render_golden(build_golden(suite, engine="vector"))
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(), actual.splitlines(),
                fromfile=f"tests/golden/{suite}.json (checked in)",
                tofile=f"{suite} (rebuilt, engine=vector)", lineterm="", n=2,
            )
        )
        preview = "\n".join(diff.splitlines()[:60])
        pytest.fail(
            f"vector backend drifted from golden suite {suite!r} — the "
            "byte-identity contract is broken; fix the backend (never "
            f"refresh goldens for this).\nFirst differences:\n{preview}"
        )


@pytest.mark.parametrize("suite", sorted(GOLDEN_BUILDERS))
def test_golden_files_are_canonically_rendered(suite):
    """The checked-in files themselves are canonical JSON (round-trip stable).

    Guards against hand-edits: re-rendering the *parsed* file must
    reproduce the file, so every golden file was produced by the tool.
    """
    path = GOLDEN_DIR / f"{suite}.json"
    text = path.read_text(encoding="utf-8")
    assert render_golden(json.loads(text)) == text


def test_golden_suites_cover_every_builder():
    """Every registered builder has a checked-in file, and nothing extra."""
    files = {p.stem for p in GOLDEN_DIR.glob("*.json")}
    assert files == set(GOLDEN_BUILDERS)
