"""End-to-end pipeline tests: config -> simulation -> metrics -> report.

These exercise the path a downstream user takes: describe an experiment as
an :class:`~repro.config.ExperimentConfig`, run the configured schemes
through the simulator, and render the outcome with the reporting layer —
all without touching any module internals.
"""

import json

import pytest

from repro.config import ExperimentConfig, WorkloadConfig, load_config, save_config
from repro.core import StatusQuoPolicy, standard_policies
from repro.metrics import savings_table
from repro.reporting import csv_rows, format_markdown_table, headline_report
from repro.rrc import get_profile, signaling_load
from repro.sim import TraceSimulator


def run_experiment(config: ExperimentConfig):
    """Run one configured experiment and return (baseline, {scheme: result})."""
    profile = get_profile(config.carrier)
    trace = config.workload.build_trace()
    simulator = TraceSimulator(profile)
    policies = standard_policies(window_size=config.window_size)
    baseline = simulator.run(trace, StatusQuoPolicy())
    results = {
        scheme: simulator.run(trace, policies[scheme])
        for scheme in config.schemes
        if scheme != "status_quo"
    }
    return baseline, results


class TestConfiguredPipeline:
    @pytest.fixture
    def config(self):
        return ExperimentConfig(
            carrier="att_hspa",
            workload=WorkloadConfig(kind="application", name="im",
                                    duration_s=900.0, seed=4),
            schemes=("status_quo", "makeidle", "oracle"),
            window_size=50,
            label="pipeline-test",
        )

    def test_config_round_trip_then_run(self, tmp_path, config):
        path = tmp_path / "experiment.json"
        save_config(config, path)
        loaded = load_config(path)
        baseline, results = run_experiment(loaded)
        assert set(results) == {"makeidle", "oracle"}
        assert baseline.total_energy_j > 0
        for result in results.values():
            assert result.total_energy_j > 0

    def test_metrics_and_report_from_results(self, config):
        baseline, results = run_experiment(config)
        table = savings_table(results, baseline)
        assert table["oracle"].saved_percent >= table["makeidle"].saved_percent - 1.0

        markdown = format_markdown_table(
            ["scheme", "saved %"],
            [[scheme, round(report.saved_percent, 1)] for scheme, report in table.items()],
        )
        assert "makeidle" in markdown

        records = [
            {"scheme": scheme, "saved_percent": report.saved_percent}
            for scheme, report in table.items()
        ]
        text = csv_rows(records)
        assert text.splitlines()[0] == "scheme,saved_percent"

    def test_signaling_load_comparison(self, config):
        baseline, results = run_experiment(config)
        profile = get_profile(config.carrier)
        duration = config.workload.duration_s
        baseline_load = signaling_load(
            baseline.switches, duration, technology=profile.technology
        )
        makeidle_load = signaling_load(
            results["makeidle"].switches, duration, technology=profile.technology
        )
        # MakeIdle introduces fast-dormancy releases the status quo never does.
        assert makeidle_load.fast_dormancy_demotions > 0
        assert baseline_load.fast_dormancy_demotions == 0
        assert makeidle_load.messages > 0

    def test_headline_report_from_measured_savings(self, config):
        baseline, results = run_experiment(config)
        saving = 100.0 * results["makeidle"].energy_saved_fraction(baseline)
        report = headline_report({"makeidle_3g_savings_high": saving})
        assert "makeidle_3g_savings_high" in report
        assert "headline claims reproduced" in report

    def test_config_json_is_human_editable(self, tmp_path, config):
        path = tmp_path / "experiment.json"
        save_config(config, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["carrier"] = "verizon_lte"
        path.write_text(json.dumps(data), encoding="utf-8")
        edited = load_config(path)
        assert edited.carrier == "verizon_lte"
        assert edited.workload == config.workload
