"""Scenario composition: archetypes, cohorts, apportionment, serialisation."""

import pytest

from repro.api.spec import PolicySpec
from repro.scenarios import (
    ARCHETYPES,
    SCENARIO_PRESETS,
    Cohort,
    DeviceArchetype,
    DiurnalShape,
    Scenario,
    get_archetype,
    get_scenario,
)


class TestArchetypes:
    def test_builtins_resolvable_and_valid(self):
        for name, archetype in ARCHETYPES.items():
            assert get_archetype(name) is archetype
            assert archetype.intensity > 0
            assert archetype.apps

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="heavy_streamer"):
            get_archetype("nope")

    def test_rejects_unknown_app(self):
        with pytest.raises(ValueError, match="unknown application"):
            DeviceArchetype(name="x", apps=("notanapp",))

    def test_rejects_non_positive_intensity(self):
        with pytest.raises(ValueError, match="intensity"):
            DeviceArchetype(name="x", apps=("im",), intensity=0.0)

    def test_round_trips_through_dict(self):
        archetype = get_archetype("heavy_streamer")
        clone = DeviceArchetype.from_dict(archetype.to_dict())
        assert clone == archetype

    def test_fingerprint_excludes_name(self):
        a = DeviceArchetype(name="a", apps=("im",), intensity=0.5)
        b = DeviceArchetype(name="b", apps=("im",), intensity=0.5)
        assert a.fingerprint == b.fingerprint


class TestCohorts:
    def test_label_defaults_to_archetype(self):
        cohort = Cohort(archetype=get_archetype("idle_messenger"))
        assert cohort.label == "idle_messenger"
        named = Cohort(archetype=get_archetype("idle_messenger"), name="quiet")
        assert named.label == "quiet"

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Cohort(archetype=get_archetype("idle_messenger"), weight=0.0)

    def test_policy_override_in_fingerprint(self):
        base = Cohort(archetype=get_archetype("idle_messenger"))
        override = Cohort(
            archetype=get_archetype("idle_messenger"),
            policy=PolicySpec(scheme="makeidle", window_size=50),
        )
        assert base.fingerprint != override.fingerprint

    def test_unset_override_window_pins_to_default_at_construction(self):
        # An override can't inherit a plan-level window (the scenario is
        # fingerprinted independently of any plan), so it resolves to the
        # library default eagerly — key and built policy agree.
        cohort = Cohort(
            archetype=get_archetype("idle_messenger"),
            policy=PolicySpec(scheme="makeidle"),
        )
        assert cohort.policy.window_size == 100
        assert cohort.policy.build().window_size == 100
        # Schemes without a window are untouched.
        pinned = Cohort(
            archetype=get_archetype("idle_messenger"),
            policy=PolicySpec(scheme="status_quo"),
        )
        assert pinned.policy.window_size is None


class TestScenarioLayout:
    def _scenario(self, weights):
        return Scenario(
            name="s",
            cohorts=tuple(
                Cohort(archetype=get_archetype(name), weight=w, name=f"c{i}")
                for i, (name, w) in enumerate(weights)
            ),
        )

    def test_sizes_sum_to_devices(self):
        scenario = self._scenario(
            [("office_worker", 0.5), ("heavy_streamer", 0.2),
             ("idle_messenger", 0.3)]
        )
        for devices in (1, 2, 3, 7, 10, 99, 1000):
            sizes = scenario.cohort_sizes(devices)
            assert sum(sizes) == devices
            assert all(size >= 0 for size in sizes)

    def test_largest_remainder_apportionment(self):
        scenario = self._scenario(
            [("office_worker", 0.5), ("heavy_streamer", 0.2),
             ("idle_messenger", 0.3)]
        )
        assert scenario.cohort_sizes(10) == [5, 2, 3]

    def test_cohort_at_contiguous_blocks(self):
        scenario = self._scenario(
            [("office_worker", 0.5), ("idle_messenger", 0.5)]
        )
        labels = [scenario.cohort_at(i, 10).label for i in range(10)]
        assert labels == ["c0"] * 5 + ["c1"] * 5

    def test_cohort_at_validates_index(self):
        scenario = self._scenario([("office_worker", 1.0)])
        with pytest.raises(ValueError, match="outside"):
            scenario.cohort_at(5, 5)

    def test_weights_are_relative(self):
        a = self._scenario([("office_worker", 1.0), ("idle_messenger", 1.0)])
        b = self._scenario([("office_worker", 10.0), ("idle_messenger", 10.0)])
        assert a.cohort_sizes(8) == b.cohort_sizes(8)


class TestScenarioValidation:
    def test_requires_cohorts(self):
        with pytest.raises(ValueError, match="at least one cohort"):
            Scenario(name="s", cohorts=())

    def test_rejects_duplicate_cohort_labels(self):
        cohort = Cohort(archetype=get_archetype("idle_messenger"))
        with pytest.raises(ValueError, match="duplicate cohort labels"):
            Scenario(name="s", cohorts=(cohort, cohort))

    def test_has_policy_overrides(self):
        assert SCENARIO_PRESETS["mixed_policy"].has_policy_overrides
        assert not SCENARIO_PRESETS["office_day"].has_policy_overrides


class TestScenarioSerialisation:
    @pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
    def test_presets_round_trip_through_dict(self, name):
        scenario = get_scenario(name)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario
        assert clone.fingerprint == scenario.fingerprint

    def test_fingerprint_excludes_scenario_name(self):
        cohorts = (Cohort(archetype=get_archetype("idle_messenger")),)
        assert (Scenario(name="a", cohorts=cohorts).fingerprint
                == Scenario(name="b", cohorts=cohorts).fingerprint)

    def test_fingerprint_sees_shape(self):
        cohorts = (Cohort(archetype=get_archetype("idle_messenger")),)
        flat = Scenario(name="a", cohorts=cohorts)
        shaped = Scenario(
            name="a", cohorts=cohorts,
            shape=DiurnalShape(name="x", segments=((0.0, 2.0),)),
        )
        assert flat.fingerprint != shaped.fingerprint

    def test_unknown_preset_lists_available(self):
        with pytest.raises(KeyError, match="office_day"):
            get_scenario("not_a_preset")


class TestEnvelopes:
    def test_unit_intensity_unshaped_is_none(self):
        scenario = Scenario(
            name="s",
            cohorts=(Cohort(archetype=get_archetype("background_chatter")),),
        )
        assert scenario.device_envelope(scenario.cohorts[0]) is None

    def test_intensity_only_envelope_is_constant(self):
        scenario = Scenario(
            name="s",
            cohorts=(Cohort(archetype=get_archetype("idle_messenger")),),
        )
        envelope = scenario.device_envelope(scenario.cohorts[0])
        assert envelope(0.0) == envelope(50_000.0) == 0.35

    def test_shape_and_intensity_multiply(self):
        shape = DiurnalShape(name="x", segments=((0.0, 0.5), (12.0, 2.0)))
        scenario = Scenario(
            name="s",
            cohorts=(Cohort(archetype=get_archetype("idle_messenger")),),
            shape=shape,
        )
        envelope = scenario.device_envelope(scenario.cohorts[0])
        assert envelope(0.0) == pytest.approx(0.35 * 0.5)
        assert envelope(13 * 3600.0) == pytest.approx(0.35 * 2.0)
