"""Scenario populations through the cell sweep stack: specs, plans, runners."""

import pytest

from repro.api import (
    PolicySpec,
    SerialRunner,
    cell,
    execute_cell,
    plan,
)
from repro.api.cells import CellRunSpec, CellSpec, DormancySpec
from repro.scenarios import Cohort, Scenario, get_archetype, get_scenario
from repro.traces.packet import PacketTrace


def _run_spec(scenario_name="office_day", devices=9, scheme="makeidle",
              dormancy=DormancySpec(), duration=300.0, shards=1):
    return CellRunSpec(
        cell=cell(devices=devices, scenario=scenario_name, duration=duration),
        carrier="att_hspa",
        policy=PolicySpec(scheme=scheme).resolved(100),
        dormancy=dormancy,
        shards=shards,
    )


class TestScenarioCellSpec:
    def test_helper_resolves_preset_names(self):
        spec = cell(devices=10, scenario="office_day")
        assert spec.scenario is not None
        assert spec.scenario.name == "office_day"

    def test_helper_rejects_unknown_preset(self):
        with pytest.raises(KeyError, match="available presets"):
            cell(devices=10, scenario="not_a_preset")

    def test_helper_rejects_apps_with_scenario(self):
        with pytest.raises(ValueError, match="not both"):
            cell(devices=10, apps=("social",), scenario="office_day")

    def test_scenario_spec_carries_no_apps(self):
        # A scenario defines every workload: the spec must not carry (or
        # serialise) an apps cycle that never runs.
        spec = CellSpec(devices=10, apps=("social",),
                        scenario=get_scenario("office_day"))
        assert spec.apps == ()
        assert "apps" not in spec.to_dict()
        assert spec == cell(devices=10, scenario="office_day")

    def test_rejects_non_scenario_payload(self):
        with pytest.raises(TypeError, match="scenario must be"):
            CellSpec(devices=10, scenario=object())

    def test_label_carries_scenario_name_and_digest(self):
        a = cell(devices=10, scenario="office_day")
        b = cell(devices=10, scenario="evening_peak")
        assert a.label.startswith("office_day10-")
        assert b.label.startswith("evening_peak10-")
        assert a.label != b.label

    def test_fingerprint_distinguishes_scenarios(self):
        a = cell(devices=10, scenario="office_day")
        b = cell(devices=10, scenario="evening_peak")
        plain = cell(devices=10)
        assert a.fingerprint != b.fingerprint
        assert a.fingerprint != plain.fingerprint

    def test_round_trips_through_dict(self):
        spec = cell(devices=10, scenario="mixed_policy", duration=200.0)
        clone = CellSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint == spec.fingerprint

    def test_materialised_scenario_identity_sees_chunk_s(self):
        # Scenario workloads generate via the chunked stream even with
        # streaming=False, so chunk_s must stay in the identity: two
        # materialised specs differing only in chunk_s build different
        # populations and must never share a cache entry or a label.
        a = cell(devices=6, scenario="office_day", duration=200.0,
                 streaming=False, chunk_s=50.0)
        b = cell(devices=6, scenario="office_day", duration=200.0,
                 streaming=False, chunk_s=100.0)
        assert a.fingerprint != b.fingerprint
        assert a.label != b.label
        # Homogeneous materialised populations ignore chunk_s (single-shot
        # generation), exactly as before.
        plain_a = cell(devices=6, duration=200.0, streaming=False,
                       chunk_s=50.0)
        plain_b = cell(devices=6, duration=200.0, streaming=False,
                       chunk_s=100.0)
        assert plain_a.fingerprint == plain_b.fingerprint

    def test_plain_cell_dict_has_no_scenario_key(self):
        assert "scenario" not in cell(devices=5).to_dict()

    def test_build_devices_labels_cohorts(self):
        spec = cell(devices=10, scenario="office_day", duration=200.0)
        devices = spec.build_devices(PolicySpec(scheme="makeidle").resolved(100))
        labels = [d.cohort for d in devices]
        assert labels == (["office_worker"] * 5 + ["heavy_streamer"] * 2
                          + ["idle_messenger"] * 3)

    def test_build_devices_shard_slices_match_whole_build(self):
        spec = cell(devices=10, scenario="mixed_policy", duration=200.0,
                    streaming=False)
        policy = PolicySpec(scheme="makeidle").resolved(100)
        whole = spec.build_devices(policy)
        sliced = (spec.build_devices(policy, 0, 4)
                  + spec.build_devices(policy, 4, 10))
        assert [d.device_id for d in whole] == [d.device_id for d in sliced]
        assert [d.cohort for d in whole] == [d.cohort for d in sliced]
        assert [d.policy.name for d in whole] == [d.policy.name for d in sliced]
        for a, b in zip(whole, sliced):
            assert list(a.trace) == list(b.trace)

    def test_materialised_build_equals_streamed_packets(self):
        streamed = cell(devices=4, scenario="office_day", duration=200.0)
        materialised = cell(devices=4, scenario="office_day", duration=200.0,
                            streaming=False)
        policy = PolicySpec(scheme="makeidle").resolved(100)
        for a, b in zip(streamed.build_devices(policy),
                        materialised.build_devices(policy)):
            assert isinstance(b.trace, PacketTrace)
            assert list(a.trace) == list(b.trace)

    def test_mixed_policy_overrides_device_policies(self):
        spec = cell(devices=10, scenario="mixed_policy", duration=200.0)
        devices = spec.build_devices(PolicySpec(scheme="makeidle").resolved(100))
        by_cohort = {}
        for device in devices:
            by_cohort.setdefault(device.cohort, set()).add(device.policy.name)
        assert by_cohort["legacy_fleet"] == {"status_quo"}
        assert by_cohort["early_adopters"] == {"makeidle+makeactive_learn"}
        # The un-overridden cohort runs the sweep's policy axis value.
        assert by_cohort["standard"] == {"makeidle"}

    def test_intensity_thins_traffic(self):
        quiet = Scenario(
            name="quiet",
            cohorts=(Cohort(archetype=get_archetype("idle_messenger")),),
        )
        busy = Scenario(
            name="busy",
            cohorts=(Cohort(archetype=get_archetype("background_chatter")),),
        )
        # idle_messenger: im at intensity 0.35; compare against im+email at
        # 1.0 — the quiet archetype must produce far fewer packets.
        policy = PolicySpec(scheme="status_quo")
        quiet_packets = sum(
            1 for d in
            cell(devices=3, scenario=quiet, duration=600.0).build_devices(policy)
            for _ in d.trace
        )
        busy_packets = sum(
            1 for d in
            cell(devices=3, scenario=busy, duration=600.0).build_devices(policy)
            for _ in d.trace
        )
        assert 0 < quiet_packets < busy_packets


class TestScenarioExecution:
    def test_cohort_breakdown_partitions_cell_totals(self):
        result = execute_cell(_run_spec())
        breakdown = result.cohort_breakdown()
        assert set(breakdown) == set(result.cohorts())
        assert sum(b.devices for b in breakdown.values()) == len(result.devices)
        assert sum(b.packets for b in breakdown.values()) == result.total_packets
        assert (sum(b.energy_j for b in breakdown.values())
                == pytest.approx(result.total_energy_j, rel=1e-12))
        assert (sum(b.dormancy_requests for b in breakdown.values())
                == result.dormancy_requests)

    @pytest.mark.parametrize("scenario_name", ["office_day", "mixed_policy"])
    def test_sharded_runs_byte_identical(self, scenario_name):
        reference = execute_cell(_run_spec(scenario_name, devices=11))
        sharded = execute_cell(_run_spec(scenario_name, devices=11), shards=3)
        assert sharded.devices == reference.devices
        assert sharded.signaling == reference.signaling
        assert sharded.switch_times == reference.switch_times
        assert sharded.cohort_breakdown() == reference.cohort_breakdown()

    def test_mixed_policy_status_quo_keeps_dormancy_in_cache_key(self):
        accept = _run_spec("mixed_policy", scheme="status_quo")
        reject = _run_spec("mixed_policy", scheme="status_quo",
                           dormancy=DormancySpec("reject_all"))
        assert accept.cache_key != reject.cache_key

    def test_homogeneous_status_quo_still_collapses_dormancy(self):
        accept = _run_spec("uniform", scheme="status_quo")
        reject = _run_spec("uniform", scheme="status_quo",
                           dormancy=DormancySpec("reject_all"))
        assert accept.cache_key == reject.cache_key

    def test_mixed_policy_legacy_cohort_ignores_policy_axis(self):
        # The legacy cohort is pinned to status_quo: its devices behave
        # identically whether the axis says status_quo or makeidle.
        baseline = execute_cell(_run_spec("mixed_policy", scheme="status_quo"))
        treated = execute_cell(_run_spec("mixed_policy", scheme="makeidle"))
        legacy_ids = [d.device_id for d in baseline.devices
                      if d.cohort == "legacy_fleet"]
        assert legacy_ids
        for device_id in legacy_ids:
            assert (baseline.device(device_id).breakdown
                    == treated.device(device_id).breakdown)


class TestScenarioPlans:
    def _plan(self, *names, devices=8):
        return (
            plan()
            .scenarios(*names, devices=devices, duration=250.0)
            .carriers("att_hspa")
            .policies("status_quo", "makeidle")
        )

    def test_scenarios_axis_expands_like_cells(self):
        p = self._plan("office_day", "evening_peak")
        assert p.is_cell_plan
        assert len(p) == 4
        scenarios = {spec.cell.scenario.name for spec in p.build()}
        assert scenarios == {"office_day", "evening_peak"}

    def test_scenarios_axis_rejects_bad_entries(self):
        with pytest.raises(TypeError, match="Scenario or a preset"):
            plan().scenarios(42)
        with pytest.raises(KeyError, match="available presets"):
            plan().scenarios("not_a_preset")

    def test_plan_round_trips_scenarios_through_dict(self):
        p = self._plan("mixed_policy").dormancy("accept_all").shards(2)
        clone = type(p).from_dict(p.to_dict())
        assert clone.build() == p.build()

    def test_runner_reports_per_cohort_records(self):
        runs = SerialRunner().run(self._plan("office_day"))
        rows = runs.to_records()
        for row in rows:
            cohorts = row["cohorts"]
            assert set(cohorts) == {"office_worker", "heavy_streamer",
                                    "idle_messenger"}
            assert sum(c["devices"] for c in cohorts.values()) == row["devices"]
            assert sum(c["energy_j"] for c in cohorts.values()) == pytest.approx(
                row["energy_j"], rel=1e-12
            )
        makeidle = next(r for r in rows if r["scheme"] == "makeidle")
        for entry in makeidle["cohorts"].values():
            assert "saved_percent" in entry

    def test_homogeneous_records_have_no_cohorts_key(self):
        p = (
            plan()
            .cells(cell(devices=4, apps=("im",), duration=200.0))
            .carriers("att_hspa")
            .policies("status_quo")
        )
        rows = SerialRunner().run(p).to_records()
        assert all("cohorts" not in row for row in rows)

    def test_csv_export_omits_nested_cohorts(self, tmp_path):
        runs = SerialRunner().run(self._plan("office_day", devices=4))
        path = tmp_path / "out.csv"
        runs.to_csv(path)
        text = path.read_text(encoding="utf-8")
        assert "cohorts" not in text
        assert "energy_j" in text
