"""Diurnal shape behaviour: lookup, wrapping, validation, serialisation."""

import math

import pytest

from repro.scenarios import (
    DIURNAL_SHAPES,
    EVENING_PEAK,
    FLAT,
    OFFICE_HOURS,
    DiurnalShape,
    get_shape,
)


class TestRateLookup:
    def test_flat_is_identity_everywhere(self):
        for t in (0.0, 1.0, 3600.0, 86_399.0, 86_400.0, 200_000.0):
            assert FLAT.rate_at(t) == 1.0

    def test_segment_boundaries_are_inclusive_of_start(self):
        shape = DiurnalShape(name="s", segments=((0.0, 0.5), (12.0, 2.0)))
        assert shape.rate_at(12.0 * 3600.0) == 2.0
        assert shape.rate_at(12.0 * 3600.0 - 1.0) == 0.5

    def test_wraps_across_midnight(self):
        shape = DiurnalShape(name="s", segments=((6.0, 1.5), (22.0, 0.25)))
        # Before the first segment, the last segment's rate applies.
        assert shape.rate_at(0.0) == 0.25
        assert shape.rate_at(5.9 * 3600.0) == 0.25
        assert shape.rate_at(7.0 * 3600.0) == 1.5
        # A second day looks like the first.
        assert shape.rate_at(86_400.0 + 7.0 * 3600.0) == 1.5

    def test_shape_is_callable(self):
        assert OFFICE_HOURS(10.0 * 3600.0) == OFFICE_HOURS.rate_at(10.0 * 3600.0)

    def test_mean_rate_is_duration_weighted(self):
        shape = DiurnalShape(name="s", segments=((0.0, 1.0), (12.0, 3.0)))
        assert math.isclose(shape.mean_rate, 2.0)

    def test_mean_rate_with_wrap(self):
        shape = DiurnalShape(name="s", segments=((6.0, 2.0), (18.0, 1.0)))
        # 12 hours at 2.0, 12 hours (18->6, wrapping) at 1.0.
        assert math.isclose(shape.mean_rate, 1.5)


class TestValidation:
    def test_requires_segments(self):
        with pytest.raises(ValueError, match="at least one segment"):
            DiurnalShape(name="s", segments=())

    def test_rejects_non_increasing_starts(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DiurnalShape(name="s", segments=((5.0, 1.0), (5.0, 2.0)))

    def test_rejects_out_of_range_hours(self):
        with pytest.raises(ValueError, match="outside"):
            DiurnalShape(name="s", segments=((24.0, 1.0),))

    def test_rejects_non_positive_rates(self):
        with pytest.raises(ValueError, match="must be positive"):
            DiurnalShape(name="s", segments=((0.0, 0.0),))

    def test_scaled_validates_factor(self):
        with pytest.raises(ValueError, match="positive"):
            FLAT.scaled(0.0)

    def test_scaled_multiplies_every_segment(self):
        doubled = OFFICE_HOURS.scaled(2.0)
        for (h0, m0), (h1, m1) in zip(OFFICE_HOURS.segments, doubled.segments):
            assert h0 == h1
            assert m1 == 2.0 * m0


class TestSerialisation:
    @pytest.mark.parametrize("shape", [FLAT, OFFICE_HOURS, EVENING_PEAK])
    def test_round_trips_through_dict(self, shape):
        clone = DiurnalShape.from_dict(shape.to_dict())
        assert clone == shape
        assert clone.fingerprint == shape.fingerprint

    def test_fingerprint_excludes_name(self):
        a = DiurnalShape(name="a", segments=((0.0, 1.0),))
        b = DiurnalShape(name="b", segments=((0.0, 1.0),))
        assert a.fingerprint == b.fingerprint


class TestRegistry:
    def test_builtins_resolvable_by_name(self):
        for name in DIURNAL_SHAPES:
            assert get_shape(name).name == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="office_hours"):
            get_shape("nope")
