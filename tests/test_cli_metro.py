"""CLI tests for metro sweeps (``repro-rrc sweep --metro NAME``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

# Small but mobile: 10-minute mean residencies over a 30-minute horizon
# guarantee handovers without a day-long commuter run.
SMOKE = [
    "sweep", "--metro", "metro_4cell", "--devices", "12",
    "--duration", "1800", "--carriers", "att_hspa",
    "--schemes", "makeidle",
]


class TestMetroSweep:
    def test_prints_metro_and_cell_tables(self, capsys):
        assert main(SMOKE) == 0
        output = capsys.readouterr().out
        assert "handovers" in output
        assert "handovers out" in output  # the per-cell table
        for cell in ("north", "east", "south", "west"):
            assert cell in output
        assert "util %" in output

    def test_smoke_command_shape(self, capsys):
        """The CI smoke invocation (scaled down) runs end to end."""
        code = main([
            "sweep", "--metro", "commuter_2cell", "--devices", "20",
            "--shards", "2", "--duration", "1800",
            "--carriers", "att_hspa",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "commuter_2cell" in output
        assert "home" in output and "work" in output

    def test_json_carries_metro_fields(self, capsys):
        assert main([*SMOKE, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        records = [r for r in payload["records"] if r["scheme"] == "makeidle"]
        assert records
        for record in records:
            assert record["n_cells"] == 4
            assert record["handovers"] > 0
            assert set(record["cells"]) == {"north", "east", "south", "west"}
            east = record["cells"]["east"]
            assert east["dormancy"].startswith("rate_limited")
            assert "denial_rate" in east

    def test_default_schemes_include_baseline(self, capsys):
        assert main([
            "sweep", "--metro", "metro_4cell", "--devices", "6",
            "--duration", "900", "--carriers", "att_hspa",
        ]) == 0
        output = capsys.readouterr().out
        assert "status_quo" in output
        assert "makeidle" in output

    def test_plan_round_trips(self, capsys, tmp_path):
        plan_path = tmp_path / "metroplan.json"
        assert main([*SMOKE, "--save-plan", str(plan_path)]) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "--plan", str(plan_path)]) == 0
        assert capsys.readouterr().out == first


class TestMetroErrors:
    @pytest.mark.parametrize("extra", [
        ["--cell"],
        ["--dormancy", "reject_all"],
        ["--scenario", "office_day"],
    ])
    def test_rejects_cell_flags(self, capsys, extra):
        code = main([
            "sweep", "--metro", "metro_4cell", "--carriers", "att_hspa",
            *extra,
        ])
        assert code == 2
        assert "--metro" in capsys.readouterr().err

    @pytest.mark.parametrize("extra", [
        ["--apps", "im"],
        ["--population", "verizon_3g"],
    ])
    def test_rejects_workload_flags(self, capsys, extra):
        code = main([
            "sweep", "--metro", "metro_4cell", "--carriers", "att_hspa",
            *extra,
        ])
        assert code == 2
        assert "workload mixes" in capsys.readouterr().err

    def test_unknown_preset_is_a_clean_error(self, capsys):
        code = main([
            "sweep", "--metro", "gotham", "--carriers", "att_hspa",
        ])
        assert code == 2
        assert "unknown metro" in capsys.readouterr().err
