"""Tests for signalling-overhead accounting."""

import pytest

from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.rrc import (
    LTE_SIGNALING_COSTS,
    UMTS_SIGNALING_COSTS,
    RadioState,
    SignalingCosts,
    SwitchEvent,
    SwitchKind,
    Technology,
    compare_signaling,
    count_messages,
    signaling_costs_for,
    signaling_load,
)
from repro.sim import TraceSimulator


def _switch(kind, time=0.0):
    from_state = RadioState.IDLE if kind is SwitchKind.PROMOTION else RadioState.ACTIVE
    to_state = RadioState.ACTIVE if kind is SwitchKind.PROMOTION else RadioState.IDLE
    return SwitchEvent(
        time=time, kind=kind, from_state=from_state, to_state=to_state,
        energy_j=0.1, delay_s=0.5,
    )


class TestSignalingCosts:
    def test_messages_for_each_kind(self):
        costs = SignalingCosts(10, 4, 6)
        assert costs.messages_for(SwitchKind.PROMOTION) == 10
        assert costs.messages_for(SwitchKind.TIMER_DEMOTION) == 4
        assert costs.messages_for(SwitchKind.FAST_DORMANCY) == 6

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            SignalingCosts(-1, 4, 6)

    def test_defaults_per_technology(self):
        assert signaling_costs_for(Technology.LTE) is LTE_SIGNALING_COSTS
        assert signaling_costs_for(Technology.UMTS_3G) is UMTS_SIGNALING_COSTS

    def test_umts_promotion_heavier_than_lte(self):
        assert (
            UMTS_SIGNALING_COSTS.promotion_messages
            > LTE_SIGNALING_COSTS.promotion_messages
        )


class TestCountMessages:
    def test_counts_sum_per_kind(self):
        events = [
            _switch(SwitchKind.PROMOTION, 0.0),
            _switch(SwitchKind.FAST_DORMANCY, 5.0),
            _switch(SwitchKind.PROMOTION, 10.0),
        ]
        costs = SignalingCosts(10, 4, 6)
        assert count_messages(events, costs) == 10 + 6 + 10

    def test_empty_sequence_is_zero(self):
        assert count_messages([], UMTS_SIGNALING_COSTS) == 0


class TestSignalingLoad:
    def test_load_breakdown_and_rates(self):
        events = [
            _switch(SwitchKind.PROMOTION, 0.0),
            _switch(SwitchKind.TIMER_DEMOTION, 20.0),
            _switch(SwitchKind.PROMOTION, 40.0),
            _switch(SwitchKind.FAST_DORMANCY, 50.0),
        ]
        load = signaling_load(events, duration_s=3600.0, costs=SignalingCosts(10, 4, 6))
        assert load.promotions == 2
        assert load.timer_demotions == 1
        assert load.fast_dormancy_demotions == 1
        assert load.switches == 4
        assert load.messages == 10 + 4 + 10 + 6
        assert load.messages_per_hour == pytest.approx(load.messages)
        assert load.switches_per_hour == pytest.approx(4.0)

    def test_zero_duration_rates(self):
        load = signaling_load([], duration_s=0.0)
        assert load.messages_per_hour == 0.0
        assert load.switches_per_hour == 0.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            signaling_load([], duration_s=-1.0)

    def test_normalized_switches(self):
        baseline = signaling_load(
            [_switch(SwitchKind.PROMOTION), _switch(SwitchKind.TIMER_DEMOTION)],
            duration_s=100.0,
        )
        scheme = signaling_load(
            [
                _switch(SwitchKind.PROMOTION),
                _switch(SwitchKind.FAST_DORMANCY),
                _switch(SwitchKind.PROMOTION),
                _switch(SwitchKind.FAST_DORMANCY),
            ],
            duration_s=100.0,
        )
        assert scheme.normalized_switches(baseline) == pytest.approx(2.0)

    def test_normalized_against_zero_baseline(self):
        baseline = signaling_load([], duration_s=10.0)
        empty = signaling_load([], duration_s=10.0)
        some = signaling_load([_switch(SwitchKind.PROMOTION)], duration_s=10.0)
        assert empty.normalized_switches(baseline) == 1.0
        assert some.normalized_switches(baseline) == 1.0


class TestIntegrationWithSimulator:
    def test_makeidle_adds_fast_dormancy_messages(self, att_profile, im_trace):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(im_trace, StatusQuoPolicy())
        makeidle = simulator.run(im_trace, MakeIdlePolicy())
        baseline_load = signaling_load(
            baseline.switches, im_trace.duration, technology=att_profile.technology
        )
        makeidle_load = signaling_load(
            makeidle.switches, im_trace.duration, technology=att_profile.technology
        )
        assert baseline_load.fast_dormancy_demotions == 0
        assert makeidle_load.fast_dormancy_demotions > 0
        comparison = compare_signaling(makeidle_load, baseline_load)
        assert comparison["switches_normalized"] == pytest.approx(
            makeidle_load.normalized_switches(baseline_load)
        )
