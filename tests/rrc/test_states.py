"""Tests for radio state and technology definitions."""

from __future__ import annotations

from repro.rrc import RadioState, Technology, state_name


class TestTechnology:
    def test_lte_flag(self):
        assert Technology.LTE.is_lte
        assert not Technology.UMTS_3G.is_lte


class TestRadioState:
    def test_transfer_capability(self):
        assert RadioState.ACTIVE.can_transfer
        assert RadioState.HIGH_IDLE.can_transfer
        assert not RadioState.IDLE.can_transfer
        assert not RadioState.PROMOTING.can_transfer

    def test_tail_power_flag(self):
        assert RadioState.ACTIVE.draws_tail_power
        assert RadioState.HIGH_IDLE.draws_tail_power
        assert RadioState.PROMOTING.draws_tail_power
        assert not RadioState.IDLE.draws_tail_power


class TestStateNames:
    def test_3g_names_match_3gpp(self):
        assert state_name(RadioState.ACTIVE, Technology.UMTS_3G) == "CELL_DCH"
        assert state_name(RadioState.HIGH_IDLE, Technology.UMTS_3G) == "CELL_FACH"
        assert state_name(RadioState.IDLE, Technology.UMTS_3G) == "CELL_PCH/IDLE"

    def test_lte_names(self):
        assert state_name(RadioState.ACTIVE, Technology.LTE) == "RRC_CONNECTED"
        assert state_name(RadioState.IDLE, Technology.LTE) == "RRC_IDLE"

    def test_every_state_named_for_every_technology(self):
        for technology in Technology:
            for state in RadioState:
                assert state_name(state, technology)
