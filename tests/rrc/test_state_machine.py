"""Tests for the RRC state machine."""

from __future__ import annotations

import pytest

from repro.rrc import RadioState, RrcStateMachine, SwitchKind


def total_state_time(machine, state):
    return sum(i.duration for i in machine.intervals if i.state is state)


class TestTimerDemotions:
    def test_initial_state_is_idle(self, att_profile):
        machine = RrcStateMachine(att_profile)
        assert machine.state is RadioState.IDLE

    def test_activity_promotes_from_idle(self, att_profile):
        machine = RrcStateMachine(att_profile)
        promoted = machine.notify_activity(1.0)
        assert promoted
        assert machine.state is RadioState.ACTIVE
        assert machine.promotion_count == 1

    def test_activity_while_active_does_not_promote_again(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(1.0)
        assert not machine.notify_activity(2.0)
        assert machine.promotion_count == 1

    def test_t1_demotes_to_high_idle(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.advance_to(att_profile.t1 + 1.0)
        assert machine.state is RadioState.HIGH_IDLE

    def test_t1_plus_t2_demotes_to_idle(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.advance_to(att_profile.total_inactivity_timeout + 1.0)
        assert machine.state is RadioState.IDLE

    def test_lte_demotes_directly_to_idle(self, lte_profile):
        machine = RrcStateMachine(lte_profile)
        machine.notify_activity(0.0)
        machine.advance_to(lte_profile.t1 + 0.1)
        assert machine.state is RadioState.IDLE
        # No HIGH_IDLE interval should ever appear for LTE.
        machine.finish(lte_profile.t1 + 1.0)
        assert total_state_time(machine, RadioState.HIGH_IDLE) == 0.0

    def test_verizon3g_skips_high_idle(self, verizon3g_profile):
        machine = RrcStateMachine(verizon3g_profile)
        machine.notify_activity(0.0)
        machine.advance_to(verizon3g_profile.t1 + 0.5)
        assert machine.state is RadioState.IDLE

    def test_timer_demotion_times_are_exact(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.finish(100.0)
        active = total_state_time(machine, RadioState.ACTIVE)
        fach = total_state_time(machine, RadioState.HIGH_IDLE)
        assert active == pytest.approx(att_profile.t1)
        assert fach == pytest.approx(att_profile.t2)

    def test_activity_resets_timer(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.notify_activity(att_profile.t1 - 1.0)
        machine.advance_to(att_profile.t1 + 1.0)  # only 2 s since last activity
        assert machine.state is RadioState.ACTIVE

    def test_timer_demotions_cost_no_energy(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.finish(100.0)
        timer_switches = [
            s for s in machine.switches if s.kind is SwitchKind.TIMER_DEMOTION
        ]
        assert timer_switches
        assert all(s.energy_j == 0.0 for s in timer_switches)


class TestFastDormancy:
    def test_fast_dormancy_from_active(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        assert machine.request_fast_dormancy(1.0)
        assert machine.state is RadioState.IDLE
        assert machine.demotion_count == 1

    def test_fast_dormancy_charges_profile_energy(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.request_fast_dormancy(1.0)
        event = machine.switches[-1]
        assert event.kind is SwitchKind.FAST_DORMANCY
        assert event.energy_j == pytest.approx(att_profile.demotion_energy_j)

    def test_fast_dormancy_noop_when_idle(self, att_profile):
        machine = RrcStateMachine(att_profile)
        assert not machine.request_fast_dormancy(1.0)
        assert machine.demotion_count == 0

    def test_fast_dormancy_from_high_idle(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.advance_to(att_profile.t1 + 1.0)
        assert machine.state is RadioState.HIGH_IDLE
        assert machine.request_fast_dormancy(att_profile.t1 + 2.0)
        assert machine.state is RadioState.IDLE

    def test_promotion_after_dormancy_costs_energy(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.request_fast_dormancy(1.0)
        machine.notify_activity(5.0)
        promotion = machine.switches[-1]
        assert promotion.kind is SwitchKind.PROMOTION
        assert promotion.energy_j == pytest.approx(att_profile.promotion_energy_j)


class TestStateAt:
    def test_state_at_does_not_mutate(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        assert machine.state_at(100.0) is RadioState.IDLE
        assert machine.state is RadioState.ACTIVE
        assert machine.switch_count == 1  # only the initial promotion

    def test_state_at_intermediate_times(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        assert machine.state_at(att_profile.t1 - 0.1) is RadioState.ACTIVE
        assert machine.state_at(att_profile.t1 + 0.1) is RadioState.HIGH_IDLE
        assert (
            machine.state_at(att_profile.total_inactivity_timeout + 0.1)
            is RadioState.IDLE
        )

    def test_state_at_for_idle_machine(self, att_profile):
        machine = RrcStateMachine(att_profile)
        assert machine.state_at(50.0) is RadioState.IDLE


class TestTimelineIntegrity:
    def test_intervals_are_contiguous(self, att_profile, heartbeat_trace):
        machine = RrcStateMachine(att_profile)
        for packet in heartbeat_trace:
            machine.notify_activity(packet.timestamp)
        machine.finish(heartbeat_trace.end_time + 30.0)
        intervals = machine.intervals
        for previous, current in zip(intervals, intervals[1:]):
            assert current.start == pytest.approx(previous.end)

    def test_timeline_covers_whole_run(self, att_profile, heartbeat_trace):
        machine = RrcStateMachine(att_profile)
        for packet in heartbeat_trace:
            machine.notify_activity(packet.timestamp)
        end = heartbeat_trace.end_time + 30.0
        machine.finish(end)
        total = sum(i.duration for i in machine.intervals)
        assert total == pytest.approx(end)

    def test_time_must_not_go_backwards(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(10.0)
        with pytest.raises(ValueError):
            machine.notify_activity(5.0)

    def test_finished_machine_rejects_events(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(0.0)
        machine.finish(10.0)
        with pytest.raises(RuntimeError):
            machine.notify_activity(20.0)

    def test_now_tracks_latest_event(self, att_profile):
        machine = RrcStateMachine(att_profile)
        machine.notify_activity(3.0)
        machine.advance_to(8.0)
        assert machine.now == pytest.approx(8.0)

    def test_switch_counts_consistent(self, att_profile, heartbeat_trace):
        machine = RrcStateMachine(att_profile)
        for packet in heartbeat_trace:
            machine.notify_activity(packet.timestamp)
        machine.finish(heartbeat_trace.end_time + 30.0)
        assert machine.switch_count == machine.promotion_count + machine.demotion_count
