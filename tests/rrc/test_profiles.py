"""Tests for carrier profiles: the constants of Tables 1 and 2."""

from __future__ import annotations

import dataclasses

import pytest

from repro.rrc import (
    CARRIER_ORDER,
    CARRIER_PROFILES,
    CarrierProfile,
    RadioState,
    Technology,
    get_profile,
)


class TestTable2Constants:
    """The profile constants must match Table 2 of the paper exactly."""

    @pytest.mark.parametrize(
        "key, psnd, prcv, pt1, pt2, t1, t2",
        [
            ("tmobile_3g", 1202, 737, 445, 343, 3.2, 16.3),
            ("att_hspa", 1539, 1212, 916, 659, 6.2, 10.4),
            ("verizon_3g", 2043, 1177, 1130, 1130, 9.8, 0.0),
            ("verizon_lte", 2928, 1737, 1325, 0.0, 10.2, 0.0),
        ],
    )
    def test_power_and_timer_values(self, key, psnd, prcv, pt1, pt2, t1, t2):
        profile = get_profile(key)
        assert profile.power_send_mw == pytest.approx(psnd)
        assert profile.power_recv_mw == pytest.approx(prcv)
        assert profile.power_active_mw == pytest.approx(pt1)
        assert profile.power_high_idle_mw == pytest.approx(pt2)
        assert profile.t1 == pytest.approx(t1)
        assert profile.t2 == pytest.approx(t2)

    def test_table1_subset(self):
        # Table 1 lists the Galaxy Nexus bulk powers for Verizon's networks.
        assert get_profile("verizon_3g").power_send_mw == pytest.approx(2043)
        assert get_profile("verizon_3g").power_recv_mw == pytest.approx(1177)
        assert get_profile("verizon_lte").power_send_mw == pytest.approx(2928)
        assert get_profile("verizon_lte").power_recv_mw == pytest.approx(1737)

    def test_carrier_order_matches_figures(self):
        assert CARRIER_ORDER == ("tmobile_3g", "att_hspa", "verizon_3g", "verizon_lte")

    def test_promotion_delays_match_section_2_1(self):
        assert get_profile("att_hspa").promotion_delay_s == pytest.approx(1.4)
        assert get_profile("tmobile_3g").promotion_delay_s == pytest.approx(3.6)
        assert get_profile("verizon_3g").promotion_delay_s == pytest.approx(1.2)
        assert get_profile("verizon_lte").promotion_delay_s == pytest.approx(0.6)


class TestDerivedQuantities:
    def test_unit_conversions(self, att_profile):
        assert att_profile.power_active_w == pytest.approx(0.916)
        assert att_profile.power_send_w == pytest.approx(1.539)

    def test_total_inactivity_timeout(self, att_profile, lte_profile):
        assert att_profile.total_inactivity_timeout == pytest.approx(16.6)
        assert lte_profile.total_inactivity_timeout == pytest.approx(10.2)

    def test_high_idle_state_presence(self):
        assert get_profile("att_hspa").has_high_idle_state
        assert get_profile("tmobile_3g").has_high_idle_state
        assert not get_profile("verizon_3g").has_high_idle_state
        assert not get_profile("verizon_lte").has_high_idle_state

    def test_switch_energy_is_demotion_plus_promotion(self, any_profile):
        assert any_profile.switch_energy_j == pytest.approx(
            any_profile.demotion_energy_j + any_profile.promotion_energy_j
        )

    def test_dormancy_fraction_scales_demotion(self, att_profile):
        half = att_profile
        tenth = att_profile.with_dormancy_fraction(0.1)
        assert tenth.demotion_energy_j == pytest.approx(
            half.radio_off_energy_j * 0.1
        )
        assert tenth.switch_energy_j < half.switch_energy_j

    def test_with_timers(self, att_profile):
        modified = att_profile.with_timers(4.5, 0.0)
        assert modified.t1 == 4.5
        assert modified.t2 == 0.0
        assert modified.power_active_mw == att_profile.power_active_mw

    def test_state_power(self, att_profile):
        assert att_profile.state_power_w(RadioState.ACTIVE) == pytest.approx(0.916)
        assert att_profile.state_power_w(RadioState.HIGH_IDLE) == pytest.approx(0.659)
        assert att_profile.state_power_w(RadioState.IDLE) == pytest.approx(0.0)
        assert att_profile.state_power_w(RadioState.PROMOTING) == pytest.approx(0.916)

    def test_transfer_power(self, lte_profile):
        assert lte_profile.transfer_power_w(uplink=True) == pytest.approx(2.928)
        assert lte_profile.transfer_power_w(uplink=False) == pytest.approx(1.737)


class TestLookupAndValidation:
    def test_aliases(self):
        assert get_profile("ATT").key == "att_hspa"
        assert get_profile("T-Mobile").key == "tmobile_3g"
        assert get_profile("lte").key == "verizon_lte"
        assert get_profile("Verizon").key == "verizon_3g"

    def test_unknown_carrier(self):
        with pytest.raises(KeyError):
            get_profile("sprint_6g")

    def test_lte_technology(self):
        assert get_profile("verizon_lte").technology is Technology.LTE
        assert get_profile("att_hspa").technology is Technology.UMTS_3G

    def test_negative_timer_rejected(self, att_profile):
        with pytest.raises(ValueError):
            dataclasses.replace(att_profile, t1=-1.0)

    def test_bad_dormancy_fraction_rejected(self, att_profile):
        with pytest.raises(ValueError):
            att_profile.with_dormancy_fraction(0.0)
        with pytest.raises(ValueError):
            att_profile.with_dormancy_fraction(1.5)

    def test_negative_power_rejected(self, att_profile):
        with pytest.raises(ValueError):
            dataclasses.replace(att_profile, power_send_mw=-5.0)

    def test_all_profiles_are_frozen(self):
        for profile in CARRIER_PROFILES.values():
            with pytest.raises(dataclasses.FrozenInstanceError):
                profile.t1 = 1.0  # type: ignore[misc]
