"""Tests for the fast-dormancy cost model."""

from __future__ import annotations

import pytest

from repro.rrc import (
    SENSITIVITY_FRACTIONS,
    FastDormancyModel,
    dormancy_fraction_sweep,
)


class TestFastDormancyModel:
    def test_default_fraction_is_half(self, att_profile):
        model = FastDormancyModel(att_profile)
        assert model.fraction == pytest.approx(0.5)
        assert model.demotion_energy_j == pytest.approx(
            0.5 * att_profile.radio_off_energy_j
        )
        assert model.demotion_delay_s == pytest.approx(
            0.5 * att_profile.radio_off_delay_s
        )

    def test_switch_energy_includes_promotion(self, att_profile):
        model = FastDormancyModel(att_profile)
        assert model.switch_energy_j == pytest.approx(
            model.demotion_energy_j + att_profile.promotion_energy_j
        )

    def test_requests_always_granted_by_default(self, att_profile):
        assert FastDormancyModel(att_profile).request_granted()
        assert not FastDormancyModel(att_profile, always_accepted=False).request_granted()

    def test_invalid_fraction(self, att_profile):
        with pytest.raises(ValueError):
            FastDormancyModel(att_profile, fraction=0.0)
        with pytest.raises(ValueError):
            FastDormancyModel(att_profile, fraction=1.5)

    def test_apply_to_profile(self, att_profile):
        model = FastDormancyModel(att_profile, fraction=0.2)
        profile = model.apply_to_profile()
        assert profile.dormancy_fraction == pytest.approx(0.2)
        assert profile.demotion_energy_j == pytest.approx(model.demotion_energy_j)


class TestSensitivitySweep:
    def test_paper_fractions(self):
        assert SENSITIVITY_FRACTIONS == (0.1, 0.2, 0.4, 0.5)

    def test_sweep_produces_one_profile_per_fraction(self, att_profile):
        sweep = dormancy_fraction_sweep(att_profile)
        assert set(sweep) == set(SENSITIVITY_FRACTIONS)
        for fraction, profile in sweep.items():
            assert profile.dormancy_fraction == pytest.approx(fraction)

    def test_lower_fraction_means_cheaper_switch(self, att_profile):
        sweep = dormancy_fraction_sweep(att_profile)
        energies = [sweep[f].switch_energy_j for f in sorted(sweep)]
        assert energies == sorted(energies)
