"""Tests for the LTE connected-mode DRX extension."""

import pytest

from repro.rrc import Technology, get_profile
from repro.rrc.drx import (
    DEFAULT_LTE_DRX,
    DrxConfig,
    drx_timeline,
    effective_tail_power,
    profile_with_drx,
)


class TestDrxConfig:
    def test_duty_cycles(self):
        config = DrxConfig(on_duration=0.01, short_cycle=0.02, long_cycle=0.32)
        assert config.short_duty_cycle == pytest.approx(0.5)
        assert config.long_duty_cycle == pytest.approx(0.01 / 0.32)

    def test_awake_fraction_phases(self):
        config = DrxConfig(
            inactivity_timer=0.1, on_duration=0.01, short_cycle=0.02,
            short_cycle_timer=0.4, long_cycle=0.32,
        )
        assert config.awake_fraction_at(0.05) == 1.0
        assert config.awake_fraction_at(0.2) == pytest.approx(0.5)
        assert config.awake_fraction_at(10.0) == pytest.approx(0.01 / 0.32)

    def test_awake_fraction_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_LTE_DRX.awake_fraction_at(-1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_duration": 0.0},
            {"short_cycle": 0.001, "on_duration": 0.01},
            {"long_cycle": 0.001, "on_duration": 0.01},
            {"sleep_power_fraction": 1.5},
            {"inactivity_timer": -1.0},
            {"short_cycle_timer": -0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DrxConfig(**kwargs)


class TestDrxTimeline:
    def test_full_timeline_has_three_phases(self):
        phases = drx_timeline(DEFAULT_LTE_DRX, tail_length=10.0)
        assert [p.name for p in phases] == ["continuous", "short_drx", "long_drx"]
        assert phases[0].start == 0.0
        assert phases[-1].end == pytest.approx(10.0)
        # Phases tile the tail without gaps.
        for first, second in zip(phases, phases[1:]):
            assert first.end == pytest.approx(second.start)

    def test_short_tail_truncates_phases(self):
        phases = drx_timeline(DEFAULT_LTE_DRX, tail_length=0.05)
        assert len(phases) == 1
        assert phases[0].name == "continuous"
        assert phases[0].end == pytest.approx(0.05)

    def test_zero_tail_is_empty(self):
        assert drx_timeline(DEFAULT_LTE_DRX, 0.0) == []

    def test_rejects_negative_tail(self):
        with pytest.raises(ValueError):
            drx_timeline(DEFAULT_LTE_DRX, -1.0)


class TestEffectiveTailPower:
    def test_power_between_sleep_and_awake(self):
        awake = 1.2
        average = effective_tail_power(DEFAULT_LTE_DRX, awake, tail_length=10.0)
        sleep = awake * DEFAULT_LTE_DRX.sleep_power_fraction
        assert sleep < average < awake

    def test_long_tail_approaches_long_drx_average(self):
        config = DEFAULT_LTE_DRX
        awake = 1.0
        long_average = (
            config.long_duty_cycle * awake
            + (1 - config.long_duty_cycle) * awake * config.sleep_power_fraction
        )
        average = effective_tail_power(config, awake, tail_length=1000.0)
        assert average == pytest.approx(long_average, rel=0.01)

    def test_short_tail_is_all_awake(self):
        average = effective_tail_power(DEFAULT_LTE_DRX, 1.0, tail_length=0.05)
        assert average == pytest.approx(1.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            effective_tail_power(DEFAULT_LTE_DRX, -1.0, 1.0)
        with pytest.raises(ValueError):
            effective_tail_power(DEFAULT_LTE_DRX, 1.0, 0.0)


class TestProfileWithDrx:
    def test_lte_profile_tail_power_replaced(self, lte_profile):
        derived = profile_with_drx(lte_profile)
        assert derived.technology is Technology.LTE
        assert derived.power_active_mw != lte_profile.power_active_mw
        assert 0 < derived.power_active_mw < lte_profile.power_recv_mw

    def test_explicit_awake_power(self, lte_profile):
        derived = profile_with_drx(lte_profile, awake_power_w=1.0)
        expected = effective_tail_power(DEFAULT_LTE_DRX, 1.0, lte_profile.t1) * 1000.0
        assert derived.power_active_mw == pytest.approx(expected)

    def test_rejects_3g_profiles(self):
        with pytest.raises(ValueError):
            profile_with_drx(get_profile("att_hspa"))


class TestDrxProfileTimerAblations:
    def test_with_timers_rederives_tail_power(self, lte_profile):
        # Regression: the DRX-derived P_t1 is an average over the
        # profile's *own* t1; a later .with_timers(t1=...) ablation used
        # to keep the stale constant silently.
        derived = profile_with_drx(lte_profile)
        longer = derived.with_timers(t1=lte_profile.t1 * 2)
        expected = effective_tail_power(
            DEFAULT_LTE_DRX, lte_profile.power_recv_w, lte_profile.t1 * 2
        ) * 1000.0
        assert longer.t1 == lte_profile.t1 * 2
        assert longer.power_active_mw == pytest.approx(expected)
        assert longer.power_active_mw != derived.power_active_mw

    def test_with_timers_keeps_custom_awake_power(self, lte_profile):
        derived = profile_with_drx(lte_profile, awake_power_w=1.0)
        shorter = derived.with_timers(t1=lte_profile.t1 / 2)
        expected = effective_tail_power(
            DEFAULT_LTE_DRX, 1.0, lte_profile.t1 / 2
        ) * 1000.0
        assert shorter.power_active_mw == pytest.approx(expected)

    def test_zero_t1_falls_back_to_awake_power(self, lte_profile):
        derived = profile_with_drx(lte_profile, awake_power_w=1.0)
        ablated = derived.with_timers(t1=0.0)
        # No tail to average over; the constant is never integrated.
        assert ablated.power_active_mw == pytest.approx(1000.0)

    def test_other_copies_keep_the_derivation(self, lte_profile):
        from repro.rrc.drx import DrxCarrierProfile

        derived = profile_with_drx(lte_profile)
        copy = derived.with_dormancy_fraction(0.3)
        assert isinstance(copy, DrxCarrierProfile)
        # And a timer change on the copy still re-derives.
        assert copy.with_timers(t1=lte_profile.t1 * 3).power_active_mw != \
            derived.power_active_mw

    def test_plain_profiles_unaffected(self, lte_profile):
        # The base class keeps its measured constant through ablations.
        plain = lte_profile.with_timers(t1=lte_profile.t1 * 2)
        assert plain.power_active_mw == lte_profile.power_active_mw
