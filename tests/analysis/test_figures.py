"""Tests for the plain-text table and bar-chart renderers."""

from __future__ import annotations

import pytest

from repro.analysis import format_bar_chart, format_grouped_bars, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in text
        assert "bb" in text

    def test_column_alignment(self):
        text = format_table(["x", "long_header"], [["val", 1.0]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule)

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text

    def test_non_float_cells_stringified(self):
        text = format_table(["a", "b"], [[None, 7]])
        assert "None" in text
        assert "7" in text


class TestFormatBarChart:
    def test_bars_scale_with_value(self):
        text = format_bar_chart({"small": 10.0, "large": 100.0}, width=20)
        small_line = next(line for line in text.splitlines() if "small" in line)
        large_line = next(line for line in text.splitlines() if "large" in line)
        assert large_line.count("#") > small_line.count("#")

    def test_negative_values_have_no_bar(self):
        text = format_bar_chart({"loss": -5.0, "gain": 5.0})
        loss_line = next(line for line in text.splitlines() if "loss" in line)
        assert "#" not in loss_line
        assert "-5.0" in loss_line

    def test_title_and_unit(self):
        text = format_bar_chart({"a": 1.0}, title="Energy", unit="%")
        assert text.splitlines()[0] == "Energy"
        assert "1.0%" in text

    def test_empty_values(self):
        assert "(no data)" in format_bar_chart({})

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            format_bar_chart({"a": 1.0}, width=0)


class TestFormatGroupedBars:
    def test_groups_become_rows(self):
        text = format_grouped_bars(
            {"user1": {"makeidle": 60.0, "oracle": 70.0},
             "user2": {"makeidle": 55.0}},
            title="savings",
        )
        lines = text.splitlines()
        assert lines[0] == "savings"
        assert any("user1" in line and "60.0" in line for line in lines)
        # Missing series entries render as '-'.
        assert any("user2" in line and "-" in line for line in lines)

    def test_series_union_preserved(self):
        text = format_grouped_bars({"g1": {"a": 1.0}, "g2": {"b": 2.0}})
        header = text.splitlines()[0]
        assert "a" in header and "b" in header
