"""Tests for the experiment drivers (one per paper figure family)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    application_energy_breakdowns,
    application_savings,
    carrier_comparison,
    headline_savings,
    learning_curve,
    run_schemes,
    twait_series,
    user_study,
    window_size_sweep,
)
from repro.core import SCHEME_ORDER
from repro.rrc import get_profile
from repro.traces import generate_mixed_trace, user_trace


class TestRunSchemes:
    def test_includes_status_quo_and_all_schemes(self, att_profile, heartbeat_trace):
        results = run_schemes(heartbeat_trace, att_profile, window_size=30)
        assert "status_quo" in results
        assert set(SCHEME_ORDER) <= set(results)

    def test_results_keyed_by_policy_name(self, att_profile, heartbeat_trace):
        results = run_schemes(heartbeat_trace, att_profile, window_size=30)
        for key, result in results.items():
            assert result.policy_name == key


class TestFigure1Driver:
    def test_breakdowns_for_all_apps(self, att_profile):
        breakdowns = application_energy_breakdowns(
            att_profile, apps=("im", "email"), duration=900.0, seed=0
        )
        assert set(breakdowns) == {"im", "email"}
        for breakdown in breakdowns.values():
            assert breakdown.total_j > 0.0

    def test_background_apps_are_tail_dominated(self, att_profile):
        # Figure 1: for background apps, under 30 % of the energy is data.
        breakdowns = application_energy_breakdowns(
            att_profile, apps=("im", "email", "news"), duration=1800.0, seed=0
        )
        for breakdown in breakdowns.values():
            assert breakdown.fraction(breakdown.data_j) < 0.35


class TestFigure9Driver:
    def test_savings_table_shape(self, att_profile):
        table = application_savings(
            att_profile, apps=("im", "email"), duration=900.0, seed=0, window_size=30
        )
        assert set(table) == {"im", "email"}
        for per_scheme in table.values():
            assert set(per_scheme) == set(SCHEME_ORDER)

    def test_makeidle_close_to_oracle(self, att_profile):
        table = application_savings(
            att_profile, apps=("email",), duration=1800.0, seed=0, window_size=50
        )
        email = table["email"]
        assert email["makeidle"].saved_percent >= 0.6 * email["oracle"].saved_percent


class TestUserStudyDriver:
    def test_user_study_shape(self):
        profile = get_profile("verizon_lte")
        study = user_study("verizon_lte", profile, hours_per_day=0.25, seed=0,
                           window_size=50, users=(1, 2))
        assert set(study) == {1, 2}
        for outcome in study.values():
            assert set(outcome.savings) == set(SCHEME_ORDER)
            assert set(outcome.confusion) == {"fixed_4.5s", "p95_iat", "makeidle"}
            assert outcome.status_quo_energy_j > 0.0

    def test_makeidle_saves_energy_for_every_user(self):
        profile = get_profile("verizon_3g")
        study = user_study("verizon_3g", profile, hours_per_day=0.25, seed=0,
                           window_size=50, users=(1, 2))
        for outcome in study.values():
            assert outcome.savings["makeidle"].saved_percent > 20.0


class TestCarrierComparisonDriver:
    def test_rows_for_requested_carriers(self):
        rows = carrier_comparison(carriers=("att_hspa", "verizon_lte"),
                                  population="verizon_lte",
                                  hours_per_day=0.25, seed=0, users=(1,))
        assert set(rows) == {"att_hspa", "verizon_lte"}
        for row in rows.values():
            assert set(SCHEME_ORDER) <= set(row.saved_percent)
            assert "makeidle+makeactive_learn" in row.mean_delay_s

    def test_headline_savings_structure(self):
        headline = headline_savings(carriers=("verizon_lte",),
                                    population="verizon_lte",
                                    hours_per_day=0.25, seed=0, users=(1,))
        assert "verizon_lte" in headline
        assert set(headline["verizon_lte"]) == {"makeidle", "makeidle+makeactive"}
        assert headline["verizon_lte"]["makeidle"] > 0.0


class TestSweepDrivers:
    def test_window_size_sweep(self, att_profile, im_trace):
        sweep = window_size_sweep(att_profile, im_trace, window_sizes=(10, 100))
        assert set(sweep) == {10, 100}
        for counts in sweep.values():
            assert counts.total == len(im_trace) - 1

    def test_twait_series_bounded_by_threshold(self, verizon3g_profile):
        trace = user_trace("verizon_3g", 1, hours_per_day=0.25, seed=0)
        series = twait_series(verizon3g_profile, trace, window_size=50)
        assert len(series) == len(trace)
        from repro.energy import TailEnergyModel

        threshold = TailEnergyModel(verizon3g_profile).t_threshold
        waits = [d.wait for d in series if d.wait is not None]
        assert waits
        assert all(0.0 <= w <= threshold + 1e-9 for w in waits)

    def test_learning_curve_records_iterations(self, att_profile):
        trace = generate_mixed_trace(["im", "email", "news"], duration=1800.0, seed=3)
        records = learning_curve(att_profile, trace, window_size=50)
        assert records
        assert [r.iteration for r in records] == list(range(1, len(records) + 1))
        assert all(r.buffered_sessions >= 1 for r in records)
