"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces import Direction, Packet, PacketTrace, write_pcap
from repro.traces.tcpdump import write_tcpdump


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "carriers", "simulate", "apps", "compare-carriers", "validate",
            "trace-info",
        ):
            assert command in text

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_sources_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--app", "email", "--pcap", "x"])


class TestCarriersCommand:
    def test_lists_all_four_carriers(self, capsys):
        assert main(["carriers"]) == 0
        output = capsys.readouterr().out
        for key in ("tmobile_3g", "att_hspa", "verizon_3g", "verizon_lte"):
            assert key in output


class TestSimulateCommand:
    def test_synthetic_app_run(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "simulate", "--app", "im", "--duration", "600",
                "--carrier", "att_hspa", "--csv", str(csv_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "makeidle" in output
        assert "status quo energy" in output
        assert csv_path.exists()
        assert "saved_percent" in csv_path.read_text(encoding="utf-8")

    def test_tcpdump_source(self, capsys, tmp_path):
        trace = PacketTrace(
            [
                Packet(float(i) * 20.0, 400, Direction.DOWNLINK, flow_id=i)
                for i in range(12)
            ],
            name="cap",
        )
        log = tmp_path / "cap.txt"
        write_tcpdump(trace, log)
        assert main(["simulate", "--tcpdump", str(log), "--carrier", "verizon_lte"]) == 0
        assert "oracle" in capsys.readouterr().out


class TestValidateCommand:
    def test_prints_error_summary(self, capsys):
        assert main(["validate", "--carrier", "verizon_lte"]) == 0
        output = capsys.readouterr().out
        assert "mean absolute error" in output
        assert "10% bound" in output


class TestTraceInfoCommand:
    def test_pcap_summary(self, capsys, tmp_path):
        trace = PacketTrace(
            [Packet(0.0, 500, Direction.UPLINK), Packet(3.0, 900, Direction.DOWNLINK)],
            name="two",
        )
        path = tmp_path / "two.pcap"
        write_pcap(path, trace)
        assert main(["trace-info", str(path)]) == 0
        output = capsys.readouterr().out
        assert "packets:        2" in output

    def test_tcpdump_summary(self, capsys, tmp_path):
        trace = PacketTrace(
            [Packet(0.0, 500, Direction.UPLINK), Packet(5.0, 900, Direction.DOWNLINK)],
        )
        path = tmp_path / "two.txt"
        write_tcpdump(trace, path)
        assert main(["trace-info", str(path), "--format", "tcpdump"]) == 0
        assert "duration" in capsys.readouterr().out


class TestSweepCommand:
    def test_basic_grid_with_aliases(self, capsys):
        code = main(
            [
                "sweep", "--apps", "email,im", "--carriers", "att_hspa,vzw_lte",
                "--schemes", "makeidle,learning", "--duration", "600",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        # Aliases resolved; status_quo implied as the baseline row.
        assert "verizon_lte" in output
        assert "makeidle+makeactive_learn" in output
        assert "status_quo" in output

    def test_process_pool_jobs(self, capsys):
        code = main(
            [
                "sweep", "--apps", "im", "--carriers", "att_hspa",
                "--schemes", "makeidle", "--duration", "600", "--jobs", "2",
            ]
        )
        assert code == 0
        assert "makeidle" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        code = main(
            [
                "sweep", "--apps", "im", "--carriers", "lte",
                "--schemes", "makeidle", "--duration", "600", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {r["scheme"] for r in payload["records"]} == {
            "status_quo", "makeidle"
        }
        assert payload["cache"]["misses"] == 2

    def test_csv_output(self, capsys, tmp_path):
        path = tmp_path / "sweep.csv"
        code = main(
            [
                "sweep", "--apps", "im", "--carriers", "att_hspa",
                "--duration", "600", "--csv", str(path),
            ]
        )
        assert code == 0
        assert "saved_percent" in path.read_text(encoding="utf-8")

    def test_plan_save_and_reload(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        assert main(
            [
                "sweep", "--apps", "im", "--carriers", "att_hspa",
                "--schemes", "makeidle", "--duration", "600",
                "--seeds", "0", "1", "--save-plan", str(plan_path),
            ]
        ) == 0
        first = capsys.readouterr().out
        assert plan_path.exists()
        assert main(["sweep", "--plan", str(plan_path)]) == 0
        assert capsys.readouterr().out == first

    def test_unknown_app_is_a_clean_error(self, capsys):
        code = main(["sweep", "--apps", "webmail", "--carriers", "att_hspa"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_sources_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "--apps", "im", "--population", "verizon_3g"]
            )

    def test_missing_plan_file_is_a_clean_error(self, capsys):
        code = main(["sweep", "--plan", "/nonexistent/plan.json"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_empty_axis_is_a_clean_error(self, capsys):
        code = main(["sweep", "--apps", "im", "--carriers", ","])
        assert code == 2
        assert "carriers" in capsys.readouterr().err


class TestCellSweepCommand:
    def test_cell_grid_prints_cell_metrics(self, capsys):
        code = main(
            [
                "sweep", "--cell", "--devices", "8", "--apps", "im",
                "--carriers", "att_hspa", "--schemes", "makeidle",
                "--dormancy", "accept_all,reject_all", "--duration", "180",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "dormancy" in output
        assert "reject_all" in output
        assert "peak sw/min" in output

    def test_cell_json_carries_denial_rate(self, capsys):
        import json

        code = main(
            [
                "sweep", "--cell", "--devices", "4", "--apps", "im",
                "--carriers", "att_hspa", "--schemes", "makeidle",
                "--dormancy", "reject_all", "--duration", "180", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        makeidle_rows = [r for r in payload["records"]
                         if r["scheme"] == "makeidle"]
        assert makeidle_rows
        assert all(r["denial_rate"] == 1.0 for r in makeidle_rows)

    def test_cell_plan_round_trips(self, capsys, tmp_path):
        plan_path = tmp_path / "cellplan.json"
        assert main(
            [
                "sweep", "--cell", "--devices", "4", "--apps", "im",
                "--carriers", "att_hspa", "--schemes", "makeidle",
                "--duration", "180", "--save-plan", str(plan_path),
            ]
        ) == 0
        first = capsys.readouterr().out
        assert main(["sweep", "--plan", str(plan_path)]) == 0
        assert capsys.readouterr().out == first

    def test_cell_with_population_is_a_clean_error(self, capsys):
        code = main(
            ["sweep", "--cell", "--population", "verizon_3g",
             "--carriers", "att_hspa"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_bad_dormancy_scheme_is_a_clean_error(self, capsys):
        code = main(
            ["sweep", "--cell", "--devices", "2", "--carriers", "att_hspa",
             "--dormancy", "sometimes"]
        )
        assert code == 2
        assert "dormancy" in capsys.readouterr().err

    def test_cell_flags_without_cell_are_a_clean_error(self, capsys):
        code = main(
            ["sweep", "--apps", "im", "--carriers", "att_hspa",
             "--dormancy", "reject_all"]
        )
        assert code == 2
        assert "--cell" in capsys.readouterr().err
        code = main(
            ["sweep", "--apps", "im", "--carriers", "att_hspa",
             "--devices", "5"]
        )
        assert code == 2
        assert "--cell" in capsys.readouterr().err
