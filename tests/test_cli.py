"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces import Direction, Packet, PacketTrace, write_pcap
from repro.traces.tcpdump import write_tcpdump


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in (
            "carriers", "simulate", "apps", "compare-carriers", "validate",
            "trace-info",
        ):
            assert command in text

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_sources_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--app", "email", "--pcap", "x"])


class TestCarriersCommand:
    def test_lists_all_four_carriers(self, capsys):
        assert main(["carriers"]) == 0
        output = capsys.readouterr().out
        for key in ("tmobile_3g", "att_hspa", "verizon_3g", "verizon_lte"):
            assert key in output


class TestSimulateCommand:
    def test_synthetic_app_run(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            [
                "simulate", "--app", "im", "--duration", "600",
                "--carrier", "att_hspa", "--csv", str(csv_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "makeidle" in output
        assert "status quo energy" in output
        assert csv_path.exists()
        assert "saved_percent" in csv_path.read_text(encoding="utf-8")

    def test_tcpdump_source(self, capsys, tmp_path):
        trace = PacketTrace(
            [
                Packet(float(i) * 20.0, 400, Direction.DOWNLINK, flow_id=i)
                for i in range(12)
            ],
            name="cap",
        )
        log = tmp_path / "cap.txt"
        write_tcpdump(trace, log)
        assert main(["simulate", "--tcpdump", str(log), "--carrier", "verizon_lte"]) == 0
        assert "oracle" in capsys.readouterr().out


class TestValidateCommand:
    def test_prints_error_summary(self, capsys):
        assert main(["validate", "--carrier", "verizon_lte"]) == 0
        output = capsys.readouterr().out
        assert "mean absolute error" in output
        assert "10% bound" in output


class TestTraceInfoCommand:
    def test_pcap_summary(self, capsys, tmp_path):
        trace = PacketTrace(
            [Packet(0.0, 500, Direction.UPLINK), Packet(3.0, 900, Direction.DOWNLINK)],
            name="two",
        )
        path = tmp_path / "two.pcap"
        write_pcap(path, trace)
        assert main(["trace-info", str(path)]) == 0
        output = capsys.readouterr().out
        assert "packets:        2" in output

    def test_tcpdump_summary(self, capsys, tmp_path):
        trace = PacketTrace(
            [Packet(0.0, 500, Direction.UPLINK), Packet(5.0, 900, Direction.DOWNLINK)],
        )
        path = tmp_path / "two.txt"
        write_tcpdump(trace, path)
        assert main(["trace-info", str(path), "--format", "tcpdump"]) == 0
        assert "duration" in capsys.readouterr().out
