"""Tests for the signalling-overhead (state switch) metrics."""

from __future__ import annotations

import pytest

from repro.analysis import run_schemes
from repro.metrics import (
    energy_saved_per_switch_table,
    switch_stats,
    switches_normalized_table,
)


@pytest.fixture
def scheme_results(att_profile, im_trace):
    results = run_schemes(im_trace, att_profile, window_size=50)
    baseline = results.pop("status_quo")
    return results, baseline


class TestSwitchStats:
    def test_counts_sum_to_total(self, scheme_results):
        results, baseline = scheme_results
        for result in list(results.values()) + [baseline]:
            stats = switch_stats(result)
            assert stats.total == len(result.switches)
            assert stats.signalling_switches <= stats.total

    def test_status_quo_has_no_fast_dormancy(self, scheme_results):
        _, baseline = scheme_results
        assert switch_stats(baseline).fast_dormancy_demotions == 0

    def test_makeidle_uses_fast_dormancy(self, scheme_results):
        results, _ = scheme_results
        assert switch_stats(results["makeidle"]).fast_dormancy_demotions > 0


class TestNormalizedTables:
    def test_tables_cover_all_schemes(self, scheme_results):
        results, baseline = scheme_results
        normalized = switches_normalized_table(results, baseline)
        per_switch = energy_saved_per_switch_table(results, baseline)
        assert set(normalized) == set(results)
        assert set(per_switch) == set(results)

    def test_makeidle_increases_switches_on_heartbeat_traffic(self, scheme_results):
        # IM heartbeats arrive every 5-20 s, which is inside AT&T's 16.6 s
        # timeout: the status quo rarely demotes, MakeIdle demotes per
        # heartbeat, so its normalised switch count exceeds 1 (the effect
        # MakeActive is designed to counteract — Figures 10b/11b).
        results, baseline = scheme_results
        normalized = switches_normalized_table(results, baseline)
        assert normalized["makeidle"] > 1.0

    def test_makeactive_reduces_switches_vs_makeidle(self, scheme_results):
        results, baseline = scheme_results
        normalized = switches_normalized_table(results, baseline)
        assert (
            normalized["makeidle+makeactive_fixed"] <= normalized["makeidle"] + 1e-9
        )

    def test_values_are_non_negative(self, scheme_results):
        results, baseline = scheme_results
        for value in switches_normalized_table(results, baseline).values():
            assert value >= 0.0


class TestPeakPerWindow:
    def test_counts_events_inside_one_window(self):
        from repro.metrics.switches import peak_per_window

        assert peak_per_window([0.0, 10.0, 20.0, 200.0], 60.0) == 3

    def test_window_is_half_open(self):
        # Regression: two switches exactly window_s apart used to count in
        # the same window, inflating peak_switches_per_minute.
        from repro.metrics.switches import peak_per_window

        assert peak_per_window([0.0, 60.0], 60.0) == 1
        assert peak_per_window([0.0, 59.999], 60.0) == 2
        assert peak_per_window([0.0, 60.0, 120.0], 60.0) == 1
        assert peak_per_window([0.0, 59.0, 60.0], 60.0) == 2

    def test_empty_and_validation(self):
        from repro.metrics.switches import peak_per_window

        assert peak_per_window([], 60.0) == 0
        with pytest.raises(ValueError):
            peak_per_window([1.0], 0.0)

    def test_presorted_matches_unsorted(self):
        from repro.metrics.switches import peak_per_window

        times = [5.0, 1.0, 61.0, 2.0, 100.0]
        assert peak_per_window(times, 60.0) == peak_per_window(
            sorted(times), 60.0, presorted=True
        )
