"""Tests for the energy-savings metrics."""

from __future__ import annotations

import pytest

from repro.analysis import run_schemes
from repro.metrics import compare, energy_saved_percent, savings_table


@pytest.fixture
def scheme_results(att_profile, heartbeat_trace):
    results = run_schemes(heartbeat_trace, att_profile, window_size=30)
    baseline = results.pop("status_quo")
    return results, baseline


class TestEnergySavedPercent:
    def test_matches_result_fraction(self, scheme_results):
        results, baseline = scheme_results
        for result in results.values():
            assert energy_saved_percent(result, baseline) == pytest.approx(
                100.0 * result.energy_saved_fraction(baseline)
            )

    def test_heartbeat_savings_are_positive_for_adaptive_schemes(self, scheme_results):
        results, baseline = scheme_results
        assert energy_saved_percent(results["makeidle"], baseline) > 30.0
        assert energy_saved_percent(results["oracle"], baseline) > 30.0


class TestCompare:
    def test_report_fields(self, scheme_results):
        results, baseline = scheme_results
        report = compare(results["makeidle"], baseline)
        assert report.scheme == "makeidle"
        assert report.energy_j == pytest.approx(results["makeidle"].total_energy_j)
        assert report.baseline_energy_j == pytest.approx(baseline.total_energy_j)
        assert report.saved_j == pytest.approx(
            baseline.total_energy_j - results["makeidle"].total_energy_j
        )
        assert report.switches_normalized == pytest.approx(
            results["makeidle"].switch_count / baseline.switch_count
        )

    def test_saved_per_switch(self, scheme_results):
        results, baseline = scheme_results
        report = compare(results["oracle"], baseline)
        assert report.saved_per_switch_j == pytest.approx(
            results["oracle"].energy_saved_per_switch(baseline)
        )


class TestSavingsTable:
    def test_covers_all_schemes(self, scheme_results):
        results, baseline = scheme_results
        table = savings_table(results, baseline)
        assert set(table) == set(results)

    def test_oracle_at_least_as_good_as_fixed(self, scheme_results):
        results, baseline = scheme_results
        table = savings_table(results, baseline)
        assert table["oracle"].saved_percent >= table["fixed_4.5s"].saved_percent - 1.0
