"""Tests for the session-delay metrics (Figure 15, Table 3)."""

from __future__ import annotations

import pytest

from repro.core import CombinedPolicy, FixedDelayMakeActive, MakeIdlePolicy
from repro.metrics import DelayStats, delay_stats, delay_stats_for_result
from repro.sim import TraceSimulator


class TestDelayStats:
    def test_empty(self):
        stats = delay_stats([])
        assert stats == DelayStats.empty()
        assert stats.count == 0

    def test_basic_statistics(self):
        stats = delay_stats([1.0, 2.0, 3.0, 4.0, 10.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(4.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.maximum == pytest.approx(10.0)
        assert stats.p95 == pytest.approx(10.0)

    def test_even_count_median(self):
        assert delay_stats([1.0, 3.0]).median == pytest.approx(2.0)

    def test_delayed_fraction(self):
        stats = delay_stats([0.0, 0.0, 5.0, 5.0])
        assert stats.delayed_fraction == pytest.approx(0.5)

    def test_p95_with_many_samples(self):
        stats = delay_stats(list(range(100)))
        assert stats.p95 == pytest.approx(94.0)


class TestDelayStatsForResult:
    @pytest.fixture
    def makeactive_result(self, att_profile, email_trace):
        policy = CombinedPolicy(
            MakeIdlePolicy(window_size=50), FixedDelayMakeActive(delay_bound=6.0)
        )
        return TraceSimulator(att_profile).run(email_trace, policy)

    def test_all_sessions_vs_delayed_only(self, makeactive_result):
        all_stats = delay_stats_for_result(makeactive_result, only_delayed=False)
        delayed_stats = delay_stats_for_result(makeactive_result, only_delayed=True)
        assert delayed_stats.count <= all_stats.count
        if delayed_stats.count:
            assert delayed_stats.mean >= all_stats.mean

    def test_delays_bounded_by_fixed_bound(self, makeactive_result):
        stats = delay_stats_for_result(makeactive_result, only_delayed=True)
        assert stats.maximum <= 6.0 + 1e-6

    def test_fixed_bound_pushes_sessions_to_the_bound(self, makeactive_result):
        # Section 5.2's complaint about the fixed bound: a large share of
        # bursts wait the full T_fix_delay.
        stats = delay_stats_for_result(makeactive_result, only_delayed=True)
        assert stats.count > 0
        assert stats.maximum == pytest.approx(6.0, abs=0.1)
