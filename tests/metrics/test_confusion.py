"""Tests for the false-switch / missed-switch metrics (Figure 12)."""

from __future__ import annotations

import pytest

from repro.core import FixedTimerPolicy, MakeIdlePolicy, OraclePolicy
from repro.energy import TailEnergyModel
from repro.metrics import ConfusionCounts, confusion_for_result, confusion_from_decisions
from repro.sim import TraceSimulator
from repro.sim.results import GapDecision


def decision(gap, switched):
    return GapDecision(time=0.0, gap=gap, switched=switched)


class TestConfusionCounts:
    def test_rates(self):
        counts = ConfusionCounts(true_positive=6, true_negative=10,
                                 false_switch=2, missed_switch=4)
        assert counts.false_switch_rate == pytest.approx(2 / 12)
        assert counts.missed_switch_rate == pytest.approx(4 / 10)
        assert counts.false_switch_percent == pytest.approx(100 * 2 / 12)
        assert counts.total == 22

    def test_zero_denominators(self):
        counts = ConfusionCounts(0, 0, 0, 0)
        assert counts.false_switch_rate == 0.0
        assert counts.missed_switch_rate == 0.0


class TestConfusionFromDecisions:
    def test_perfect_agreement(self):
        threshold = 1.0
        decisions = [decision(0.5, False), decision(2.0, True), decision(3.0, True)]
        counts = confusion_from_decisions(decisions, threshold)
        assert counts.false_switch == 0
        assert counts.missed_switch == 0
        assert counts.true_positive == 2
        assert counts.true_negative == 1

    def test_false_switch_counted(self):
        counts = confusion_from_decisions([decision(0.5, True)], 1.0)
        assert counts.false_switch == 1

    def test_missed_switch_counted(self):
        counts = confusion_from_decisions([decision(5.0, False)], 1.0)
        assert counts.missed_switch == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            confusion_from_decisions([], -0.1)

    def test_empty_decisions(self):
        counts = confusion_from_decisions([], 1.0)
        assert counts.total == 0


class TestConfusionOnSimulations:
    def test_oracle_has_zero_error(self, att_profile, heartbeat_trace):
        threshold = TailEnergyModel(att_profile).t_threshold
        result = TraceSimulator(att_profile).run(heartbeat_trace, OraclePolicy())
        counts = confusion_for_result(result, threshold)
        assert counts.false_switch == 0
        assert counts.missed_switch == 0

    def test_makeidle_beats_fixed_timer_on_missed_switches(self, att_profile):
        # Gaps of ~3 s sit between t_threshold (≈1.2 s) and the 4.5-second
        # timer: the Oracle switches on every one of them, the fixed timer on
        # none (100 % missed switches), and MakeIdle learns to switch
        # (Figure 12's qualitative message).
        from repro.traces import generate_periodic_trace

        trace = generate_periodic_trace(period=3.0, duration=900.0,
                                        burst_packets=2, seed=11)
        threshold = TailEnergyModel(att_profile).t_threshold
        simulator = TraceSimulator(att_profile)
        fixed = confusion_for_result(
            simulator.run(trace, FixedTimerPolicy(4.5)), threshold
        )
        makeidle = confusion_for_result(
            simulator.run(trace, MakeIdlePolicy(window_size=100)), threshold
        )
        assert fixed.missed_switch_rate > 0.9
        assert makeidle.missed_switch_rate < fixed.missed_switch_rate

    def test_rates_are_percent_compatible(self, att_profile, heartbeat_trace):
        threshold = TailEnergyModel(att_profile).t_threshold
        result = TraceSimulator(att_profile).run(heartbeat_trace, FixedTimerPolicy(4.5))
        counts = confusion_for_result(result, threshold)
        assert 0.0 <= counts.false_switch_percent <= 100.0
        assert 0.0 <= counts.missed_switch_percent <= 100.0
