"""The streaming learning contract (DESIGN.md §6).

Learning policies are first-class kernel citizens: per-UE learner state is
fresh per device and updated in-kernel at release time, so a learning cell
must (a) shard byte-identically at any K under the PR 3 merge contract,
(b) give each device exactly the result it would get running alone, and
(c) pair every :class:`LearningRecord` with the ``activation_delay`` call
that opened its buffer window — never a stale proposal.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.cells import CellRunSpec, DormancySpec, cell, execute_cell
from repro.api.spec import PolicySpec
from repro.basestation import AcceptAllDormancy, CellSimulator, DeviceSpec
from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.core.controller import build_scheme
from repro.core.makeactive import LearningMakeActive
from repro.learning.predictors import (
    DecayedHistogramPredictor,
    PredictiveMakeIdlePolicy,
    SlidingWindowPredictor,
)
from repro.traces.streaming import stream_application_packets

#: Every learning scheme the tournament sweeps: per-UE learner state, no
#: trace-preparation requirement, streaming-safe.
LEARNING_SCHEMES = (
    "makeidle+makeactive_learn",
    "makeidle_hist",
    "makeidle_rate",
)


def _cell_spec(scheme: str, devices: int = 7, shards: int = 1) -> CellRunSpec:
    return CellRunSpec(
        cell=cell(devices, apps=("im", "email"), duration=400.0),
        carrier="att_hspa",
        policy=PolicySpec(scheme=scheme, window_size=30),
        dormancy=DormancySpec(scheme="accept_all"),
        shards=shards,
    )


class TestShardByteIdentity:
    """Learning schemes obey the PR 3 merge contract at any K."""

    @pytest.mark.parametrize("scheme", LEARNING_SCHEMES)
    @pytest.mark.parametrize("shards", [1, 3])
    def test_sharded_matches_single_process(self, scheme, shards):
        single = execute_cell(_cell_spec(scheme))
        merged = execute_cell(_cell_spec(scheme), shards=shards)
        # Per-device records — including the learn_* columns — are
        # byte-identical: learner state never crosses a shard boundary.
        assert merged.devices == single.devices
        assert merged.signaling == single.signaling
        assert merged.duration_s == single.duration_s
        assert merged.switch_times == single.switch_times
        assert merged.peak_switches_per_minute == single.peak_switches_per_minute
        # Peak active devices: exact at K=1, an upper bound beyond.
        if shards == 1:
            assert merged.peak_active_devices == single.peak_active_devices
        else:
            assert merged.peak_active_devices >= single.peak_active_devices

    def test_learning_columns_survive_the_merge(self):
        single = execute_cell(_cell_spec("makeidle+makeactive_learn"))
        merged = execute_cell(_cell_spec("makeidle+makeactive_learn"), shards=3)
        summary = single.learning_summary()
        # Not every device buffers a release in 400 s, but most do — and
        # the merge must reproduce the summary exactly.
        assert 0 < summary["learning_devices"] <= len(single.devices)
        assert summary["learn_iterations"] > 0
        assert merged.learning_summary() == summary


def _learning_device(device_id: int, *, seed: int, duration: float = 400.0):
    return DeviceSpec(
        device_id=device_id,
        trace=stream_application_packets(
            "im", duration=duration, seed=seed, chunk_s=100.0
        ),
        policy=build_scheme("makeidle+makeactive_learn", window_size=30),
    )


class TestPerUeIsolation:
    def test_two_device_cell_matches_two_single_ue_runs(self, att_profile):
        """Each device learns alone: a 2-UE cell equals two 1-UE cells.

        The one influence co-resident devices legitimately have on a
        record is the *global* cell end (every timeline idles until the
        last device goes quiet), so the lone run is compared with that
        duration drift factored out of the idle accounting; every other
        field — learner state above all — must be bit-identical.
        """
        together = CellSimulator(att_profile, AcceptAllDormancy()).run(
            [_learning_device(0, seed=1000), _learning_device(1, seed=2000)]
        )
        alone = {}
        for device_id, seed in ((0, 1000), (1, 2000)):
            result = CellSimulator(att_profile, AcceptAllDormancy()).run(
                [_learning_device(device_id, seed=seed)]
            )
            (record,) = tuple(result.devices)
            alone[device_id] = (record, result.duration_s)
        assert att_profile.power_idle_mw == 0.0  # so idle_j carries no drift
        for record in together.devices:
            lone, lone_duration = alone[record.device_id]
            # Everything outside the energy breakdown is bit-identical —
            # including the learn_* columns.
            assert dataclasses.replace(record, breakdown=lone.breakdown) == lone
            drift = together.duration_s - lone_duration
            for field in dataclasses.fields(record.breakdown):
                joint_value = getattr(record.breakdown, field.name)
                lone_value = getattr(lone.breakdown, field.name)
                if field.name == "idle_time_s":
                    assert joint_value == pytest.approx(
                        lone_value + drift, rel=1e-9
                    )
                else:
                    assert joint_value == lone_value

    def test_shared_stateful_policy_instance_is_rejected(self, att_profile):
        shared = build_scheme("makeidle+makeactive_learn", window_size=30)
        devices = [
            DeviceSpec(
                device_id=i,
                trace=stream_application_packets(
                    "im", duration=100.0, seed=1000 + i, chunk_s=50.0
                ),
                policy=shared,
            )
            for i in range(2)
        ]
        simulator = CellSimulator(att_profile, AcceptAllDormancy())
        with pytest.raises(ValueError, match="share one .* instance"):
            simulator.run(devices)

    def test_stateless_policies_may_be_shared(self, att_profile):
        # StatusQuoPolicy overrides neither observe_packet nor on_release:
        # sharing one instance across devices is harmless and allowed.
        shared = StatusQuoPolicy()
        devices = [
            DeviceSpec(
                device_id=i,
                trace=stream_application_packets(
                    "im", duration=100.0, seed=1000 + i, chunk_s=50.0
                ),
                policy=shared,
            )
            for i in range(2)
        ]
        result = CellSimulator(att_profile, AcceptAllDormancy()).run(devices)
        assert len(result.devices) == 2

    def test_build_scheme_returns_fresh_learners(self):
        a = build_scheme("makeidle+makeactive_learn")
        b = build_scheme("makeidle+makeactive_learn")
        assert a is not b
        assert a.learning_records() == ()


class TestBindProfile:
    """Profile-only preparation: streaming runs never materialise a trace."""

    def test_predictive_makeidle_runs_after_bind_profile(self, att_profile):
        policy = PredictiveMakeIdlePolicy(SlidingWindowPredictor(window_size=10))
        with pytest.raises(RuntimeError):
            policy.dormancy_wait(0.0)
        policy.bind_profile(att_profile)
        policy.reset()
        wait = policy.dormancy_wait(0.0)  # no RuntimeError once bound
        assert wait is None or wait >= 0.0

    def test_predictive_schemes_do_not_require_a_trace(self):
        for scheme in ("makeidle_hist", "makeidle_rate"):
            assert build_scheme(scheme).requires_trace is False

    def test_default_bind_profile_forwards_to_prepare(self, att_profile):
        # Policies that never look at the trace in prepare() get streaming
        # support for free through the base-class forwarding.
        policy = MakeIdlePolicy(window_size=10)
        policy.bind_profile(att_profile)
        policy.reset()
        wait = policy.dormancy_wait(0.0)
        assert wait is None or wait >= 0.0


class TestRecordDecisionPairing:
    """LearningRecord.delay_used pairs with *its* activation_delay call."""

    def test_release_consumes_the_pending_proposal(self):
        policy = LearningMakeActive()
        proposed = policy.activation_delay(10.0)
        policy.on_release(20.0, [10.0, 12.0])
        (record,) = policy.learning_records()
        assert record.delay_used == proposed
        assert record.buffered_sessions == 2

    def test_unconsulted_release_does_not_reuse_a_stale_proposal(self):
        policy = LearningMakeActive()
        proposed = policy.activation_delay(10.0)
        policy.on_release(20.0, [10.0])  # consumes the proposal
        # A second release the learner was never asked about (e.g. the
        # radio was already active) must record the realised delay, not
        # the stale — already consumed — proposal.
        policy.on_release(100.0, [97.5])
        first, second = policy.learning_records()
        assert first.delay_used == proposed
        assert second.delay_used == pytest.approx(2.5)
        assert second.delay_used != proposed

    def test_reset_clears_pending_and_history(self):
        policy = LearningMakeActive()
        policy.activation_delay(10.0)
        policy.reset()
        assert policy.learning_records() == ()
        policy.on_release(20.0, [15.0])  # pending was cleared by reset
        (record,) = policy.learning_records()
        assert record.delay_used == pytest.approx(5.0)

    def test_empty_release_records_nothing(self):
        policy = LearningMakeActive()
        policy.on_release(20.0, [])
        assert policy.learning_records() == ()

    def test_records_feed_the_device_columns(self, att_profile):
        result = CellSimulator(att_profile, AcceptAllDormancy()).run(
            [_learning_device(0, seed=1000)]
        )
        (record,) = tuple(result.devices)
        assert record.learn_iterations > 0
        assert record.learn_delay_first_s > 0.0
        assert record.learn_delay_final_s > 0.0


class TestHistogramPredictorInCell:
    def test_overflow_gap_keeps_cell_deterministic(self):
        # Two identical runs of the histogram scheme are byte-identical —
        # the overflow bin is part of per-UE state like any other.
        a = execute_cell(_cell_spec("makeidle_hist", devices=3))
        b = execute_cell(_cell_spec("makeidle_hist", devices=3))
        assert a.devices == b.devices

    def test_overflow_bin_is_distinct_state(self):
        predictor = DecayedHistogramPredictor(min_gap=0.1, max_gap=10.0)
        predictor.observe(predictor.bin_edges[-1])  # last in-range bin
        predictor.observe(1e4)  # overflow
        gaps, _ = predictor.weighted_gaps()
        assert len(gaps) == 2
