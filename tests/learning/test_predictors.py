"""Tests for the alternative inter-arrival predictors and the ablation policy."""

import pytest

from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.learning.predictors import (
    DecayedHistogramPredictor,
    ExponentialRatePredictor,
    PredictiveMakeIdlePolicy,
    SlidingWindowPredictor,
)
from repro.sim import TraceSimulator


class TestSlidingWindowPredictor:
    def test_window_evicts_oldest(self):
        predictor = SlidingWindowPredictor(window_size=3)
        for gap in (1.0, 2.0, 3.0, 4.0):
            predictor.observe(gap)
        gaps, weights = predictor.weighted_gaps()
        assert gaps == (2.0, 3.0, 4.0)
        assert weights == (1.0, 1.0, 1.0)
        assert predictor.sample_count == 4

    def test_reset_clears_state(self):
        predictor = SlidingWindowPredictor()
        predictor.observe(1.0)
        predictor.reset()
        assert predictor.sample_count == 0
        assert predictor.weighted_gaps() == ((), ())

    def test_rejects_negative_gap_and_tiny_window(self):
        with pytest.raises(ValueError):
            SlidingWindowPredictor(window_size=1)
        with pytest.raises(ValueError):
            SlidingWindowPredictor().observe(-1.0)


class TestDecayedHistogramPredictor:
    def test_mass_concentrates_on_observed_bin(self):
        predictor = DecayedHistogramPredictor()
        for _ in range(50):
            predictor.observe(5.0)
        gaps, weights = predictor.weighted_gaps()
        best = gaps[weights.index(max(weights))]
        assert best == pytest.approx(5.0, rel=0.5)

    def test_old_mass_decays(self):
        predictor = DecayedHistogramPredictor(decay=0.5)
        predictor.observe(1.0)
        for _ in range(20):
            predictor.observe(100.0)
        gaps, weights = predictor.weighted_gaps()
        weight_of = dict(zip(gaps, weights))
        near_one = sum(w for g, w in weight_of.items() if g < 5.0)
        near_hundred = sum(w for g, w in weight_of.items() if g > 50.0)
        assert near_hundred > 10 * max(near_one, 1e-12)

    def test_underflow_and_overflow_bins(self):
        predictor = DecayedHistogramPredictor(min_gap=0.1, max_gap=10.0)
        predictor.observe(0.0001)
        predictor.observe(500.0)
        gaps, weights = predictor.weighted_gaps()
        assert min(gaps) < 0.1
        # The overflow representative extends the log grid one geometric
        # step beyond the last edge, so it must lie strictly past max_gap.
        assert max(gaps) > 10.0
        assert len(weights) == 2

    def test_overflow_does_not_pollute_last_bin(self):
        # Regression: gaps past max_gap used to share a mass slot with the
        # last in-range bin (and report max_gap as its representative).
        predictor = DecayedHistogramPredictor(
            decay=0.5, min_gap=0.1, max_gap=10.0
        )
        edges = predictor.bin_edges
        last_in_range = edges[-1]  # == max_gap
        predictor.observe(last_in_range)  # lands in the last real bin
        predictor.observe(500.0)  # overflow
        gaps, weights = predictor.weighted_gaps()
        assert len(gaps) == 2
        in_range, overflow = sorted(gaps)
        # Last in-range bin: geometric mean of its edges, <= max_gap.
        assert edges[-2] < in_range <= 10.0
        assert overflow > 10.0
        # Distinct mass slots: one decayed observation each.
        weight_of = dict(zip(gaps, weights))
        assert weight_of[in_range] == pytest.approx(0.5)
        assert weight_of[overflow] == pytest.approx(1.0)

    def test_bisect_index_matches_linear_scan(self):
        # The bisect-based _bin_index must agree with the O(bins) linear
        # scan it replaced on every in-range gap, including exact edges.
        predictor = DecayedHistogramPredictor(min_gap=0.1, max_gap=10.0)
        edges = predictor.bin_edges

        def linear_index(gap):
            if gap < 0.1:
                return 0
            for index, edge in enumerate(edges):
                if gap <= edge:
                    return index + 1
            return len(edges) + 1  # the (new) overflow slot

        probes = [0.0, 0.05, 0.1, 0.100001, 1.0, 9.999, 10.0, 10.1, 1e6]
        probes += list(edges) + [e * 1.0000001 for e in edges]
        for gap in probes:
            assert predictor._bin_index(gap) == linear_index(gap), gap

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecayedHistogramPredictor(decay=1.0)
        with pytest.raises(ValueError):
            DecayedHistogramPredictor(min_gap=1.0, max_gap=0.5)
        with pytest.raises(ValueError):
            DecayedHistogramPredictor(bins_per_decade=0)


class TestExponentialRatePredictor:
    def test_tracks_mean_gap(self):
        predictor = ExponentialRatePredictor(smoothing=0.5)
        predictor.observe(10.0)
        predictor.observe(20.0)
        assert predictor.mean_gap == pytest.approx(15.0)

    def test_quantile_grid_mean_matches(self):
        predictor = ExponentialRatePredictor()
        for _ in range(10):
            predictor.observe(8.0)
        gaps, weights = predictor.weighted_gaps()
        assert len(gaps) == 16
        mean = sum(g * w for g, w in zip(gaps, weights)) / sum(weights)
        # The quantile grid of an Exp(mean=8) has mean close to 8.
        assert mean == pytest.approx(8.0, rel=0.25)

    def test_no_observations_yields_empty(self):
        assert ExponentialRatePredictor().weighted_gaps() == ((), ())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExponentialRatePredictor(smoothing=0.0)
        with pytest.raises(ValueError):
            ExponentialRatePredictor(quantile_points=2)


class TestPredictiveMakeIdlePolicy:
    @pytest.mark.parametrize(
        "predictor_factory",
        [
            lambda: SlidingWindowPredictor(window_size=100),
            lambda: DecayedHistogramPredictor(),
            lambda: ExponentialRatePredictor(),
        ],
    )
    def test_each_predictor_saves_energy_on_heartbeats(
        self, att_profile, im_trace, predictor_factory
    ):
        simulator = TraceSimulator(att_profile)
        baseline = simulator.run(im_trace, StatusQuoPolicy())
        policy = PredictiveMakeIdlePolicy(predictor_factory())
        result = simulator.run(im_trace, policy)
        # IM heartbeat gaps are far above t_threshold, so every predictor
        # should find large savings once warmed up.
        assert result.energy_saved_fraction(baseline) > 0.2

    def test_sliding_window_variant_tracks_reference_makeidle(
        self, att_profile, im_trace
    ):
        simulator = TraceSimulator(att_profile)
        reference = simulator.run(im_trace, MakeIdlePolicy(window_size=100))
        variant = simulator.run(
            im_trace,
            PredictiveMakeIdlePolicy(SlidingWindowPredictor(window_size=100)),
        )
        baseline = simulator.run(im_trace, StatusQuoPolicy())
        ref_saving = reference.energy_saved_fraction(baseline)
        var_saving = variant.energy_saved_fraction(baseline)
        assert var_saving == pytest.approx(ref_saving, abs=0.15)

    def test_cold_policy_behaves_like_status_quo(self, att_profile, simple_trace):
        simulator = TraceSimulator(att_profile)
        policy = PredictiveMakeIdlePolicy(
            SlidingWindowPredictor(window_size=10), min_samples=100
        )
        result = simulator.run(simple_trace, policy)
        baseline = simulator.run(simple_trace, StatusQuoPolicy())
        assert result.total_energy_j == pytest.approx(baseline.total_energy_j)

    def test_requires_prepare(self):
        policy = PredictiveMakeIdlePolicy(SlidingWindowPredictor())
        with pytest.raises(RuntimeError):
            policy.dormancy_wait(0.0)

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            PredictiveMakeIdlePolicy(SlidingWindowPredictor(), candidate_count=1)
        with pytest.raises(ValueError):
            PredictiveMakeIdlePolicy(SlidingWindowPredictor(), min_samples=0)

    def test_name_mentions_predictor(self):
        policy = PredictiveMakeIdlePolicy(DecayedHistogramPredictor())
        assert "DecayedHistogramPredictor" in policy.name
