"""Tests for the Learn-α two-layer learner."""

from __future__ import annotations

import pytest

from repro.learning import LearnAlpha, default_alpha_grid


class TestDefaultAlphaGrid:
    def test_grid_size(self):
        assert len(default_alpha_grid(8)) == 8
        assert len(default_alpha_grid(1)) == 1

    def test_grid_span(self):
        grid = default_alpha_grid(6)
        assert grid[0] == pytest.approx(1e-3)
        assert grid[-1] == pytest.approx(0.5)
        assert list(grid) == sorted(grid)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            default_alpha_grid(0)


class TestLearnAlpha:
    def test_requires_expert_values(self):
        with pytest.raises(ValueError):
            LearnAlpha([])

    def test_requires_valid_alphas(self):
        with pytest.raises(ValueError):
            LearnAlpha([1.0], alphas=[1.5])
        with pytest.raises(ValueError):
            LearnAlpha([1.0], alphas=[])

    def test_initial_prediction_is_mean(self):
        learner = LearnAlpha([2.0, 4.0, 6.0])
        assert learner.predict() == pytest.approx(4.0)

    def test_alpha_weights_normalised(self):
        learner = LearnAlpha([1.0, 2.0], alphas=[0.01, 0.1, 0.5])
        for _ in range(10):
            learner.update([0.2, 0.9])
            assert sum(learner.alpha_weights) == pytest.approx(1.0)

    def test_converges_to_best_expert(self):
        learner = LearnAlpha([1.0, 5.0, 9.0])
        for _ in range(40):
            learner.update([1.0, 0.0, 1.0])
        assert learner.predict() == pytest.approx(5.0, abs=1.5)

    def test_update_length_mismatch(self):
        learner = LearnAlpha([1.0, 2.0])
        with pytest.raises(ValueError):
            learner.update([0.1, 0.2, 0.3])

    def test_effective_alpha_tracks_switchiness(self):
        # Rapidly alternating best expert favours high-α sub-learners.
        volatile = LearnAlpha([1.0, 10.0], alphas=[0.001, 0.4])
        for step in range(60):
            losses = [0.0, 1.0] if step % 2 == 0 else [1.0, 0.0]
            volatile.update(losses)
        stationary = LearnAlpha([1.0, 10.0], alphas=[0.001, 0.4])
        for _ in range(60):
            stationary.update([0.0, 1.0])
        assert volatile.effective_alpha > stationary.effective_alpha

    def test_iterations_counter(self):
        learner = LearnAlpha([1.0, 2.0])
        learner.update([0.1, 0.2])
        learner.update([0.1, 0.2])
        assert learner.iterations == 2

    def test_reset(self):
        learner = LearnAlpha([1.0, 2.0], alphas=[0.1, 0.3])
        learner.update([0.0, 5.0])
        learner.reset()
        assert learner.iterations == 0
        assert learner.alpha_weights == (0.5, 0.5)
        assert learner.predict() == pytest.approx(1.5)

    def test_prediction_stays_within_expert_range(self):
        learner = LearnAlpha([1.0, 2.0, 3.0, 4.0])
        for step in range(50):
            losses = [(step * 7 + i) % 3 * 0.4 for i in range(4)]
            value = learner.update(losses)
            assert 1.0 <= value <= 4.0
