"""Tests for the MakeActive loss function."""

from __future__ import annotations

import pytest

from repro.learning import DEFAULT_GAMMA, MakeActiveLoss, aggregate_delay


class TestAggregateDelay:
    def test_single_session(self):
        assert aggregate_delay(5.0, [0.0]) == pytest.approx(5.0)

    def test_multiple_sessions(self):
        # Sessions arriving at offsets 0, 2 and 4 released at T=5 wait
        # 5 + 3 + 1 = 9 seconds in total.
        assert aggregate_delay(5.0, [0.0, 2.0, 4.0]) == pytest.approx(9.0)

    def test_sessions_after_bound_ignored(self):
        assert aggregate_delay(3.0, [0.0, 10.0]) == pytest.approx(3.0)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            aggregate_delay(-1.0, [0.0])

    def test_empty_offsets(self):
        assert aggregate_delay(4.0, []) == 0.0


class TestMakeActiveLoss:
    def test_default_gamma_matches_paper(self):
        assert DEFAULT_GAMMA == pytest.approx(0.008)
        assert MakeActiveLoss().gamma == pytest.approx(0.008)

    def test_gamma_must_be_positive(self):
        with pytest.raises(ValueError):
            MakeActiveLoss(gamma=0.0)

    def test_loss_formula(self):
        loss = MakeActiveLoss(gamma=0.01)
        # Delay(T=5) over offsets [0, 2] is 5 + 3 = 8; b = 2.
        assert loss(5.0, [0.0, 2.0]) == pytest.approx(0.01 * 8.0 + 0.5)

    def test_no_buffered_sessions_gets_worst_case(self):
        loss = MakeActiveLoss(gamma=0.01)
        assert loss(5.0, [10.0]) == pytest.approx(0.01 * 5.0 + 1.0)

    def test_batching_more_sessions_reduces_second_term(self):
        loss = MakeActiveLoss()
        few = loss(10.0, [0.0])
        many = loss(10.0, [0.0, 9.0, 9.5, 9.9])
        # With γ = 0.008 the 1/b reduction dominates the extra delay here.
        assert many < few

    def test_longer_delay_costs_more_when_batching_is_equal(self):
        loss = MakeActiveLoss()
        assert loss(10.0, [0.0, 1.0]) > loss(5.0, [0.0, 1.0])
