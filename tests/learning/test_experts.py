"""Tests for the Fixed-Share bank of experts."""

from __future__ import annotations

import pytest

from repro.learning import FixedShareExperts, switching_kernel


class TestSwitchingKernel:
    def test_rows_sum_to_one(self):
        kernel = switching_kernel(5, 0.3)
        for row in kernel:
            assert sum(row) == pytest.approx(1.0)

    def test_diagonal_value(self):
        kernel = switching_kernel(4, 0.2)
        assert kernel[0][0] == pytest.approx(0.8)
        assert kernel[0][1] == pytest.approx(0.2 / 3)

    def test_alpha_zero_is_identity(self):
        kernel = switching_kernel(3, 0.0)
        assert kernel == [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]

    def test_single_expert(self):
        assert switching_kernel(1, 0.9) == [[1.0]]

    def test_validation(self):
        with pytest.raises(ValueError):
            switching_kernel(0, 0.1)
        with pytest.raises(ValueError):
            switching_kernel(3, 1.5)


class TestFixedShareExperts:
    def test_requires_experts(self):
        with pytest.raises(ValueError):
            FixedShareExperts([])

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            FixedShareExperts([1.0], alpha=-0.1)

    def test_initial_prediction_is_mean(self):
        learner = FixedShareExperts([1.0, 2.0, 3.0])
        assert learner.predict() == pytest.approx(2.0)

    def test_weights_stay_normalised(self):
        learner = FixedShareExperts([1.0, 2.0, 3.0], alpha=0.2)
        for _ in range(25):
            learner.update([0.5, 0.1, 0.9])
            assert sum(learner.weights) == pytest.approx(1.0)

    def test_low_loss_expert_gains_weight(self):
        learner = FixedShareExperts([1.0, 5.0, 10.0], alpha=0.05)
        for _ in range(30):
            learner.update([1.0, 0.0, 1.0])
        assert learner.best_expert_index == 1
        assert learner.predict() == pytest.approx(5.0, abs=1.5)

    def test_update_length_mismatch(self):
        learner = FixedShareExperts([1.0, 2.0])
        with pytest.raises(ValueError):
            learner.update([0.1])

    def test_negative_loss_rejected(self):
        learner = FixedShareExperts([1.0, 2.0])
        with pytest.raises(ValueError):
            learner.update([-0.5, 0.1])

    def test_fixed_share_recovers_after_switch(self):
        # The best expert changes halfway through; with a non-zero switching
        # rate the learner must follow the new best expert.
        learner = FixedShareExperts([1.0, 10.0], alpha=0.1)
        for _ in range(20):
            learner.update([0.0, 1.0])
        assert learner.predict() < 3.5
        assert learner.best_expert_index == 0
        for _ in range(20):
            learner.update([1.0, 0.0])
        assert learner.predict() > 6.5
        assert learner.best_expert_index == 1

    def test_static_share_is_slower_to_recover_than_fixed_share(self):
        static = FixedShareExperts([1.0, 10.0], alpha=0.0)
        switching = FixedShareExperts([1.0, 10.0], alpha=0.2)
        for learner in (static, switching):
            for _ in range(40):
                learner.update([0.0, 2.0])
            for _ in range(3):
                learner.update([2.0, 0.0])
        assert switching.predict() > static.predict()

    def test_mix_loss_bounds(self):
        learner = FixedShareExperts([1.0, 2.0, 3.0])
        losses = [0.3, 0.7, 1.2]
        mix = learner.loss_of_mixture(losses)
        assert min(losses) <= mix <= max(losses)

    def test_cumulative_loss_and_iterations(self):
        learner = FixedShareExperts([1.0, 2.0])
        learner.update([0.5, 0.5])
        learner.update([0.2, 0.8])
        assert learner.iterations == 2
        assert learner.cumulative_loss > 0.0

    def test_reset(self):
        learner = FixedShareExperts([1.0, 2.0], alpha=0.1)
        learner.update([0.0, 5.0])
        learner.reset()
        assert learner.iterations == 0
        assert learner.weights == (0.5, 0.5)

    def test_huge_losses_do_not_break_normalisation(self):
        learner = FixedShareExperts([1.0, 2.0])
        learner.update([1e6, 1e6])
        assert sum(learner.weights) == pytest.approx(1.0)
