"""Figure 17: energy saved for the four carriers' RRC parameters.

The same user traces are replayed against the measured RRC profiles of
T-Mobile 3G, AT&T HSPA+, Verizon 3G and Verizon LTE.  MakeIdle+MakeActive
outperforms the 4.5-second tail on every carrier; the paper's headline
maxima are 67 % (MakeIdle, Verizon LTE) and 75 % (with MakeActive,
Verizon 3G).
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import carrier_comparison, format_grouped_bars
from repro.core import SCHEME_ORDER
from repro.rrc import CARRIER_ORDER

HOURS_PER_DAY = 0.4
USERS = (1, 2, 3)


def test_fig17_carriers_energy(benchmark):
    rows = run_once(
        benchmark,
        carrier_comparison,
        carriers=CARRIER_ORDER,
        population="verizon_3g",
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        window_size=100,
        users=USERS,
    )

    groups = {
        carrier: {s: rows[carrier].saved_percent[s] for s in SCHEME_ORDER}
        for carrier in CARRIER_ORDER
    }
    print_figure(
        "Figure 17 — energy saved per carrier (%, aggregated over users)",
        format_grouped_bars(groups, unit="%"),
    )

    for carrier in CARRIER_ORDER:
        saved = rows[carrier].saved_percent
        # MakeIdle+MakeActive beats the 4.5-second tail on every carrier.
        assert saved["makeidle+makeactive_learn"] > saved["fixed_4.5s"]
        assert saved["makeidle+makeactive_fixed"] > saved["fixed_4.5s"]
        # MakeIdle alone already yields large savings on every carrier.
        assert saved["makeidle"] > 35.0
        # And never exceeds the Oracle by more than the MakeActive batching
        # bonus would explain (MakeIdle itself delays nothing).
        assert saved["makeidle"] <= saved["oracle"] + 2.0
