"""Figure 17: energy saved for the four carriers' RRC parameters.

The same user traces are replayed against the measured RRC profiles of
T-Mobile 3G, AT&T HSPA+, Verizon 3G and Verizon LTE.  MakeIdle+MakeActive
outperforms the 4.5-second tail on every carrier; the paper's headline
maxima are 67 % (MakeIdle, Verizon LTE) and 75 % (with MakeActive,
Verizon 3G).

Ported to the unified experiment API: the cross-carrier sweep is one
``repro.api`` plan declaration; each user trace is generated once and the
status quo simulated once per (user, carrier) — the cache counters on the
run set prove there is no duplicate work.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_grouped_bars
from repro.api import SerialRunner, plan
from repro.core import SCHEME_ORDER
from repro.rrc import CARRIER_ORDER

HOURS_PER_DAY = 0.4
USERS = (1, 2, 3)


def test_fig17_carriers_energy(benchmark):
    sweep = (plan()
             .users("verizon_3g", USERS, hours_per_day=HOURS_PER_DAY, seed=0)
             .carriers(*CARRIER_ORDER)
             .policies("status_quo", *SCHEME_ORDER)
             .window_size(100))
    runs = run_once(benchmark, SerialRunner().run, sweep)

    # Energy-weighted aggregation over users, exactly as Section 6.5 does.
    groups = {}
    for carrier, cell in runs.group_by("carrier").items():
        baseline = sum(
            r.result.total_energy_j for r in cell.only(scheme="status_quo")
        )
        groups[carrier] = {
            s: 100.0 * (baseline - sum(
                r.result.total_energy_j for r in cell.only(scheme=s)
            )) / baseline
            for s in SCHEME_ORDER
        }
    print_figure(
        "Figure 17 — energy saved per carrier (%, aggregated over users)",
        format_grouped_bars(groups, unit="%"),
    )

    # Every grid cell was simulated exactly once: no duplicate status-quo
    # runs, no duplicate scheme runs.
    assert runs.cache_stats is not None
    assert runs.cache_stats.misses == len(runs)
    assert runs.cache_stats.hits == 0

    for carrier in CARRIER_ORDER:
        saved = groups[carrier]
        # MakeIdle+MakeActive beats the 4.5-second tail on every carrier.
        assert saved["makeidle+makeactive_learn"] > saved["fixed_4.5s"]
        assert saved["makeidle+makeactive_fixed"] > saved["fixed_4.5s"]
        # MakeIdle alone already yields large savings on every carrier.
        assert saved["makeidle"] > 35.0
        # And never exceeds the Oracle by more than the MakeActive batching
        # bonus would explain (MakeIdle itself delays nothing).
        assert saved["makeidle"] <= saved["oracle"] + 2.0
