"""Figure 10: per-user results in the Verizon 3G network.

Three panels: (a) energy saved per user, (b) number of state switches
normalised by the status quo, and (c) energy saved per state switch, for the
six Verizon 3G users.  MakeIdle's gains are substantial for every user and
MakeIdle+MakeActive keeps the switch count near the status quo.

Ported to the unified experiment API: the whole study is one
``repro.api`` plan (6 users x 1 carrier x 7 policies), and the three panels
are views over the resulting run set's per-cell savings reports.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_grouped_bars
from repro.api import SerialRunner, plan
from repro.core import SCHEME_ORDER

HOURS_PER_DAY = 0.5


def test_fig10_verizon3g_users(benchmark):
    study_plan = (plan()
                  .users("verizon_3g", hours_per_day=HOURS_PER_DAY, seed=0)
                  .carriers("verizon_3g")
                  .policies("status_quo", *SCHEME_ORDER)
                  .window_size(100))
    runs = run_once(benchmark, SerialRunner().run, study_plan)

    # One savings table per (user trace, carrier, seed) cell; re-key by user.
    reports = {
        trace.split(":")[-1]: table
        for (trace, _carrier, _seed), table in runs.savings().items()
    }

    savings = {
        user: {s: table[s].saved_percent for s in SCHEME_ORDER}
        for user, table in reports.items()
    }
    switches = {
        user: {s: table[s].switches_normalized for s in SCHEME_ORDER}
        for user, table in reports.items()
    }
    per_switch = {
        user: {s: table[s].saved_per_switch_j for s in SCHEME_ORDER}
        for user, table in reports.items()
    }
    print_figure(
        "Figure 10(a) — energy saved per user (%, Verizon 3G)",
        format_grouped_bars(savings, unit="%"),
    )
    print_figure(
        "Figure 10(b) — state switches normalised by status quo (Verizon 3G)",
        format_grouped_bars(switches, float_format="{:.2f}"),
    )
    print_figure(
        "Figure 10(c) — energy saved per state switch (J, Verizon 3G)",
        format_grouped_bars(per_switch, unit="J"),
    )

    for table in reports.values():
        # MakeIdle substantially beats the fixed 4.5 s tail for every user
        # and stays within reach of the Oracle.
        assert table["makeidle"].saved_percent > table["fixed_4.5s"].saved_percent
        assert table["makeidle"].saved_percent >= 0.7 * table["oracle"].saved_percent
        # MakeActive pulls the switch count back down towards the status quo.
        assert table["makeidle+makeactive_fixed"].switches_normalized <= (
            table["makeidle"].switches_normalized
        )
