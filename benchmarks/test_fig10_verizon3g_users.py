"""Figure 10: per-user results in the Verizon 3G network.

Three panels: (a) energy saved per user, (b) number of state switches
normalised by the status quo, and (c) energy saved per state switch, for the
six Verizon 3G users.  MakeIdle's gains are substantial for every user and
MakeIdle+MakeActive keeps the switch count near the status quo.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_grouped_bars, user_study
from repro.core import SCHEME_ORDER
from repro.rrc import get_profile

HOURS_PER_DAY = 0.5


def test_fig10_verizon3g_users(benchmark):
    profile = get_profile("verizon_3g")
    study = run_once(
        benchmark,
        user_study,
        "verizon_3g",
        profile,
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        window_size=100,
    )

    savings = {
        f"user{uid}": {s: outcome.savings[s].saved_percent for s in SCHEME_ORDER}
        for uid, outcome in study.items()
    }
    switches = {
        f"user{uid}": {s: outcome.savings[s].switches_normalized for s in SCHEME_ORDER}
        for uid, outcome in study.items()
    }
    per_switch = {
        f"user{uid}": {s: outcome.savings[s].saved_per_switch_j for s in SCHEME_ORDER}
        for uid, outcome in study.items()
    }
    print_figure(
        "Figure 10(a) — energy saved per user (%, Verizon 3G)",
        format_grouped_bars(savings, unit="%"),
    )
    print_figure(
        "Figure 10(b) — state switches normalised by status quo (Verizon 3G)",
        format_grouped_bars(switches, float_format="{:.2f}"),
    )
    print_figure(
        "Figure 10(c) — energy saved per state switch (J, Verizon 3G)",
        format_grouped_bars(per_switch, unit="J"),
    )

    for outcome in study.values():
        # MakeIdle substantially beats the fixed 4.5 s tail for every user
        # and stays within reach of the Oracle.
        assert outcome.savings["makeidle"].saved_percent > (
            outcome.savings["fixed_4.5s"].saved_percent
        )
        assert outcome.savings["makeidle"].saved_percent >= (
            0.7 * outcome.savings["oracle"].saved_percent
        )
        # MakeActive pulls the switch count back down towards the status quo.
        assert outcome.savings["makeidle+makeactive_fixed"].switches_normalized <= (
            outcome.savings["makeidle"].switches_normalized
        )
