"""Figure 11: per-user results in the Verizon LTE network.

Same three panels as Figure 10 (energy saved, switches normalised by the
status quo, energy saved per switch) for the three Verizon LTE users.  The
paper highlights that the "95 % IAT" baseline is erratic here — good for
some users, poor for others, and with a very large switch count when its
percentile collapses to a sub-second value.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_grouped_bars, user_study
from repro.core import SCHEME_ORDER
from repro.rrc import get_profile

HOURS_PER_DAY = 0.5


def test_fig11_verizonlte_users(benchmark):
    profile = get_profile("verizon_lte")
    study = run_once(
        benchmark,
        user_study,
        "verizon_lte",
        profile,
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        window_size=100,
    )

    savings = {
        f"user{uid}": {s: outcome.savings[s].saved_percent for s in SCHEME_ORDER}
        for uid, outcome in study.items()
    }
    switches = {
        f"user{uid}": {s: outcome.savings[s].switches_normalized for s in SCHEME_ORDER}
        for uid, outcome in study.items()
    }
    per_switch = {
        f"user{uid}": {s: outcome.savings[s].saved_per_switch_j for s in SCHEME_ORDER}
        for uid, outcome in study.items()
    }
    print_figure(
        "Figure 11(a) — energy saved per user (%, Verizon LTE)",
        format_grouped_bars(savings, unit="%"),
    )
    print_figure(
        "Figure 11(b) — state switches normalised by status quo (Verizon LTE)",
        format_grouped_bars(switches, float_format="{:.2f}"),
    )
    print_figure(
        "Figure 11(c) — energy saved per state switch (J, Verizon LTE)",
        format_grouped_bars(per_switch, unit="J"),
    )

    makeidle_savings = []
    for outcome in study.values():
        makeidle_savings.append(outcome.savings["makeidle"].saved_percent)
        # Every user benefits, and MakeIdle never does worse than the fixed
        # 4.5-second tail (the per-user magnitude varies — the paper makes
        # the same observation about the LTE users).
        assert outcome.savings["makeidle"].saved_percent > 5.0
        assert outcome.savings["makeidle"].saved_percent >= (
            outcome.savings["fixed_4.5s"].saved_percent - 1.0
        )
        assert outcome.savings["oracle"].saved_percent >= (
            outcome.savings["makeidle"].saved_percent - 2.0
        )
    # Most users see large double-digit savings.
    assert sorted(makeidle_savings)[len(makeidle_savings) // 2] > 40.0
