"""Future-work study (paper Section 8): fast dormancy seen from the base station.

Many devices running MakeIdle share one cell; the base station either grants
every dormancy request (the paper's assumption), rate-limits chatty devices,
or refuses requests once cell-wide signalling exceeds a budget.  The
benchmark reports total device energy and signalling load under each
network-side policy.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.basestation import (
    AcceptAllDormancy,
    CellSimulator,
    DeviceSpec,
    LoadAwareDormancy,
    RateLimitedDormancy,
    RejectAllDormancy,
)
from repro.core import MakeIdlePolicy
from repro.rrc import get_profile
from repro.traces import generate_application_trace

_DEVICE_COUNT = 6
_DURATION = 900.0


def _run_cell():
    profile = get_profile("att_hspa")
    apps = ("im", "email", "news", "im", "microblog", "email")
    devices = [
        DeviceSpec(
            device_id=index,
            trace=generate_application_trace(
                apps[index % len(apps)], duration=_DURATION, seed=index
            ),
            policy=MakeIdlePolicy(window_size=100),
        )
        for index in range(_DEVICE_COUNT)
    ]
    outcomes = {}
    for policy in (
        AcceptAllDormancy(),
        RateLimitedDormancy(min_interval_s=30.0),
        LoadAwareDormancy(max_switches_per_minute=40),
        RejectAllDormancy(),
    ):
        result = CellSimulator(profile, policy).run(devices)
        outcomes[policy.name] = result
    return outcomes


def test_basestation_policies(benchmark):
    outcomes = run_once(benchmark, _run_cell)

    rows = [
        [
            name,
            result.total_energy_j,
            result.total_switches,
            result.signaling.messages,
            result.dormancy_requests,
            100.0 * result.denial_rate,
        ]
        for name, result in outcomes.items()
    ]
    print_figure(
        f"Base-station dormancy policies — {_DEVICE_COUNT} devices, AT&T profile",
        format_table(
            [
                "network policy",
                "total energy (J)",
                "switches",
                "RRC messages",
                "dormancy requests",
                "denied %",
            ],
            rows,
        ),
    )

    accept = outcomes["accept_all"]
    reject = outcomes["reject_all"]
    # Granting dormancy saves device energy; refusing it costs energy but
    # eliminates dormancy-induced switches.
    assert accept.total_energy_j <= reject.total_energy_j
    assert accept.dormancy_denied == 0
    assert reject.dormancy_denied == reject.dormancy_requests
    # Intermediate policies sit between the two extremes in denial rate.
    limited = outcomes["rate_limited"]
    assert 0.0 <= limited.denial_rate <= 1.0
