"""Headline result (abstract / Section 6.2): per-carrier savings bands.

The abstract claims 51-66 % savings across the 3G carriers and 67 % on
Verizon LTE for MakeIdle alone, rising to 62-75 % (3G) and 71 % (LTE) when
MakeActive's few-second delays are acceptable.  On synthetic workloads the
absolute percentages differ, but the structure must hold: large double-digit
savings on every carrier, and adding MakeActive never reduces them.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table, headline_savings
from repro.rrc import CARRIER_ORDER, get_profile

HOURS_PER_DAY = 0.4
USERS = (1, 2, 3, 4)


def test_headline_savings(benchmark):
    headline = run_once(
        benchmark,
        headline_savings,
        carriers=CARRIER_ORDER,
        population="verizon_3g",
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        users=USERS,
    )

    rows = [
        [
            get_profile(carrier).name,
            headline[carrier]["makeidle"],
            headline[carrier]["makeidle+makeactive"],
        ]
        for carrier in CARRIER_ORDER
    ]
    print_figure(
        "Headline — energy saved vs status quo (%, MakeIdle / +MakeActive)",
        format_table(["carrier", "MakeIdle %", "MakeIdle+MakeActive %"], rows),
    )

    for carrier in CARRIER_ORDER:
        makeidle = headline[carrier]["makeidle"]
        combined = headline[carrier]["makeidle+makeactive"]
        # Paper band: 51-67 % for MakeIdle, 62-75 % with MakeActive.  Allow a
        # generous reproduction band around it.
        assert 40.0 <= makeidle <= 95.0
        assert combined >= makeidle - 3.0
