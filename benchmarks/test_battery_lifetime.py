"""Conclusion (Section 8): translate energy savings into battery lifetime.

The paper's back-of-envelope estimate is that saving 66 % of the radio
energy corresponds to roughly 4.8 of the 7.3 hours of lifetime lost to the
3G radio.  This benchmark computes the same projection from simulated
savings, using both the paper's method and the explicit battery model.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.energy import NEXUS_S_BATTERY, lifetime_extension, paper_lifetime_estimate
from repro.rrc import get_profile
from repro.sim import TraceSimulator
from repro.traces import user_trace


def _project():
    profile = get_profile("tmobile_3g")  # the Nexus S population in the paper
    trace = user_trace("tmobile_3g", 1, hours_per_day=0.5, seed=2)
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())
    makeidle = simulator.run(trace, MakeIdlePolicy(window_size=100))

    saving = makeidle.energy_saved_fraction(baseline)
    projection = lifetime_extension(
        NEXUS_S_BATTERY,
        baseline.breakdown,
        makeidle.breakdown,
        duration_s=trace.duration,
    )
    return saving, projection


def test_battery_lifetime_projection(benchmark):
    saving, projection = run_once(benchmark, _project)

    paper_method_hours = paper_lifetime_estimate(max(0.0, min(saving, 1.0)))
    rows = [
        ["measured MakeIdle saving", f"{100.0 * saving:.1f} %"],
        ["paper-method lifetime gain", f"{paper_method_hours:.2f} h"],
        ["battery-model baseline lifetime", f"{projection.baseline_hours:.2f} h"],
        ["battery-model lifetime with MakeIdle", f"{projection.scheme_hours:.2f} h"],
        ["battery-model lifetime gain", f"{projection.extension_hours:.2f} h"],
    ]
    print_figure(
        "Battery-lifetime projection (Nexus S battery, T-Mobile 3G profile)",
        format_table(["quantity", "value"], rows),
    )

    # The paper's reference point: a ~66% saving maps to ~4.8 hours.
    assert paper_lifetime_estimate(0.66) > 4.5
    # Our measured saving is substantial and lifetime strictly improves.
    assert saving > 0.3
    assert projection.extension_hours > 0.0
