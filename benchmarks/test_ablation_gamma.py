"""Ablation (Section 5.2): the MakeActive loss weight γ.

The paper chose γ = 0.008 "because it gave the best energy-saving results
among the values we tried".  This benchmark sweeps γ over two orders of
magnitude and reports the trade-off it controls: larger γ penalises delay
more strongly (shorter mean session delays) at the cost of batching fewer
sessions per promotion.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.core import CombinedPolicy, LearningMakeActive, MakeIdlePolicy, StatusQuoPolicy
from repro.metrics import delay_stats_for_result
from repro.rrc import get_profile
from repro.sim import TraceSimulator
from repro.traces import generate_mixed_trace

GAMMAS = (0.001, 0.008, 0.05, 0.2)


def _sweep():
    profile = get_profile("verizon_3g")
    trace = generate_mixed_trace(["im", "email", "news", "microblog"],
                                 duration=2400.0, seed=5)
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())
    outcome = {}
    for gamma in GAMMAS:
        policy = CombinedPolicy(
            MakeIdlePolicy(window_size=100), LearningMakeActive(gamma=gamma)
        )
        result = simulator.run(trace, policy)
        stats = delay_stats_for_result(result, only_delayed=True)
        outcome[gamma] = {
            "saved_percent": 100.0 * result.energy_saved_fraction(baseline),
            "mean_delay": stats.mean,
            "switches_normalized": result.switches_normalized(baseline),
        }
    return outcome


def test_ablation_gamma(benchmark):
    outcome = run_once(benchmark, _sweep)

    rows = [
        [gamma, o["saved_percent"], o["mean_delay"], o["switches_normalized"]]
        for gamma, o in outcome.items()
    ]
    print_figure(
        "Ablation — MakeActive loss weight γ (Verizon 3G profile)",
        format_table(
            ["gamma", "energy saved %", "mean delay (s)", "switches / status quo"],
            rows,
            float_format="{:.3f}",
        ),
    )

    # A much larger delay penalty must not increase the mean session delay.
    assert outcome[0.2]["mean_delay"] <= outcome[0.001]["mean_delay"] + 0.25
    # Every setting still saves substantial energy (γ tunes signalling/delay,
    # not the MakeIdle savings themselves).
    assert all(o["saved_percent"] > 30.0 for o in outcome.values())
