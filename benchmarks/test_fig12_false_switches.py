"""Figure 12: false switches and missed switches against the Oracle.

For each user, the fraction of inter-packet gaps where a scheme demoted the
radio although the Oracle would not have (false positive), and where it kept
the radio on although the Oracle would have demoted (false negative).
MakeIdle's error rates are much smaller than those of the fixed baselines —
the paper's explanation for why it outperforms them.
"""

from __future__ import annotations

import pytest
from conftest import print_figure, run_once

from repro.analysis import format_grouped_bars, user_study
from repro.rrc import get_profile

HOURS_PER_DAY = 0.5
SCHEMES = ("fixed_4.5s", "p95_iat", "makeidle")


@pytest.mark.parametrize("population, carrier", [
    ("verizon_3g", "verizon_3g"),
    ("verizon_lte", "verizon_lte"),
])
def test_fig12_false_switches(benchmark, population, carrier):
    profile = get_profile(carrier)
    study = run_once(
        benchmark,
        user_study,
        population,
        profile,
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        window_size=100,
    )

    rows = {}
    for uid, outcome in study.items():
        row = {}
        for scheme in SCHEMES:
            counts = outcome.confusion[scheme]
            row[f"{scheme} FP"] = counts.false_switch_percent
            row[f"{scheme} FN"] = counts.missed_switch_percent
        rows[f"user{uid}"] = row
    print_figure(
        f"Figure 12 — false (FP) and missed (FN) switches vs Oracle (%, {profile.name})",
        format_grouped_bars(rows, unit="%"),
    )

    makeidle_errors, fixed_errors, p95_errors = [], [], []
    for outcome in study.values():
        makeidle = outcome.confusion["makeidle"]
        fixed = outcome.confusion["fixed_4.5s"]
        p95 = outcome.confusion["p95_iat"]
        makeidle_errors.append(makeidle.false_switch_rate + makeidle.missed_switch_rate)
        fixed_errors.append(fixed.false_switch_rate + fixed.missed_switch_rate)
        p95_errors.append(p95.false_switch_rate + p95.missed_switch_rate)
        # MakeIdle's combined error must be no worse than the fixed timer's
        # for every user, and its false-switch rate stays small in absolute
        # terms (it almost never demotes inside a burst).
        assert makeidle_errors[-1] <= fixed_errors[-1] + 0.02
        assert makeidle.false_switch_percent <= 25.0
        assert makeidle.missed_switch_rate <= max(
            fixed.missed_switch_rate, p95.missed_switch_rate
        ) + 0.02

    # Across the population, MakeIdle's typical (median) error is below both
    # baselines' — the paper's Figure 12 message.
    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    assert median(makeidle_errors) <= median(fixed_errors) + 0.02
    assert median(makeidle_errors) <= median(p95_errors) + 0.02
