"""Figure 1: energy consumed by the 3G interface, broken down by cause.

The paper's bar graph shows, per background application, the percentage of
3G energy spent on actual data transfer versus the DCH-timer tail, the
FACH-timer tail and state switches — for most background applications less
than 30 % of the energy goes to data.  This benchmark regenerates those
percentages under the status quo on the AT&T profile.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import application_energy_breakdowns, format_table
from repro.rrc import get_profile
from repro.traces import APPLICATION_NAMES


def test_fig01_energy_breakdown(benchmark):
    profile = get_profile("att_hspa")
    breakdowns = run_once(
        benchmark,
        application_energy_breakdowns,
        profile,
        apps=APPLICATION_NAMES,
        duration=1800.0,
        seed=0,
    )

    rows = []
    for app, b in breakdowns.items():
        rows.append(
            [
                app,
                100.0 * b.fraction(b.data_j),
                100.0 * b.fraction(b.active_tail_j),
                100.0 * b.fraction(b.high_idle_tail_j),
                100.0 * b.fraction(b.switch_j),
                b.total_j,
            ]
        )
    print_figure(
        "Figure 1 — energy breakdown per application (status quo, AT&T 3G, % of total)",
        format_table(
            ["app", "data%", "DCH timer%", "FACH timer%", "state switch%", "total J"],
            rows,
            float_format="{:.1f}",
        ),
    )

    # Paper's observation: for the background applications, data transfer is
    # a minority (< ~30 %) of the energy.
    background = ("news", "im", "microblog", "game", "email")
    for app in background:
        breakdown = breakdowns[app]
        assert breakdown.fraction(breakdown.data_j) < 0.35
        assert breakdown.tail_j > breakdown.data_j
