"""Ablation: does modelling LTE connected-mode DRX change the conclusions?

The paper collapses RRC_CONNECTED into one state with a single measured tail
power and argues the DRX substates are not relevant to its analysis.  This
benchmark re-derives the LTE tail power from an explicit DRX schedule and
re-runs the headline comparison, checking that the scheme ordering (Oracle
>= MakeIdle >> status quo) is unchanged — i.e. the paper's simplification is
safe for its purpose.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.core import MakeIdlePolicy, OraclePolicy, StatusQuoPolicy
from repro.rrc import get_profile
from repro.rrc.drx import DEFAULT_LTE_DRX, profile_with_drx
from repro.sim import TraceSimulator
from repro.traces import user_trace


def _compare():
    measured_profile = get_profile("verizon_lte")
    drx_profile = profile_with_drx(measured_profile, DEFAULT_LTE_DRX)
    trace = user_trace("verizon_lte", 1, hours_per_day=0.4, seed=1)

    savings = {}
    for label, profile in (("measured tail power", measured_profile),
                           ("DRX-derived tail power", drx_profile)):
        simulator = TraceSimulator(profile)
        baseline = simulator.run(trace, StatusQuoPolicy())
        makeidle = simulator.run(trace, MakeIdlePolicy(window_size=100))
        oracle = simulator.run(trace, OraclePolicy())
        savings[label] = (
            100.0 * makeidle.energy_saved_fraction(baseline),
            100.0 * oracle.energy_saved_fraction(baseline),
            profile.power_active_mw,
        )
    return savings


def test_ablation_drx(benchmark):
    savings = run_once(benchmark, _compare)

    rows = [
        [label, tail_mw, makeidle, oracle]
        for label, (makeidle, oracle, tail_mw) in savings.items()
    ]
    print_figure(
        "Ablation — LTE tail power from measurement vs from a DRX schedule",
        format_table(
            ["tail model", "P_t1 (mW)", "MakeIdle saved %", "Oracle saved %"], rows
        ),
    )

    for makeidle, oracle, _ in savings.values():
        # The qualitative conclusion holds under both tail models.
        assert makeidle > 20.0
        assert oracle >= makeidle - 1.0
