"""Figure 8: simulation energy-model error for Verizon 3G and LTE.

Section 6.1 validates the per-second energy estimator against power-monitor
measurements of TCP bulk transfers (10 kB / 100 kB / 1000 kB, five runs
each) and finds errors within ±10 %.  This benchmark runs the library's
estimator against the detailed reference model (the stand-in for the power
monitor, see DESIGN.md) and reports the error distribution per network.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.energy import run_validation
from repro.rrc import get_profile


def _validate_both():
    return {
        key: run_validation(get_profile(key), runs_per_size=5, seed=0)
        for key in ("verizon_3g", "verizon_lte")
    }


def test_fig08_model_error(benchmark):
    results = run_once(benchmark, _validate_both)

    rows = []
    for key, validation in results.items():
        errors = sorted(validation.errors)
        rows.append(
            [
                key,
                100.0 * errors[0],
                100.0 * validation.mean_error,
                100.0 * errors[-1],
                100.0 * validation.mean_absolute_error,
            ]
        )
    print_figure(
        "Figure 8 — simulation energy error (% vs reference measurement)",
        format_table(
            ["network", "min err%", "mean err%", "max err%", "mean |err|%"],
            rows,
            float_format="{:+.1f}",
        ),
    )

    # Paper: errors within about ±10 % for both networks.
    for validation in results.values():
        assert validation.mean_absolute_error <= 0.15
        assert abs(validation.mean_error) <= 0.10
