"""Figure 15: mean and median burst delays, learning versus fixed bound.

The learning MakeActive reduces the average per-burst delay by roughly half
compared with the fixed delay bound while keeping a comparable number of
state switches.  This benchmark reports both statistics per user for the
Verizon 3G and LTE populations.
"""

from __future__ import annotations

import pytest
from conftest import print_figure, run_once

from repro.analysis import format_grouped_bars, user_study
from repro.rrc import get_profile

HOURS_PER_DAY = 0.5


@pytest.mark.parametrize("population, carrier", [
    ("verizon_3g", "verizon_3g"),
    ("verizon_lte", "verizon_lte"),
])
def test_fig15_delays(benchmark, population, carrier):
    profile = get_profile(carrier)
    study = run_once(
        benchmark,
        user_study,
        population,
        profile,
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        window_size=100,
    )

    rows = {}
    for uid, outcome in study.items():
        learn = outcome.delays["makeidle+makeactive_learn"]
        fixed = outcome.delays["makeidle+makeactive_fixed"]
        rows[f"user{uid}"] = {
            "learning mean": learn.mean,
            "learning median": learn.median,
            "fixed mean": fixed.mean,
            "fixed median": fixed.median,
        }
    print_figure(
        f"Figure 15 — per-burst delay, learning vs fixed bound (s, {profile.name})",
        format_grouped_bars(rows, unit="s"),
    )

    mean_ratios = []
    for outcome in study.values():
        learn = outcome.delays["makeidle+makeactive_learn"]
        fixed = outcome.delays["makeidle+makeactive_fixed"]
        if learn.count == 0 or fixed.count == 0:
            continue
        # Learning never waits longer than the fixed bound on average, and
        # both stay in the "few seconds" regime (well under the 12 s cap).
        assert learn.mean <= fixed.mean + 0.1
        assert fixed.mean <= 12.0 + 1e-6
        mean_ratios.append(learn.mean / fixed.mean)
    assert mean_ratios, "no delayed sessions recorded"
    # Averaged over users, the learning algorithm cuts the mean delay
    # substantially (the paper reports about 50 %).
    assert sum(mean_ratios) / len(mean_ratios) <= 0.8
