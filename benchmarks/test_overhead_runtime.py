"""Section 6.6: overhead of running the algorithms themselves.

The paper measures a 1.7-1.9 % energy overhead from running the control
module on the phone.  We cannot measure phone energy, so this benchmark
measures the computational cost of the two online algorithms per processed
packet — the quantity that overhead is proportional to — and checks it is
far below the packet inter-arrival times it has to keep up with.
"""

from __future__ import annotations

from conftest import print_figure

from repro.analysis import format_table
from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.rrc import get_profile
from repro.sim import TraceSimulator
from repro.traces import user_trace


def test_makeidle_per_packet_overhead(benchmark):
    profile = get_profile("verizon_3g")
    trace = user_trace("verizon_3g", 2, hours_per_day=0.5, seed=0)
    simulator = TraceSimulator(profile)

    def run_makeidle():
        return simulator.run(trace, MakeIdlePolicy(window_size=100))

    result = benchmark(run_makeidle)
    per_packet_us = benchmark.stats["mean"] / max(1, len(trace)) * 1e6
    baseline = simulator.run(trace, StatusQuoPolicy())
    print_figure(
        "Section 6.6 — algorithm runtime overhead",
        format_table(
            ["metric", "value"],
            [
                ["trace packets", len(trace)],
                ["simulated span (s)", trace.duration],
                ["MakeIdle wall time per packet (µs)", per_packet_us],
                ["energy saved vs status quo (%)",
                 100.0 * result.energy_saved_fraction(baseline)],
            ],
        ),
    )

    # The per-packet decision cost must be microseconds-to-sub-millisecond —
    # negligible against packet inter-arrival times (the paper's measured
    # energy overhead of running the module is below 2 %).
    assert per_packet_us < 5000.0
