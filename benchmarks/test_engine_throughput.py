"""Micro-benchmark: event-kernel throughput and memory at cell scale.

Records what the unified kernel delivers on the workloads the ROADMAP's
north star cares about and writes the numbers to ``BENCH_engine.json`` at
the repo root so the perf trajectory is tracked across PRs:

* ``single_1k`` — a 1000-device streamed cell in one process:
  packets/sec through the kernel (device policy held cheap so the
  measurement is kernel-dominated) and current RSS / Python-heap peak,
  demonstrating that memory is bounded by the device count, not the total
  packet count;
* ``sharded_10k`` — the same shape at 10k devices, single-process vs
  ``shards=4`` on a process pool, asserting the shard-merge exactness
  contract (byte-identical per-device records) and recording the measured
  speedup (only meaningful on multi-core machines — ``cpu_count`` is
  recorded alongside);
* ``sharded_100k`` — the 100k-device streamed cell, executed sharded,
  recording wall time, packets/sec and RSS at a population size one
  process could not comfortably hold with materialised traces;
* ``sharded_scenario`` — a heterogeneous ``office_day`` scenario cell
  (cohort-weighted archetypes under a diurnal shape), single-process vs
  2-shard pool, asserting the shard-merge exactness contract extends to
  scenario populations and recording the scenario layer's throughput;
* ``metro_250k`` — the four-cell shuffle metro at 250k UEs: hierarchical
  (cell × UE-block) sharded execution with mid-stream RRC handovers,
  recording the handover count and per-UE handover rate alongside the
  packet throughput the mobility layer sustains;
* ``vector_1k`` — the numpy backend (``engine="vector"``) against the
  scalar kernel on a dense 1k-device cell (social/news, 600 s), traces
  materialised outside the timed region so the comparison is
  kernel-vs-kernel on identical inputs: byte-identical results asserted,
  both throughputs and the speedup recorded;
* ``vector_100k`` — the 100k-device sharded cell of ``sharded_100k``
  re-run under ``engine="vector"``, recording the backend's throughput
  on the sparse-traffic regime side-by-side with the scalar number;
* ``learning_10k`` — the 10k-device streamed cell running the
  Learn-α MakeIdle+MakeActive scheme: per-UE online learners updated
  in-kernel at release time, single-process vs sharded pool with the
  byte-identity contract asserted (learner state never crosses a shard
  boundary), recording the learning layer's throughput alongside the
  learning-curve summary (learners, iterations, first→final delay);
* ``cell_1m`` — the 1,000,000-device streamed cell on the columnar
  result core, opt-in via ``REPRO_BENCH_1M=1`` (it adds minutes to a
  bench run): completes in one container and records ``rss_now_mb``,
  which ``tools/check_bench_floor.py`` gates against a committed
  ceiling.

Memory is reported as ``rss_now_mb``: the section's own current RSS
sampled from ``/proc/self/status`` at record time.  The former
``peak_rss_mb`` (``ru_maxrss``) was dropped — it is a *process-wide*
high-water mark, monotone across sections within one pytest run, so
every section after the hungriest one replicated that section's peak and
the column carried no per-section information.
"""

from __future__ import annotations

import ctypes
import gc
import json
import os
import resource
import sys
import time
import tracemalloc
from pathlib import Path

from dataclasses import replace as dc_replace

import pytest

from conftest import print_figure

from repro.api import (
    CellRunSpec,
    PolicySpec,
    ProcessPoolRunner,
    cell,
    execute_cell,
)
from repro.api.cells import DormancySpec
from repro.basestation import AcceptAllDormancy, CellSimulator
from repro.rrc.profiles import get_profile
from repro.sim.vector_engine import numpy_available
from repro.traces.packet import PacketTrace

DEVICES = 1000
DURATION_S = 120.0
SHARDED_DEVICES = 10_000
SHARDED_SHARDS = 4
HUGE_DEVICES = 100_000
HUGE_DURATION_S = 60.0
HUGE_SHARDS = 8
SCENARIO_DEVICES = 2_000
SCENARIO_DURATION_S = 120.0
SCENARIO_SHARDS = 2
METRO_DEVICES = 250_000
METRO_DURATION_S = 60.0
METRO_SHARDS = 8
# Dense workload for the kernel-backend comparison: ~230 packets/UE keeps
# both kernels dominated by per-packet work, the vector backend's target
# regime (sparse bursty traffic is boundary-dominated — see vector_100k).
VECTOR_DEVICES = 1000
VECTOR_APPS = ("social", "news")
VECTOR_DURATION_S = 600.0
LEARNING_DEVICES = 10_000
LEARNING_DURATION_S = 60.0
LEARNING_SHARDS = 4
MILLION_DEVICES = 1_000_000
MILLION_DURATION_S = 30.0
MILLION_SHARDS = 16
#: Committed ceiling for the cell_1m resident set; the bench asserts it
#: and tools/check_bench_floor.py gates the recorded value against it.
MILLION_RSS_CEILING_MB = 440.0
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


_BENCH_SECTIONS = (
    "single_1k", "sharded_10k", "sharded_100k", "sharded_scenario",
    "metro_250k", "vector_1k", "vector_100k", "learning_10k", "cell_1m",
)


def _update_bench(section: str, record: dict) -> dict:
    """Merge one section into BENCH_engine.json (sections per benchmark)."""
    data: dict = {}
    if BENCH_PATH.exists():
        try:
            loaded = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            loaded = {}
        # Keep sibling sections; only the pre-shard flat layout (one
        # un-sectioned record) starts a fresh file.
        if isinstance(loaded, dict) and any(
            key in loaded for key in _BENCH_SECTIONS
        ):
            data = loaded
    data["cpu_count"] = os.cpu_count()
    data[section] = record
    BENCH_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return record


def _peak_rss_mb() -> float:
    """Process RSS high-water mark — only a fallback for :func:`_rss_now_mb`
    where /proc is unavailable; never recorded directly (see module
    docstring for why the per-section columns dropped it)."""
    # ru_maxrss is KiB on Linux, bytes on macOS.
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return maxrss / 1024.0 if sys.platform != "darwin" else maxrss / 2**20


def _trim_heap() -> None:
    """Return freed allocator pages to the OS before an RSS sample.

    On a serial (pool-clamped) run the shard partials are merged in this
    very process, and glibc retains the freed merge transients in its
    arenas — VmRSS would then measure allocator retention, not the live
    columnar table.  ``malloc_trim`` hands those pages back so the sample
    reflects what the process actually still holds.
    """
    gc.collect()
    try:
        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except (OSError, AttributeError):  # non-glibc platform: sample as-is
        pass


def _rss_now_mb() -> float:
    """Current RSS at record time — this section's own footprint."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0  # kB -> MiB
    except OSError:
        pass
    return _peak_rss_mb()


def _build_devices():
    population = cell(
        devices=DEVICES, apps=("im", "email"), duration=DURATION_S,
        streaming=True, chunk_s=60.0,
    )
    # fixed_4.5s keeps per-packet policy work O(1): the number measured is
    # the kernel's, not MakeIdle's window optimisation.
    return population.build_devices(PolicySpec(scheme="fixed_4.5s"))


def _cell_spec(
    devices: int, duration: float, shards: int, engine: str = "scalar"
) -> CellRunSpec:
    return CellRunSpec(
        cell=cell(devices=devices, apps=("im", "email"), duration=duration,
                  streaming=True, chunk_s=60.0, engine=engine),
        carrier="att_hspa",
        policy=PolicySpec(scheme="fixed_4.5s").resolved(100),
        dormancy=DormancySpec(),
        shards=shards,
    )


THROUGHPUT_ROUNDS = 5


def test_engine_throughput_1k_device_cell(benchmark):
    # Throughput passes, untraced (tracemalloc costs several x).  Best of
    # THROUGHPUT_ROUNDS replays: the kernel is deterministic, so run-to-run
    # spread is scheduler/frequency noise, and the fastest replay is the
    # standard micro-benchmark estimator of what the code itself costs
    # (also what keeps the CI regression gate from tripping on a noisy
    # neighbour instead of a real regression).
    # One untimed warm-up replay brings allocator/caches to steady state
    # before measurement.
    CellSimulator(get_profile("att_hspa"), AcceptAllDormancy()).run(
        _build_devices()
    )
    elapsed = float("inf")
    for _ in range(THROUGHPUT_ROUNDS):
        simulator = CellSimulator(get_profile("att_hspa"), AcceptAllDormancy())
        devices = _build_devices()
        start = time.perf_counter()
        result = simulator.run(devices)
        elapsed = min(elapsed, time.perf_counter() - start)

    # Memory pass — Python-heap peak under tracemalloc.
    tracemalloc.start()
    CellSimulator(get_profile("att_hspa"), AcceptAllDormancy()).run(
        _build_devices()
    )
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    packets = result.total_packets
    assert packets > 0
    packets_per_sec = packets / elapsed

    record = _update_bench("single_1k", {
        "devices": DEVICES,
        "duration_s": DURATION_S,
        "packets": packets,
        "elapsed_s": round(elapsed, 3),
        "timing": f"best of {THROUGHPUT_ROUNDS} replays (1 warm-up)",
        "packets_per_sec": round(packets_per_sec, 1),
        "events_per_sec_lower_bound": round(packets_per_sec, 1),
        "rss_now_mb": round(_rss_now_mb(), 1),
        "python_heap_peak_mb": round(traced_peak / 2**20, 2),
        "heap_bytes_per_packet": round(traced_peak / packets, 1),
    })

    print_figure(
        "Engine throughput — 1k-device streamed cell",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )

    # Streaming keeps Python-heap peak far below one-materialised-trace-
    # per-device territory (~1 KB+/packet); allow generous slack for
    # interpreter noise so the assertion stays robust on CI boxes.
    assert traced_peak / packets < 800.0, (
        f"streamed cell allocated {traced_peak / packets:.0f} B/packet — "
        "memory no longer bounded by active devices?"
    )

    # One timed replay for the pytest-benchmark report.
    benchmark.pedantic(
        lambda: CellSimulator(get_profile("att_hspa")).run(_build_devices()),
        rounds=1, iterations=1,
    )


def test_sharded_10k_device_cell_matches_and_scales():
    """10k devices: single process vs 4 shards via the runner, byte-identical.

    The runner clamps its pool to usable cores and falls back to serial
    in-process shard execution when a pool cannot help (1 usable worker),
    so a machine where pool overhead would beat parallelism never pays
    it.  A ``speedup`` claim is recorded only when a pool actually ran —
    the in-process fallback executes the very code path it would be
    compared against, so a sub-1 "speedup" cannot be shipped by
    construction (the clamp itself is recorded instead).
    """
    single_spec = _cell_spec(SHARDED_DEVICES, DURATION_S, shards=1)
    sharded_spec = _cell_spec(SHARDED_DEVICES, DURATION_S,
                              shards=SHARDED_SHARDS)

    start = time.perf_counter()
    single = execute_cell(single_spec)
    single_elapsed = time.perf_counter() - start

    runner = ProcessPoolRunner(jobs=SHARDED_SHARDS)
    start = time.perf_counter()
    sharded_runs = runner.run([sharded_spec])
    sharded = sharded_runs.records[0].result
    sharded_elapsed = time.perf_counter() - start
    execution = sharded_runs.execution

    # The exactness contract, asserted at benchmark scale: per-device
    # records byte-identical under the shard-independent accept_all
    # station, whatever the hardware does for speed.
    assert sharded.devices == single.devices
    assert sharded.signaling == single.signaling
    assert sharded.switch_times == single.switch_times

    packets = single.total_packets
    record = {
        "devices": SHARDED_DEVICES,
        "duration_s": DURATION_S,
        "shards": SHARDED_SHARDS,
        "pool_jobs": execution.effective_jobs,
        "pool_used": execution.pool_used,
        "pool_clamped": execution.clamped,
        "usable_cores": execution.usable_cores,
        "packets": packets,
        "single_elapsed_s": round(single_elapsed, 3),
        "sharded_elapsed_s": round(sharded_elapsed, 3),
        "single_packets_per_sec": round(packets / single_elapsed, 1),
        "sharded_packets_per_sec": round(packets / sharded_elapsed, 1),
        "byte_identical_devices": True,
        "rss_now_mb": round(_rss_now_mb(), 1),
    }
    if execution.pool_used:
        record["speedup"] = round(
            single_elapsed / sharded_elapsed if sharded_elapsed > 0 else 0.0,
            2,
        )
    record = _update_bench("sharded_10k", record)

    print_figure(
        "Sharded execution — 10k-device cell, 4 shards vs 1 process",
        "\n".join(f"{key}: {value}" for key, value in record.items()),
    )

    # The speedup target only exists where the cores do: a shared 4-vCPU
    # CI runner cannot reliably give 4 shards 2.5x.  Asserted only with
    # real headroom (twice the shard count in cores).
    if execution.pool_used and (os.cpu_count() or 1) >= 2 * SHARDED_SHARDS:
        assert record["speedup"] >= 2.5, (
            f"sharded 10k run only {record['speedup']:.2f}x faster on "
            f"{os.cpu_count()} cores"
        )


def test_sharded_scenario_cell_matches_and_records():
    """office_day at 2k devices: scenario layer through the shard protocol."""
    def spec(shards: int) -> CellRunSpec:
        return CellRunSpec(
            cell=cell(devices=SCENARIO_DEVICES, scenario="office_day",
                      duration=SCENARIO_DURATION_S, chunk_s=60.0),
            carrier="att_hspa",
            policy=PolicySpec(scheme="fixed_4.5s").resolved(100),
            dormancy=DormancySpec(),
            shards=shards,
        )

    start = time.perf_counter()
    single = execute_cell(spec(1))
    single_elapsed = time.perf_counter() - start

    runner = ProcessPoolRunner(jobs=SCENARIO_SHARDS)
    start = time.perf_counter()
    sharded_runs = runner.run([spec(SCENARIO_SHARDS)])
    sharded = sharded_runs.records[0].result
    sharded_elapsed = time.perf_counter() - start
    execution = sharded_runs.execution

    # Shard-merge exactness extends to scenario populations: cohort
    # membership and hashed per-device seeds are pure functions of the
    # global device index, so the partials merge byte-identically.
    assert sharded.devices == single.devices
    assert sharded.signaling == single.signaling
    assert sharded.switch_times == single.switch_times
    assert sharded.cohort_breakdown() == single.cohort_breakdown()

    packets = single.total_packets
    assert packets > 0
    cohorts = {
        label: entry.devices
        for label, entry in single.cohort_breakdown().items()
    }
    record = _update_bench("sharded_scenario", {
        "scenario": "office_day",
        "devices": SCENARIO_DEVICES,
        "duration_s": SCENARIO_DURATION_S,
        "shards": SCENARIO_SHARDS,
        "pool_jobs": execution.effective_jobs,
        "pool_used": execution.pool_used,
        "pool_clamped": execution.clamped,
        "cohort_devices": cohorts,
        "packets": packets,
        "single_elapsed_s": round(single_elapsed, 3),
        "sharded_elapsed_s": round(sharded_elapsed, 3),
        "single_packets_per_sec": round(packets / single_elapsed, 1),
        "sharded_packets_per_sec": round(packets / sharded_elapsed, 1),
        "byte_identical_devices": True,
        "rss_now_mb": round(_rss_now_mb(), 1),
    })

    print_figure(
        "Sharded execution — 2k-device office_day scenario cell",
        "\n".join(f"{key}: {value}" for key, value in record.items()),
    )


def test_metro_250k_completes_with_handovers():
    """The 250k-UE four-cell metro runs hierarchically sharded.

    ``metro_4cell`` shuffles its population across four stations on
    10-minute mean residencies, so a one-minute horizon already hands
    over ~10% of 250k UEs — each departure closing its RRC context with
    the exact ``finish``-replay float ops and resuming mid-stream at the
    arrival cell.  Recorded alongside throughput: the handover count and
    the per-UE-hour handover rate the elapsed time paid for.
    """
    from repro.api.metro import MetroRunSpec, execute_metro, metro

    spec = MetroRunSpec(
        metro=metro("metro_4cell", devices=METRO_DEVICES,
                    duration=METRO_DURATION_S, chunk_s=60.0),
        carrier="att_hspa",
        policy=PolicySpec(scheme="fixed_4.5s").resolved(100),
        shards=METRO_SHARDS,
    )
    start = time.perf_counter()
    result = execute_metro(spec)
    elapsed = time.perf_counter() - start

    assert len(result.cells) >= 4
    assert result.handovers > 0
    packets = result.total_packets
    assert packets > 0
    total_visits = sum(entry.visits for entry in result.cells)

    ue_hours = METRO_DEVICES * METRO_DURATION_S / 3600.0
    record = _update_bench("metro_250k", {
        "metro": "metro_4cell",
        "devices": METRO_DEVICES,
        "duration_s": METRO_DURATION_S,
        "cells": len(result.cells),
        "shards": METRO_SHARDS,
        "packets": packets,
        "visits": total_visits,
        "handovers": result.handovers,
        "handover_rate_per_ue_hour": round(result.handovers / ue_hours, 3),
        "cell_visits": {
            entry.name: entry.visits for entry in result.cells
        },
        "elapsed_s": round(elapsed, 3),
        "packets_per_sec": round(packets / elapsed, 1),
        "handovers_per_sec": round(result.handovers / elapsed, 1),
        "rss_now_mb": round(_rss_now_mb(), 1),
    })

    print_figure(
        "Metro execution — 250k-UE four-cell shuffle metro",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )


def test_sharded_100k_device_cell_completes():
    """The 100k-device streamed cell runs sharded and is recorded."""
    spec = _cell_spec(HUGE_DEVICES, HUGE_DURATION_S, shards=HUGE_SHARDS)

    # The runner clamps its pool to usable cores and runs the shards
    # serially in-process when a pool cannot help (same merge, no pool
    # tax) — no need to special-case core counts here.
    runner = ProcessPoolRunner(jobs=HUGE_SHARDS)
    start = time.perf_counter()
    runs = runner.run([spec])
    result = runs.records[0].result
    elapsed = time.perf_counter() - start
    execution = runs.execution

    assert len(result.devices) == HUGE_DEVICES
    packets = result.total_packets
    assert packets > 0

    record = _update_bench("sharded_100k", {
        "devices": HUGE_DEVICES,
        "duration_s": HUGE_DURATION_S,
        "shards": HUGE_SHARDS,
        "pool_jobs": execution.effective_jobs,
        "pool_used": execution.pool_used,
        "pool_clamped": execution.clamped,
        "packets": packets,
        "elapsed_s": round(elapsed, 3),
        "packets_per_sec": round(packets / elapsed, 1),
        "rss_now_mb": round(_rss_now_mb(), 1),
        "peak_active_devices": result.peak_active_devices,
        "peak_switches_per_minute": result.peak_switches_per_minute,
    })

    print_figure(
        "Sharded execution — 100k-device streamed cell",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )


def _materialized_dense_devices():
    """The vector-comparison workload with traces materialised up front.

    Materialising outside the timed region makes the ``vector_1k``
    numbers kernel-vs-kernel on identical in-memory inputs — trace
    generation costs the same whichever backend runs and would otherwise
    dilute the comparison.
    """
    population = cell(
        devices=VECTOR_DEVICES, apps=VECTOR_APPS,
        duration=VECTOR_DURATION_S, streaming=True, chunk_s=60.0,
    )
    return [
        dc_replace(spec, trace=PacketTrace(spec.trace))
        for spec in population.build_devices(PolicySpec(scheme="fixed_4.5s"))
    ]


def test_vector_1k_dense_cell_speedup():
    """Scalar vs vector kernel on the dense 1k-device cell, byte-identical.

    Both backends replay the same materialised workload, best of
    THROUGHPUT_ROUNDS (one untimed warm-up each — the vector warm-up
    also pays the numpy import).  The full results are compared
    field-for-field before any number is recorded: a speedup claim for a
    backend that diverges would be meaningless.
    """
    if not numpy_available():
        pytest.skip("numpy unavailable — vector backend falls back to scalar")

    elapsed = {}
    results = {}
    for engine in ("scalar", "vector"):
        CellSimulator(
            get_profile("att_hspa"), AcceptAllDormancy(), engine=engine
        ).run(_materialized_dense_devices())
        best = float("inf")
        for _ in range(THROUGHPUT_ROUNDS):
            devices = _materialized_dense_devices()
            simulator = CellSimulator(
                get_profile("att_hspa"), AcceptAllDormancy(), engine=engine
            )
            start = time.perf_counter()
            results[engine] = simulator.run(devices)
            best = min(best, time.perf_counter() - start)
        elapsed[engine] = best

    scalar, vector = results["scalar"], results["vector"]
    assert vector.devices == scalar.devices
    assert vector.signaling == scalar.signaling
    assert vector.switch_times == scalar.switch_times
    assert vector.load_samples == scalar.load_samples

    packets = scalar.total_packets
    assert packets > 0
    scalar_pps = packets / elapsed["scalar"]
    vector_pps = packets / elapsed["vector"]
    speedup = elapsed["scalar"] / elapsed["vector"]

    # Cross-section ratio against the streamed scalar baseline, when the
    # single_1k section is present on this machine (it runs first in
    # this module, so a full bench run always has it).
    single_pps = None
    if BENCH_PATH.exists():
        try:
            single = json.loads(
                BENCH_PATH.read_text(encoding="utf-8")
            ).get("single_1k", {})
            single_pps = single.get("packets_per_sec")
        except json.JSONDecodeError:
            pass

    record = {
        "devices": VECTOR_DEVICES,
        "apps": list(VECTOR_APPS),
        "duration_s": VECTOR_DURATION_S,
        "packets": packets,
        "timing": (
            f"kernel replay only — traces materialised outside the timed "
            f"region; best of {THROUGHPUT_ROUNDS} (1 warm-up per engine)"
        ),
        "scalar_elapsed_s": round(elapsed["scalar"], 3),
        "vector_elapsed_s": round(elapsed["vector"], 3),
        "scalar_packets_per_sec": round(scalar_pps, 1),
        # The floor-gated headline number is the vector backend's.
        "packets_per_sec": round(vector_pps, 1),
        "speedup": round(speedup, 2),
        "byte_identical_devices": True,
        "rss_now_mb": round(_rss_now_mb(), 1),
    }
    if single_pps:
        record["speedup_vs_single_1k"] = round(vector_pps / single_pps, 2)
    record = _update_bench("vector_1k", record)

    print_figure(
        "Vector backend — dense 1k-device cell, scalar vs vector kernel",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )

    # The backend must beat the scalar kernel decisively on its target
    # regime — a generous in-test floor; the bench gate pins the
    # machine-specific absolute.
    assert speedup >= 2.0, (
        f"vector kernel only {speedup:.2f}x scalar on the dense cell"
    )
    if single_pps:
        assert vector_pps >= 5.0 * single_pps, (
            f"vector backend {vector_pps:,.0f} pkt/s is under 5x the "
            f"single_1k scalar baseline {single_pps:,.0f} pkt/s"
        )


def test_vector_100k_sharded_cell_records():
    """The sharded_100k workload re-run under ``engine="vector"``.

    Same spec, same shard plan, only the backend differs — the recorded
    number is directly comparable to ``sharded_100k``.  This sparse
    regime (~5 packets/UE, bursty) is boundary-dominated, so near-parity
    with the scalar kernel is the expected honest result here; the dense
    regime above is where the folds pay.
    """
    if not numpy_available():
        pytest.skip("numpy unavailable — vector backend falls back to scalar")

    spec = _cell_spec(
        HUGE_DEVICES, HUGE_DURATION_S, shards=HUGE_SHARDS, engine="vector"
    )
    runner = ProcessPoolRunner(jobs=HUGE_SHARDS)
    start = time.perf_counter()
    runs = runner.run([spec])
    result = runs.records[0].result
    elapsed = time.perf_counter() - start
    execution = runs.execution

    assert len(result.devices) == HUGE_DEVICES
    # fixed_4.5s under accept_all is vector-eligible: no device may have
    # fallen back to the scalar path.
    assert result.vector_devices == HUGE_DEVICES
    packets = result.total_packets
    assert packets > 0

    scalar_section = {}
    if BENCH_PATH.exists():
        try:
            scalar_section = json.loads(
                BENCH_PATH.read_text(encoding="utf-8")
            ).get("sharded_100k", {})
        except json.JSONDecodeError:
            pass
    if scalar_section.get("packets") is not None:
        # Deterministic workload: the backend swap must not move totals.
        assert packets == scalar_section["packets"]

    record = {
        "devices": HUGE_DEVICES,
        "duration_s": HUGE_DURATION_S,
        "shards": HUGE_SHARDS,
        "engine": "vector",
        "pool_jobs": execution.effective_jobs,
        "pool_used": execution.pool_used,
        "pool_clamped": execution.clamped,
        "packets": packets,
        "vector_devices": result.vector_devices,
        "elapsed_s": round(elapsed, 3),
        "packets_per_sec": round(packets / elapsed, 1),
        "rss_now_mb": round(_rss_now_mb(), 1),
    }
    if scalar_section.get("packets_per_sec"):
        record["speedup_vs_scalar_sharded"] = round(
            (packets / elapsed) / scalar_section["packets_per_sec"], 2
        )
    record = _update_bench("vector_100k", record)

    print_figure(
        "Vector backend — 100k-device sharded cell",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )


def test_learning_10k_device_cell_matches_and_records():
    """10k devices on the Learn-α scheme: sharded byte-identity + throughput.

    Every device owns a fresh two-layer learner (Fixed-Share experts under
    a Learn-α top layer) updated in-kernel at each buffered release —
    this section measures what that per-release weight update costs at
    population scale, and re-asserts the streaming learning contract at
    benchmark scale: the sharded run's per-device records, including the
    ``learn_*`` learning-curve columns, are byte-identical to the
    single-process reference.
    """
    def spec(shards: int) -> CellRunSpec:
        return CellRunSpec(
            cell=cell(devices=LEARNING_DEVICES, apps=("im", "email"),
                      duration=LEARNING_DURATION_S, streaming=True,
                      chunk_s=60.0),
            carrier="att_hspa",
            policy=PolicySpec(scheme="makeidle+makeactive_learn").resolved(100),
            dormancy=DormancySpec(),
            shards=shards,
        )

    start = time.perf_counter()
    single = execute_cell(spec(1))
    single_elapsed = time.perf_counter() - start

    runner = ProcessPoolRunner(jobs=LEARNING_SHARDS)
    start = time.perf_counter()
    sharded_runs = runner.run([spec(LEARNING_SHARDS)])
    sharded = sharded_runs.records[0].result
    sharded_elapsed = time.perf_counter() - start
    execution = sharded_runs.execution

    # The streaming learning contract at benchmark scale: per-UE learner
    # state never crosses a shard boundary.
    assert sharded.devices == single.devices
    assert sharded.signaling == single.signaling
    assert sharded.switch_times == single.switch_times
    assert sharded.learning_summary() == single.learning_summary()

    packets = single.total_packets
    assert packets > 0
    summary = single.learning_summary()
    assert summary["learning_devices"] > 0
    record = _update_bench("learning_10k", {
        "devices": LEARNING_DEVICES,
        "duration_s": LEARNING_DURATION_S,
        "scheme": "makeidle+makeactive_learn",
        "shards": LEARNING_SHARDS,
        "pool_jobs": execution.effective_jobs,
        "pool_used": execution.pool_used,
        "pool_clamped": execution.clamped,
        "packets": packets,
        "single_elapsed_s": round(single_elapsed, 3),
        "sharded_elapsed_s": round(sharded_elapsed, 3),
        "single_packets_per_sec": round(packets / single_elapsed, 1),
        # The floor-gated headline number is the single-process kernel's:
        # it isolates the learning layer's per-release cost from pool
        # scheduling.
        "packets_per_sec": round(packets / single_elapsed, 1),
        "sharded_packets_per_sec": round(packets / sharded_elapsed, 1),
        "learning_devices": summary["learning_devices"],
        "learn_iterations": summary["learn_iterations"],
        "learn_iterations_per_sec": round(
            summary["learn_iterations"] / single_elapsed, 1
        ),
        "mean_delay_first_s": round(summary["mean_delay_first_s"], 3),
        "mean_delay_final_s": round(summary["mean_delay_final_s"], 3),
        "byte_identical_devices": True,
        "rss_now_mb": round(_rss_now_mb(), 1),
    })

    print_figure(
        "Learning layer — 10k-device Learn-α cell, sharded vs 1 process",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )


def test_cell_1m_streamed_completes_in_bounded_memory():
    """One million streamed devices in a single container (``cell_1m``).

    The columnar result core is what makes this population size fit: the
    merged result is a struct-of-arrays :class:`DeviceTable` (a handful
    of numpy columns, ~8 bytes per device per column) instead of a
    million boxed ``DeviceResult`` objects, and shard partials compact
    their switch timelines into arrays at hand-off.  The section records
    ``rss_now_mb`` sampled *after* the merge — the resident footprint a
    consumer of the result actually holds — and asserts it under the
    committed ceiling that ``tools/check_bench_floor.py`` gates.

    Opt-in (``REPRO_BENCH_1M=1``): at ~2.4M packets through a serial
    16-shard plan this adds minutes to a bench run, which would roughly
    double the tier-1 suite on a laptop for one number that only moves
    when the storage layer does.
    """
    if os.environ.get("REPRO_BENCH_1M") != "1":
        pytest.skip("cell_1m is opt-in: set REPRO_BENCH_1M=1")
    engine = "vector" if numpy_available() else "scalar"
    spec = _cell_spec(
        MILLION_DEVICES, MILLION_DURATION_S, shards=MILLION_SHARDS,
        engine=engine,
    )
    runner = ProcessPoolRunner(jobs=MILLION_SHARDS)
    start = time.perf_counter()
    runs = runner.run([spec])
    result = runs.records[0].result
    elapsed = time.perf_counter() - start
    execution = runs.execution

    assert len(result.devices) == MILLION_DEVICES
    packets = result.total_packets
    assert packets > 0
    # Exercise a columnar aggregate so the recorded RSS covers a consumer
    # actually *using* the table, not just holding it.
    assert result.total_energy_j > 0.0

    _trim_heap()
    rss_now = _rss_now_mb()
    record = _update_bench("cell_1m", {
        "devices": MILLION_DEVICES,
        "duration_s": MILLION_DURATION_S,
        "shards": MILLION_SHARDS,
        "engine": engine,
        "pool_jobs": execution.effective_jobs,
        "pool_used": execution.pool_used,
        "pool_clamped": execution.clamped,
        "packets": packets,
        "elapsed_s": round(elapsed, 3),
        "packets_per_sec": round(packets / elapsed, 1),
        "rss_now_mb": round(rss_now, 1),
        "rss_ceiling_mb": MILLION_RSS_CEILING_MB,
        "bytes_per_device": round(rss_now * 2**20 / MILLION_DEVICES, 1),
    })

    print_figure(
        "Columnar result core — 1M-device streamed cell",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )

    assert rss_now <= MILLION_RSS_CEILING_MB, (
        f"cell_1m resident set {rss_now:.0f} MB exceeds the "
        f"{MILLION_RSS_CEILING_MB:.0f} MB ceiling — the columnar result "
        "core is no longer bounding per-device storage"
    )
