"""Micro-benchmark: event-kernel throughput and memory at cell scale.

Records what the unified kernel delivers on the workload the ISSUE's
north star cares about — a 1000-device cell with *streamed* traces — and
writes the numbers to ``BENCH_engine.json`` at the repo root so the perf
trajectory is tracked across PRs:

* **packets/sec** through the kernel (device policy held cheap so the
  measurement is kernel-dominated, not policy-dominated);
* **peak RSS** of the process (``ru_maxrss``), demonstrating that memory
  is bounded by the device count, not the total packet count.

Also asserts the structural memory claim directly: a streamed 1k-device
run must not allocate more than a few hundred bytes of Python heap per
device-packet (materialising every trace up front would).
"""

from __future__ import annotations

import json
import resource
import sys
import time
import tracemalloc
from pathlib import Path

from conftest import print_figure

from repro.api import PolicySpec, cell
from repro.basestation import AcceptAllDormancy, CellSimulator
from repro.rrc.profiles import get_profile

DEVICES = 1000
DURATION_S = 120.0
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _build_devices():
    population = cell(
        devices=DEVICES, apps=("im", "email"), duration=DURATION_S,
        streaming=True, chunk_s=60.0,
    )
    # fixed_4.5s keeps per-packet policy work O(1): the number measured is
    # the kernel's, not MakeIdle's window optimisation.
    return population.build_devices(PolicySpec(scheme="fixed_4.5s"))


def test_engine_throughput_1k_device_cell(benchmark):
    simulator = CellSimulator(get_profile("att_hspa"), AcceptAllDormancy())

    # Pass 1 — throughput, untraced (tracemalloc costs several x).
    start = time.perf_counter()
    result = simulator.run(_build_devices())
    elapsed = time.perf_counter() - start

    # Pass 2 — Python-heap peak under tracemalloc.
    tracemalloc.start()
    CellSimulator(get_profile("att_hspa"), AcceptAllDormancy()).run(
        _build_devices()
    )
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    packets = result.total_packets
    assert packets > 0
    packets_per_sec = packets / elapsed

    # ru_maxrss is KiB on Linux, bytes on macOS.
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak_rss_mb = maxrss / 1024.0 if sys.platform != "darwin" else maxrss / 2**20

    record = {
        "devices": DEVICES,
        "duration_s": DURATION_S,
        "packets": packets,
        "elapsed_s": round(elapsed, 3),
        "packets_per_sec": round(packets_per_sec, 1),
        "events_per_sec_lower_bound": round(packets_per_sec, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "python_heap_peak_mb": round(traced_peak / 2**20, 2),
        "heap_bytes_per_packet": round(traced_peak / packets, 1),
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")

    print_figure(
        "Engine throughput — 1k-device streamed cell",
        "\n".join(f"{key}: {value}" for key, value in record.items())
        + f"\n(written to {BENCH_PATH.name})",
    )

    # Streaming keeps Python-heap peak far below one-materialised-trace-
    # per-device territory (~1 KB+/packet); allow generous slack for
    # interpreter noise so the assertion stays robust on CI boxes.
    assert traced_peak / packets < 800.0, (
        f"streamed cell allocated {traced_peak / packets:.0f} B/packet — "
        "memory no longer bounded by active devices?"
    )

    # One timed replay for the pytest-benchmark report.
    benchmark.pedantic(
        lambda: CellSimulator(get_profile("att_hspa")).run(_build_devices()),
        rounds=1, iterations=1,
    )
