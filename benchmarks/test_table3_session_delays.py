"""Table 3: mean and median MakeActive session delays per carrier.

The paper reports mean delays of 4.6-5.1 s (and medians slightly lower)
introduced by MakeIdle+MakeActive across the four carriers — the price paid
for bringing the signalling overhead back to the status-quo level.  This
benchmark regenerates the table (learning variant, pooled over users).
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import carrier_comparison, format_table
from repro.rrc import CARRIER_ORDER, get_profile

HOURS_PER_DAY = 0.4
USERS = (1, 2, 3)


def test_table3_session_delays(benchmark):
    rows = run_once(
        benchmark,
        carrier_comparison,
        carriers=CARRIER_ORDER,
        population="verizon_3g",
        hours_per_day=HOURS_PER_DAY,
        seed=0,
        window_size=100,
        users=USERS,
    )

    table_rows = []
    for carrier in CARRIER_ORDER:
        row = rows[carrier]
        table_rows.append(
            [
                get_profile(carrier).name,
                row.mean_delay_s["makeidle+makeactive_learn"],
                row.median_delay_s["makeidle+makeactive_learn"],
                row.mean_delay_s["makeidle+makeactive_fixed"],
                row.median_delay_s["makeidle+makeactive_fixed"],
            ]
        )
    print_figure(
        "Table 3 — MakeActive session delays per carrier (seconds)",
        format_table(
            ["carrier", "learn mean", "learn median", "fixed mean", "fixed median"],
            table_rows,
        ),
    )

    for carrier in CARRIER_ORDER:
        row = rows[carrier]
        learn_mean = row.mean_delay_s["makeidle+makeactive_learn"]
        fixed_mean = row.mean_delay_s["makeidle+makeactive_fixed"]
        # Delays are "a few seconds": above zero, below the 12 s cap, and the
        # learning variant never waits longer than the fixed bound on average.
        assert 0.3 <= learn_mean <= 12.0
        assert learn_mean <= fixed_mean + 0.1
