"""Figure 13: MakeIdle error rates versus the sliding-window size n.

The paper sweeps the number of recent packets used to build the
inter-arrival distribution and finds the false-negative rate roughly
constant while the false-positive rate falls as the window grows; n = 100 is
used everywhere else.  This benchmark reproduces the sweep on one user
trace.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table, window_size_sweep
from repro.rrc import get_profile
from repro.traces import user_trace

WINDOW_SIZES = (10, 25, 50, 100, 200, 400)


def test_fig13_window_size(benchmark):
    profile = get_profile("verizon_3g")
    trace = user_trace("verizon_3g", 2, hours_per_day=0.5, seed=0)
    sweep = run_once(
        benchmark, window_size_sweep, profile, trace, window_sizes=WINDOW_SIZES
    )

    rows = [
        [n, sweep[n].false_switch_percent, sweep[n].missed_switch_percent]
        for n in WINDOW_SIZES
    ]
    print_figure(
        "Figure 13 — MakeIdle FP/FN vs window size n (Verizon 3G, user 2)",
        format_table(["n", "false switch %", "missed switch %"], rows,
                     float_format="{:.2f}"),
    )

    # Larger windows must not increase the error rates, and the paper's
    # operating point (n = 100) must keep both error rates small.  (On our
    # synthetic traces the missed-switch rate also improves with n rather
    # than staying flat; the FP trend matches the paper.)
    assert sweep[400].false_switch_rate <= sweep[10].false_switch_rate + 0.01
    assert sweep[400].missed_switch_rate <= sweep[10].missed_switch_rate + 0.01
    assert sweep[100].false_switch_percent <= 10.0
    assert sweep[100].missed_switch_percent <= 10.0
