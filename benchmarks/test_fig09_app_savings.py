"""Figure 9: energy savings for the seven application categories.

The paper compares the "4.5-second tail", "95 % IAT", MakeIdle, Oracle and
the two MakeIdle+MakeActive combinations on two-hour traces of seven popular
applications.  MakeIdle consistently tracks the Oracle and beats the fixed
baselines; the 95 % IAT scheme gives little or negative savings for News and
IM.  This benchmark regenerates the bar groups on the AT&T 3G profile.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import application_savings, format_grouped_bars
from repro.core import SCHEME_ORDER
from repro.rrc import get_profile
from repro.traces import APPLICATION_NAMES


def test_fig09_app_savings(benchmark):
    profile = get_profile("att_hspa")
    table = run_once(
        benchmark,
        application_savings,
        profile,
        apps=APPLICATION_NAMES,
        duration=1800.0,
        seed=0,
        window_size=100,
    )

    groups = {
        app: {scheme: table[app][scheme].saved_percent for scheme in SCHEME_ORDER}
        for app in APPLICATION_NAMES
    }
    print_figure(
        "Figure 9 — energy saved per application (%, AT&T 3G profile)",
        format_grouped_bars(groups, unit="%"),
    )

    for app in APPLICATION_NAMES:
        per_scheme = table[app]
        assert per_scheme["oracle"].saved_percent >= 0.0
        # MakeIdle must achieve savings close to the Oracle without delaying
        # traffic — wherever there is a meaningful tail to cut at all
        # (the foreground finance ticker has essentially none).
        if per_scheme["oracle"].saved_percent > 5.0:
            assert per_scheme["makeidle"].saved_percent >= (
                0.6 * per_scheme["oracle"].saved_percent
            )

    # The paper's robustness observation: the trained-on-test 95 % IAT scheme
    # helps some applications but is unreliable — for at least one of the
    # seven applications it does clearly worse than MakeIdle.
    weaker_somewhere = any(
        table[app]["p95_iat"].saved_percent
        < table[app]["makeidle"].saved_percent - 5.0
        for app in APPLICATION_NAMES
    )
    assert weaker_somewhere
