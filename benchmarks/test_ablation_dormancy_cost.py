"""Ablation (Section 6.1): sensitivity to the fast-dormancy cost fraction.

Because fast dormancy was not deployed on US carriers, the paper models its
cost as 50 % of the measured radio-off cost and verifies that using 10 %,
20 % or 40 % instead "did not change the results appreciably".  This
benchmark repeats that sweep: the MakeIdle savings across the fractions must
stay within a narrow band.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.rrc import SENSITIVITY_FRACTIONS, dormancy_fraction_sweep, get_profile
from repro.sim import TraceSimulator
from repro.traces import user_trace


def _sweep():
    base_profile = get_profile("att_hspa")
    trace = user_trace("verizon_3g", 1, hours_per_day=0.4, seed=0)
    savings = {}
    for fraction, profile in dormancy_fraction_sweep(base_profile).items():
        simulator = TraceSimulator(profile)
        baseline = simulator.run(trace, StatusQuoPolicy())
        result = simulator.run(trace, MakeIdlePolicy(window_size=100))
        savings[fraction] = 100.0 * result.energy_saved_fraction(baseline)
    return savings


def test_ablation_dormancy_cost(benchmark):
    savings = run_once(benchmark, _sweep)

    rows = [[f"{fraction:.0%}", savings[fraction]] for fraction in SENSITIVITY_FRACTIONS]
    print_figure(
        "Ablation — MakeIdle savings vs fast-dormancy cost fraction (AT&T profile)",
        format_table(["dormancy cost fraction", "energy saved %"], rows),
    )

    values = list(savings.values())
    # Cheaper dormancy can only help, and the overall spread must stay small
    # (the paper: "the results did not change appreciably").
    assert savings[0.1] >= savings[0.5] - 0.5
    assert max(values) - min(values) <= 12.0
    assert min(values) > 30.0
