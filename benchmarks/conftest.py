"""Shared helpers for the benchmark harness.

Every benchmark file reproduces one table or figure of the paper.  Each test
runs the corresponding experiment driver exactly once under
``benchmark.pedantic`` (so ``pytest benchmarks/ --benchmark-only`` reports
how long each experiment takes) and then prints the regenerated rows/series
as a plain-text table so they can be compared with the paper side by side.

The experiment parameters (trace hours, user subsets) are scaled down so the
whole harness completes in a few minutes; the shapes of the results — which
scheme wins, by roughly what factor, where the crossovers fall — are what is
being reproduced, not the absolute joule counts of the authors' testbed.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_figure(title: str, body: str) -> None:
    """Print one reproduced figure with a visually distinct header."""
    bar = "=" * max(20, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


@pytest.fixture
def report():
    """Fixture exposing the figure-printing helper."""
    return print_figure
