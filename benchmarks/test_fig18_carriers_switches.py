"""Figure 18: signalling overhead (state switches) per carrier, normalised.

The number of state switches of each scheme divided by the status quo's.
MakeIdle alone inflates the switch count (at most a few times the status
quo); adding MakeActive pulls it back down towards the status-quo level,
which is the paper's argument that the savings come without extra
signalling load on the network.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import carrier_comparison, format_grouped_bars
from repro.core import SCHEME_ORDER
from repro.rrc import CARRIER_ORDER

HOURS_PER_DAY = 0.4
USERS = (1, 2, 3)


def test_fig18_carriers_switches(benchmark):
    rows = run_once(
        benchmark,
        carrier_comparison,
        carriers=CARRIER_ORDER,
        population="verizon_3g",
        hours_per_day=HOURS_PER_DAY,
        seed=1,
        window_size=100,
        users=USERS,
    )

    groups = {
        carrier: {s: rows[carrier].switches_normalized[s] for s in SCHEME_ORDER}
        for carrier in CARRIER_ORDER
    }
    print_figure(
        "Figure 18 — state switches normalised by status quo, per carrier",
        format_grouped_bars(groups, float_format="{:.2f}"),
    )

    for carrier in CARRIER_ORDER:
        normalized = rows[carrier].switches_normalized
        # MakeIdle's inflation is bounded (paper: at most ~3-5x).
        assert normalized["makeidle"] <= 6.0
        # MakeActive (either variant) reduces the overhead relative to
        # MakeIdle alone.
        assert normalized["makeidle+makeactive_fixed"] <= normalized["makeidle"] + 1e-9
        assert normalized["makeidle+makeactive_learn"] <= normalized["makeidle"] + 1e-9
        # The Oracle never switches more often than MakeIdle does.
        assert normalized["oracle"] <= normalized["makeidle"] + 1e-9
