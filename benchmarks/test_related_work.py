"""Related-work comparison (paper Section 7) run through the same simulator.

The paper argues qualitatively against three prior approaches; this
benchmark makes the comparison quantitative on a shared workload:

* TOP needs application hints, and its savings degrade with hint accuracy;
* TailEnder reaches good savings only with deadlines of minutes, not
  seconds;
* MakeIdle (no application changes, no long delays) stays close to the
  Oracle bound.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.core import (
    MakeIdlePolicy,
    OraclePolicy,
    StatusQuoPolicy,
    TailEnderPolicy,
    TailTheftPolicy,
    TopHintPolicy,
)
from repro.rrc import get_profile
from repro.sim import TraceSimulator
from repro.traces import generate_mixed_trace


def _compare():
    profile = get_profile("att_hspa")
    trace = generate_mixed_trace(
        ["email", "im", "news"], duration=2400.0, seed=5
    )
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())

    schemes = {
        "oracle": OraclePolicy(),
        "makeidle": MakeIdlePolicy(window_size=100),
        "top (hints 100%)": TopHintPolicy(hint_accuracy=1.0),
        "top (hints 60%)": TopHintPolicy(hint_accuracy=0.6),
        "tailender (600s deadline)": TailEnderPolicy(deadline_s=600.0),
        "tailtheft (60s timeout)": TailTheftPolicy(timeout_s=60.0),
    }
    table = {}
    for label, policy in schemes.items():
        result = simulator.run(trace, policy)
        delayed = [d for d in result.delays if d > 0.0]
        table[label] = (
            100.0 * result.energy_saved_fraction(baseline),
            result.switches_normalized(baseline),
            max(delayed) if delayed else 0.0,
        )
    return table


def test_related_work_comparison(benchmark):
    table = run_once(benchmark, _compare)

    rows = [
        [label, saved, switches, delay]
        for label, (saved, switches, delay) in table.items()
    ]
    print_figure(
        "Related work — savings / switches / worst-case delay on a mixed background workload",
        format_table(
            ["scheme", "energy saved %", "switches vs SQ", "max delay (s)"], rows
        ),
    )

    perfect_top = table["top (hints 100%)"][0]
    degraded_top = table["top (hints 60%)"][0]
    # Imperfect hints cannot beat perfect hints.
    assert degraded_top <= perfect_top + 1.0
    # MakeIdle achieves savings without delaying any traffic...
    assert table["makeidle"][2] == 0.0
    # ...whereas TailEnder's savings come with multi-minute delays.
    assert table["tailender (600s deadline)"][2] > 60.0
    # The Oracle remains the no-delay upper bound for MakeIdle.
    assert table["makeidle"][0] <= table["oracle"][0] + 1.0
