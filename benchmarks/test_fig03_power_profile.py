"""Figure 3: measured power over one radio state-switch cycle.

The paper's oscillograms show the power levels of the different RRC states
on an HTC Vivid (AT&T 3G) and a Galaxy Nexus (Verizon LTE): the transfer
spike, the Cell_DCH / RRC_CONNECTED tail, the Cell_FACH tail (AT&T only) and
the near-zero idle floor, with the transitions at the measured inactivity
timers.  This benchmark reconstructs the same power-versus-time step
function from a single simulated burst and prints it as a coarse text plot.
"""

from __future__ import annotations

import pytest
from conftest import print_figure, run_once

from repro.core import StatusQuoPolicy
from repro.rrc import get_profile
from repro.sim import TraceSimulator, build_power_trace
from repro.traces import Direction, Packet, PacketTrace


def _one_burst_power(profile_key: str):
    profile = get_profile(profile_key)
    trace = PacketTrace(
        [
            Packet(0.0, 300, Direction.UPLINK),
            Packet(0.4, 1400, Direction.DOWNLINK),
            Packet(0.8, 1400, Direction.DOWNLINK),
        ],
        name="one-burst",
    )
    result = TraceSimulator(profile, trailing_time=profile.total_inactivity_timeout + 5.0).run(
        trace, StatusQuoPolicy()
    )
    return profile, build_power_trace(profile, result.intervals, result.effective_trace)


def _render(profile, power) -> str:
    lines = []
    peak = max(s.power_w for s in power.samples)
    for time, value in power.sample_grid(step=1.0):
        bar = "#" * int(round(40 * value / peak)) if peak > 0 else ""
        lines.append(f"t={time:5.1f}s  {value * 1000.0:7.0f} mW  {bar}")
    return "\n".join(lines)


@pytest.mark.parametrize("carrier", ["att_hspa", "verizon_lte"])
def test_fig03_power_profile(benchmark, carrier):
    profile, power = run_once(benchmark, _one_burst_power, carrier)
    print_figure(
        f"Figure 3 — power profile over one state-switch cycle ({profile.name})",
        _render(profile, power),
    )

    # The profile must show the paper's plateaus: transfer at the bulk power,
    # tail at P_t1, then (AT&T only) P_t2, then ~0.
    assert power.power_at(0.6) == pytest.approx(profile.power_recv_w)
    assert power.power_at(profile.t1 / 2 + 1.0) == pytest.approx(profile.power_active_w)
    if profile.has_high_idle_state:
        assert power.power_at(profile.t1 + profile.t2 / 2) == pytest.approx(
            profile.power_high_idle_w
        )
    assert power.power_at(profile.total_inactivity_timeout + 3.0) == pytest.approx(0.0)
