"""Figure 16: the learned delay bound as MakeActive's learning proceeds.

The paper plots the delay value proposed by the bank-of-experts learner and
the number of buffered bursts per iteration: because the loss rewards
batching, the learned delay falls as the number of bursts that can be
buffered rises.  This benchmark regenerates the two series on a multi-
application workload.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table, learning_curve
from repro.rrc import get_profile
from repro.traces import generate_mixed_trace


def test_fig16_learning_curve(benchmark):
    profile = get_profile("att_hspa")
    trace = generate_mixed_trace(
        ["im", "email", "news", "microblog"], duration=3600.0, seed=2
    )
    records = run_once(benchmark, learning_curve, profile, trace, window_size=100)
    assert records, "the learning MakeActive never ran an iteration"

    rows = [
        [r.iteration, r.delay_used, r.buffered_sessions, r.mean_session_delay]
        for r in records[:30]
    ]
    print_figure(
        "Figure 16 — learned delay and buffered bursts per iteration (first 30)",
        format_table(
            ["iteration", "delay proposed (s)", "buffered bursts", "mean delay (s)"],
            rows,
        ),
    )

    # The learner starts from the uniform prior (mid-grid, ~6.5 s) and adapts
    # downward when batching opportunities are scarce; the proposed delay
    # must change over time and stay within the expert grid.
    delays = [r.delay_used for r in records]
    assert all(1.0 - 1e-9 <= d <= 12.0 + 1e-9 for d in delays)
    if len(records) >= 10:
        early = sum(delays[:5]) / 5
        late = sum(delays[-5:]) / 5
        assert abs(late - early) > 0.05
    # Buffered-burst counts are positive integers.
    assert all(r.buffered_sessions >= 1 for r in records)
