"""Figure 14: the waiting time chosen by MakeIdle over the course of a trace.

Unlike the fixed 4.5 s and 95 % IAT baselines, MakeIdle's waiting time is
chosen dynamically per packet; the paper plots an example series from a
Verizon 3G user's trace where t_wait moves between roughly 0.2 and 1.6
seconds.  This benchmark regenerates the series and summarises its range.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table, twait_series
from repro.energy import TailEnergyModel
from repro.rrc import get_profile
from repro.traces import user_trace


def test_fig14_twait_series(benchmark):
    profile = get_profile("verizon_3g")
    trace = user_trace("verizon_3g", 1, hours_per_day=0.5, seed=0)
    series = run_once(benchmark, twait_series, profile, trace, window_size=100)

    waits = [(d.time, d.wait) for d in series if d.wait is not None]
    assert waits, "MakeIdle never chose to switch on this trace"

    # Print a decimated view of the series (every k-th decision).
    step = max(1, len(waits) // 40)
    rows = [[f"{t:.1f}", w] for t, w in waits[::step]]
    print_figure(
        "Figure 14 — MakeIdle waiting time over one Verizon 3G trace (sampled)",
        format_table(["time (s)", "t_wait (s)"], rows, float_format="{:.3f}"),
    )

    values = [w for _, w in waits]
    threshold = TailEnergyModel(profile).t_threshold
    summary = [
        ["min", min(values)],
        ["mean", sum(values) / len(values)],
        ["max", max(values)],
        ["t_threshold", threshold],
    ]
    print_figure("Figure 14 — t_wait summary", format_table(["stat", "seconds"], summary))

    # The waiting time is adaptive (it actually varies) and always bounded by
    # the offline threshold, as in the paper's plot.
    assert max(values) <= threshold + 1e-9
    assert max(values) - min(values) > 0.05
