"""Ablation: MakeIdle's sliding-window predictor vs alternative predictors.

The paper builds its inter-arrival distribution from a uniform sliding
window of the last n packets (Section 4.2).  This benchmark swaps that
component for an exponentially-decayed histogram and for a parametric
exponential-rate model and compares the energy savings, quantifying how much
of MakeIdle's gain comes from the specific predictor choice versus the
wait-then-switch decision rule around it.
"""

from __future__ import annotations

from conftest import print_figure, run_once

from repro.analysis import format_table
from repro.core import MakeIdlePolicy, StatusQuoPolicy
from repro.learning.predictors import (
    DecayedHistogramPredictor,
    ExponentialRatePredictor,
    PredictiveMakeIdlePolicy,
    SlidingWindowPredictor,
)
from repro.rrc import get_profile
from repro.sim import TraceSimulator
from repro.traces import user_trace


def _compare():
    profile = get_profile("att_hspa")
    trace = user_trace("verizon_3g", 1, hours_per_day=0.4, seed=0)
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())

    policies = {
        "reference makeidle (window)": MakeIdlePolicy(window_size=100),
        "sliding window predictor": PredictiveMakeIdlePolicy(
            SlidingWindowPredictor(window_size=100)
        ),
        "decayed histogram predictor": PredictiveMakeIdlePolicy(
            DecayedHistogramPredictor()
        ),
        "exponential rate predictor": PredictiveMakeIdlePolicy(
            ExponentialRatePredictor()
        ),
    }
    savings = {}
    for label, policy in policies.items():
        result = simulator.run(trace, policy)
        savings[label] = 100.0 * result.energy_saved_fraction(baseline)
    return savings


def test_ablation_predictors(benchmark):
    savings = run_once(benchmark, _compare)

    rows = [[label, value] for label, value in savings.items()]
    print_figure(
        "Ablation — MakeIdle savings under different gap predictors (AT&T profile)",
        format_table(["predictor", "energy saved %"], rows),
    )

    # The pluggable sliding-window variant must track the reference MakeIdle.
    assert abs(
        savings["reference makeidle (window)"] - savings["sliding window predictor"]
    ) <= 12.0
    # Every predictor saves a meaningful amount on this background workload.
    assert all(value > 20.0 for value in savings.values())
