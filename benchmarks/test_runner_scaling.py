"""Micro-benchmark: runner backends and baseline caching of the sweep API.

Two claims of the unified experiment API are measured here:

* **Parallel execution** — the same fixed-seed plan executed by
  ``SerialRunner`` and ``ProcessPoolRunner`` yields byte-identical records;
  both wall-times are printed so the speed-up (on multi-core hosts) is part
  of the recorded perf trajectory.  On single-core CI boxes the pool merely
  breaks even, so the assertion is equivalence, not speed.
* **Baseline caching** — successive sweeps sharing a runner never
  re-simulate the status-quo baseline (or any other duplicated cell): the
  second driver's status-quo rows are all cache hits, with zero duplicate
  simulations, asserted via the cache's hit/miss counters.
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_figure

from repro.api import ProcessPoolRunner, ResultCache, SerialRunner, plan

APPS = ("im", "email", "news")
CARRIERS = ("att_hspa", "verizon_lte")
DURATION = 900.0


def _grid():
    return (plan()
            .apps(*APPS, duration=DURATION)
            .carriers(*CARRIERS)
            .policies("status_quo", "makeidle", "oracle"))


def test_serial_vs_parallel_equivalence_and_walltime(benchmark):
    sweep = _grid()

    start = time.perf_counter()
    serial_runs = SerialRunner().run(sweep)
    serial_s = time.perf_counter() - start

    jobs = max(2, min(4, os.cpu_count() or 1))
    start = time.perf_counter()
    parallel_runs = ProcessPoolRunner(jobs=jobs).run(sweep)
    parallel_s = time.perf_counter() - start

    # Identical down to the byte: same records, same order, same floats.
    assert (json.dumps(serial_runs.to_records())
            == json.dumps(parallel_runs.to_records()))

    print_figure(
        "Runner scaling — serial vs process pool",
        f"grid cells:      {len(serial_runs)}\n"
        f"serial:          {serial_s:.2f} s\n"
        f"pool (jobs={jobs}):  {parallel_s:.2f} s\n"
        f"speedup:         {serial_s / parallel_s:.2f}x "
        f"(cores: {os.cpu_count()})",
    )

    # Keep one timed run in the benchmark report for the perf trajectory.
    benchmark.pedantic(
        SerialRunner().run, args=(sweep,), rounds=1, iterations=1
    )


def test_cache_eliminates_duplicate_status_quo_runs():
    cache = ResultCache()
    runner = SerialRunner(cache=cache)

    # Driver 1: compare MakeIdle against the status quo.
    first = runner.run(_grid())
    cells = len(APPS) * len(CARRIERS)
    assert first.cache_stats.misses == cells * 3
    assert first.cache_stats.hits == 0

    # Driver 2: a different scheme comparison over the same traces/carriers.
    # Every status-quo and makeidle cell is served from the cache — the
    # baseline is simulated once per (trace, carrier), not once per driver.
    second_plan = (plan()
                   .apps(*APPS, duration=DURATION)
                   .carriers(*CARRIERS)
                   .policies("status_quo", "makeidle", "fixed_4.5s"))
    second = runner.run(second_plan)
    assert second.cache_stats.hits == cells * 2          # status_quo + makeidle
    assert second.cache_stats.misses == cells            # only fixed_4.5s is new
    duplicate_status_quo = [
        r for r in second if r.scheme == "status_quo" and not r.from_cache
    ]
    assert duplicate_status_quo == []

    # Replaying either plan is now pure cache: zero new simulations.
    replay = runner.run(_grid())
    assert replay.cache_stats.misses == 0
    assert replay.cache_stats.hits == len(replay)
