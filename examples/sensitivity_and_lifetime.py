#!/usr/bin/env python3
"""Sensitivity analysis and battery-lifetime projection.

The paper's energy model rests on one acknowledged approximation — fast
dormancy is charged at 50 % of the measured radio-off cost — and its
conclusion translates the savings into battery hours.  This example
reproduces both analyses end to end:

1. sweep the dormancy-cost fraction over 10/20/40/50 % (Section 6.1) and
   show that the MakeIdle savings barely move;
2. sweep the network inactivity timer to see why the fixed "4.5-second tail"
   proposal is a blunt instrument;
3. project the measured savings into battery-lifetime hours for a Nexus S
   (Section 8's "about 4.8 hours" estimate).

Run it with::

    python examples/sensitivity_and_lifetime.py
"""

from __future__ import annotations

from repro import MakeIdlePolicy, StatusQuoPolicy, TraceSimulator, get_profile
from repro.analysis import format_table
from repro.energy import (
    NEXUS_S_BATTERY,
    lifetime_extension,
    paper_lifetime_estimate,
)
from repro.energy.sensitivity import (
    dormancy_cost_sensitivity,
    inactivity_timer_sweep,
)
from repro.traces import user_trace


def main() -> None:
    profile = get_profile("att_hspa")
    trace = user_trace("verizon_3g", user_id=2, hours_per_day=0.5, seed=1)
    print(f"Workload: {trace.name} — {len(trace)} packets over "
          f"{trace.duration / 60:.0f} minutes, carrier {profile.name}\n")

    # 1. Fast-dormancy cost sensitivity (Section 6.1).
    sweep = dormancy_cost_sensitivity(trace, profile, MakeIdlePolicy)
    rows = [
        [f"{point.parameter:.0%}", 100.0 * point.energy_saved_fraction,
         point.switch_count]
        for point in sweep.points
    ]
    print(format_table(
        ["dormancy cost fraction", "MakeIdle saved %", "switches"], rows,
        title="Sensitivity to the assumed fast-dormancy cost",
    ))
    print(f"spread across fractions: "
          f"{100.0 * sweep.max_savings_spread:.1f} percentage points "
          "(the paper: 'did not change appreciably')\n")

    # 2. What a fixed inactivity timer can and cannot do.
    timer_sweep = inactivity_timer_sweep(trace, profile, (1.0, 2.0, 4.5, 8.0, 16.6))
    rows = [
        [f"{point.parameter:.1f}", 100.0 * point.energy_saved_fraction,
         point.switch_count]
        for point in timer_sweep.points
    ]
    print(format_table(
        ["inactivity timeout (s)", "saved vs deployed timers %", "switches"], rows,
        title="Fixed-timer sweep (the '4.5-second tail' family)",
    ))
    print("Shorter timers save energy but multiply state switches; the"
          " traffic-aware policies avoid that trade-off.\n")

    # 3. Battery-lifetime projection (Section 8).
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())
    makeidle = simulator.run(trace, MakeIdlePolicy())
    saving = makeidle.energy_saved_fraction(baseline)
    projection = lifetime_extension(
        NEXUS_S_BATTERY, baseline.breakdown, makeidle.breakdown,
        duration_s=trace.duration,
    )
    print(f"MakeIdle saving on this workload: {saving:.0%}")
    print(f"Paper's method: {paper_lifetime_estimate(max(0.0, min(saving, 1.0))):.1f} "
          "hours of lifetime recovered (of the 7.3-hour 3G penalty)")
    print(f"Battery model:  {projection.baseline_hours:.1f} h -> "
          f"{projection.scheme_hours:.1f} h "
          f"(+{projection.extension_hours:.1f} h)")


if __name__ == "__main__":
    main()
