#!/usr/bin/env python3
"""Analyse a real tcpdump capture: how much radio energy would MakeIdle save?

The paper's control module watches the device's own packet stream, so any
``tcpdump``/``Wireshark`` capture taken on a phone (or tethered laptop) can
be analysed directly.  This example:

1. loads a pcap file (or, if none is given, synthesises a mixed background
   workload and round-trips it through the library's own pcap writer so the
   full external-data path is exercised),
2. prints the trace's burst structure and inter-arrival statistics — the
   inputs the algorithms reason about, and
3. reports the energy and signalling impact of MakeIdle and
   MakeIdle+MakeActive on the carrier of your choice.

Run it with::

    python examples/pcap_analysis.py [capture.pcap] [device_ip] [carrier]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import StatusQuoPolicy, TraceSimulator, read_pcap, write_pcap
from repro.analysis import format_table
from repro.core import CombinedPolicy, LearningMakeActive, MakeIdlePolicy
from repro.energy import TailEnergyModel
from repro.metrics import delay_stats_for_result
from repro.rrc import get_profile
from repro.traces import generate_mixed_trace, segment_bursts, summarize_trace


def load_trace(argv: list[str]):
    """Load the capture named on the command line, or build a demo capture."""
    if len(argv) > 1:
        path = Path(argv[1])
        device = argv[2] if len(argv) > 2 else None
        print(f"Reading capture {path} (device address: {device or 'auto-detect'})")
        return read_pcap(path, device_address=device)
    # No capture supplied: synthesise one and round-trip it through pcap so
    # the example still demonstrates the real file-based workflow.
    print("No capture supplied — generating a demo workload and writing it to a pcap.")
    trace = generate_mixed_trace(["im", "email", "news"], duration=1800.0, seed=11)
    with tempfile.NamedTemporaryFile(suffix=".pcap", delete=False) as handle:
        write_pcap(handle.name, trace)
        print(f"Demo capture written to {handle.name}")
        return read_pcap(handle.name, device_address="10.0.0.2")


def main() -> None:
    trace = load_trace(sys.argv)
    carrier = sys.argv[3] if len(sys.argv) > 3 else "verizon_3g"
    profile = get_profile(carrier)
    threshold = TailEnergyModel(profile).t_threshold

    # 2. Workload characteristics.
    summary = summarize_trace(trace)
    bursts = segment_bursts(trace, gap_threshold=threshold)
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["packets", summary.packet_count],
            ["duration (s)", summary.duration],
            ["total bytes", summary.total_bytes],
            ["median inter-arrival (s)", summary.median_inter_arrival],
            ["95th pct inter-arrival (s)", summary.p95_inter_arrival],
            [f"bursts (gap > t_threshold = {threshold:.2f}s)", len(bursts)],
        ],
        title="Capture summary",
    ))

    # 3. Energy impact on the chosen carrier.
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())
    makeidle = simulator.run(trace, MakeIdlePolicy(window_size=100))
    combined = simulator.run(
        trace,
        CombinedPolicy(MakeIdlePolicy(window_size=100), LearningMakeActive()),
    )
    delays = delay_stats_for_result(combined, only_delayed=True)

    print()
    print(format_table(
        ["policy", "energy (J)", "saved (%)", "switches / status quo",
         "mean delay (s)"],
        [
            ["status_quo", baseline.total_energy_j, 0.0, 1.0, 0.0],
            ["makeidle", makeidle.total_energy_j,
             100.0 * makeidle.energy_saved_fraction(baseline),
             makeidle.switches_normalized(baseline), 0.0],
            ["makeidle+makeactive", combined.total_energy_j,
             100.0 * combined.energy_saved_fraction(baseline),
             combined.switches_normalized(baseline), delays.mean],
        ],
        title=f"Impact on {profile.name}",
    ))
    print(
        "\nTail energy under the status quo: "
        f"{baseline.breakdown.tail_j:.1f} J "
        f"({100.0 * baseline.breakdown.fraction(baseline.breakdown.tail_j):.0f}% of total) — "
        "this is the portion the traffic-aware policies recover."
    )


if __name__ == "__main__":
    main()
