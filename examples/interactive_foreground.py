#!/usr/bin/env python3
"""Keeping interactive applications snappy while MakeActive batches the rest.

MakeActive deliberately delays session starts, which is only acceptable for
background traffic.  Section 6.5 of the paper sketches the deployment
answer: keep a list of delay-sensitive applications and disable MakeActive
whenever one of them is in the foreground.  This example shows that
mechanism working:

* a mixed workload of background e-mail/IM sync and an interactive social
  session in the middle;
* the plain MakeIdle+MakeActive controller delays everything it can;
* the interactive-aware wrapper suppresses delays while the social app is
  in the foreground (and for the social app's own sessions), at a small
  energy cost.

Run it with::

    python examples/interactive_foreground.py
"""

from __future__ import annotations

from repro import StatusQuoPolicy, TraceSimulator, get_profile
from repro.analysis import format_table
from repro.core import (
    CombinedPolicy,
    FixedDelayMakeActive,
    InteractiveAwarePolicy,
    MakeIdlePolicy,
)
from repro.core.interactive import ForegroundInterval, ForegroundSchedule
from repro.traces import generate_application_trace, merge_traces


def build_workload():
    """Background email+IM all along, an interactive social burst in the middle."""
    email = generate_application_trace("email", duration=2400.0, seed=1)
    im = generate_application_trace("im", duration=2400.0, seed=2)
    social = generate_application_trace("social", duration=600.0, seed=3)
    social = social.shifted(900.0)  # the user opens the app 15 minutes in
    return merge_traces([email, im, social], name="mixed-day"), (900.0, 1500.0)


def controller() -> CombinedPolicy:
    return CombinedPolicy(
        MakeIdlePolicy(window_size=100),
        FixedDelayMakeActive(delay_bound=8.0),
        name="makeidle+makeactive",
    )


def main() -> None:
    profile = get_profile("verizon_3g")
    trace, (fg_start, fg_end) = build_workload()
    schedule = ForegroundSchedule([ForegroundInterval(fg_start, fg_end, "social")])
    simulator = TraceSimulator(profile)

    baseline = simulator.run(trace, StatusQuoPolicy())
    plain = simulator.run(trace, controller())
    aware_policy = InteractiveAwarePolicy(controller(), schedule=schedule)
    aware = simulator.run(trace, aware_policy)

    def delays_in_foreground(result):
        return [
            d.delay
            for d in result.session_delays
            if fg_start <= d.arrival_time <= fg_end and d.delay > 0
        ]

    rows = []
    for label, result in (("makeidle+makeactive", plain),
                          ("interactive-aware wrapper", aware)):
        fg_delays = delays_in_foreground(result)
        rows.append(
            [
                label,
                100.0 * result.energy_saved_fraction(baseline),
                result.switches_normalized(baseline),
                result.mean_delay,
                max(fg_delays) if fg_delays else 0.0,
            ]
        )
    print(f"Workload: {trace.name}, carrier {profile.name}; the social app is "
          f"in the foreground from t={fg_start:.0f}s to t={fg_end:.0f}s\n")
    print(format_table(
        [
            "controller",
            "energy saved %",
            "switches vs SQ",
            "mean session delay (s)",
            "max delay during foreground (s)",
        ],
        rows,
        title="Disabling MakeActive around interactive use",
    ))
    print(f"\nDelays suppressed by the wrapper: {aware_policy.suppressed_delays}")
    print("The wrapper gives up a little batching (slightly lower savings, a few\n"
          "more switches) in exchange for never delaying the interactive session.")


if __name__ == "__main__":
    main()
