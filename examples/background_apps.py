#!/usr/bin/env python3
"""Background applications: which ones waste the most tail energy, and how
much of it can a traffic-aware policy recover?

This is the scenario that motivates the paper's introduction (Figure 1): a
phone full of background applications — news, IM heartbeats, micro-blog
polling, ad refreshes, e-mail sync — keeps the 3G radio in its high-power
states even though it rarely transfers data.  The example:

* generates a two-hour trace for each of the seven application categories,
* shows the status-quo energy breakdown per application (how much goes to
  data versus the DCH/FACH timers versus state switches), and
* compares the energy saved by the fixed 4.5-second tail, MakeIdle and the
  Oracle for each application.

Run it with::

    python examples/background_apps.py [carrier]

where ``carrier`` is one of tmobile_3g, att_hspa, verizon_3g, verizon_lte
(default att_hspa).
"""

from __future__ import annotations

import sys

from repro import MakeIdlePolicy, OraclePolicy, StatusQuoPolicy, TraceSimulator
from repro.analysis import format_table
from repro.core import FixedTimerPolicy
from repro.rrc import get_profile
from repro.traces import APPLICATION_NAMES, generate_application_trace

TRACE_DURATION = 7200.0  # two hours, as in the paper's application traces


def main() -> None:
    carrier = sys.argv[1] if len(sys.argv) > 1 else "att_hspa"
    profile = get_profile(carrier)
    simulator = TraceSimulator(profile)
    print(f"Carrier profile: {profile.name}\n")

    breakdown_rows = []
    savings_rows = []
    for app in APPLICATION_NAMES:
        trace = generate_application_trace(app, duration=TRACE_DURATION, seed=1)
        baseline = simulator.run(trace, StatusQuoPolicy())
        b = baseline.breakdown
        breakdown_rows.append(
            [
                app,
                len(trace),
                b.total_j,
                100.0 * b.fraction(b.data_j),
                100.0 * b.fraction(b.active_tail_j),
                100.0 * b.fraction(b.high_idle_tail_j),
                100.0 * b.fraction(b.switch_j),
            ]
        )

        fixed = simulator.run(trace, FixedTimerPolicy(4.5))
        makeidle = simulator.run(trace, MakeIdlePolicy(window_size=100))
        oracle = simulator.run(trace, OraclePolicy())
        savings_rows.append(
            [
                app,
                100.0 * fixed.energy_saved_fraction(baseline),
                100.0 * makeidle.energy_saved_fraction(baseline),
                100.0 * oracle.energy_saved_fraction(baseline),
                makeidle.switches_normalized(baseline),
            ]
        )

    print(
        format_table(
            ["app", "packets", "total J", "data %", "DCH tail %", "FACH tail %",
             "switch %"],
            breakdown_rows,
            title="Status-quo energy breakdown per application "
                  "(cf. paper Figure 1)",
            float_format="{:.1f}",
        )
    )
    print()
    print(
        format_table(
            ["app", "4.5s tail saved %", "MakeIdle saved %", "Oracle saved %",
             "MakeIdle switches / status quo"],
            savings_rows,
            title="Energy recovered by traffic-aware policies "
                  "(cf. paper Figure 9)",
            float_format="{:.1f}",
        )
    )


if __name__ == "__main__":
    main()
