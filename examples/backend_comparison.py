#!/usr/bin/env python3
"""Backend comparison: the numpy vector kernel vs the scalar reference.

``engine="vector"`` (docs/DESIGN.md §2.3) batches per-UE accounting into
numpy folds under a byte-identity contract: same floats, same order, any
workload.  This example demonstrates the two properties that contract
buys you:

1. **Speedup where it matters** — on a dense workload (social/news: many
   packets per device between radio-idle gaps) the fold path is several
   times faster than the scalar kernel.  The traces are materialised
   once, outside the timed region, so the comparison times the kernels
   and not the workload generator.
2. **Backends share the cache** — because results are byte-identical,
   the engine is excluded from cache keys: a plan swept over
   ``.engines("scalar", "vector")`` simulates each grid point once and
   serves the twin from cache.

Run it with::

    python examples/backend_comparison.py

(Seconds on any machine with numpy; without numpy the vector backend
falls back to the scalar path and the speedup reads ~1×.)
"""

from __future__ import annotations

import time

from repro.api import PolicySpec, ProcessPoolRunner, cell, plan
from repro.basestation import AcceptAllDormancy, CellSimulator
from repro.basestation.cell import DeviceSpec
from repro.rrc.profiles import get_profile
from repro.sim.vector_engine import numpy_available
from repro.traces import PacketTrace
from repro.traces.streaming import stream_application_packets

DEVICES = 400
APPS = ("social", "news")
DURATION_S = 600.0


def _dense_population() -> list[DeviceSpec]:
    """Materialised chatty traces — built once, outside any timed region."""
    policy_spec = PolicySpec(scheme="fixed_4.5s").resolved(100)
    return [
        DeviceSpec(
            device_id=index,
            trace=PacketTrace(stream_application_packets(
                APPS[index % len(APPS)],
                duration=DURATION_S, seed=index, chunk_s=150.0,
            )),
            policy=policy_spec.build(),
        )
        for index in range(DEVICES)
    ]


def main() -> None:
    if not numpy_available():
        print("numpy unavailable: engine='vector' will fall back to the "
              "scalar path (speedup ~1x).\n")

    print(f"materialising {DEVICES} dense devices "
          f"({DURATION_S / 60:.0f} min of social/news traffic each)...")
    devices = _dense_population()
    packets = sum(len(spec.trace) for spec in devices)

    profile = get_profile("att_hspa")
    results, elapsed = {}, {}
    for engine in ("scalar", "vector"):
        simulator = CellSimulator(profile, AcceptAllDormancy(),
                                  engine=engine)
        start = time.perf_counter()
        results[engine] = simulator.run(devices)
        elapsed[engine] = time.perf_counter() - start
        print(f"  {engine:>6}: {packets / elapsed[engine]:>10,.0f} "
              f"packets/s  ({elapsed[engine]:.2f} s, "
              f"{results[engine].vector_devices} devices vectorized)")

    assert results["vector"] == results["scalar"], (
        "byte-identity contract broken — see docs/DESIGN.md §2.3"
    )
    print(f"  identical results, speedup "
          f"{elapsed['scalar'] / elapsed['vector']:.2f}x\n")

    # The same contract is why both backends share one cache entry: a
    # plan swept over .engines() simulates each grid point exactly once.
    sweep = (plan()
             .cells(cell(devices=50, apps=("im", "email"),
                         duration=300.0))
             .carriers("att_hspa")
             .policies("status_quo", "fixed_4.5s")
             .engines("scalar", "vector")
             .labelled("backend cache sharing"))
    runs = ProcessPoolRunner(jobs=1).run(sweep)
    stats = runs.cache_stats
    print(f"plan of {len(runs)} runs across both engines: "
          f"{stats.misses} simulated, {stats.hits} served from cache")
    for engine, group in sorted(runs.group_by("engine").items()):
        cached = sum(1 for record in group if record.from_cache)
        print(f"  engine={engine}: {len(group)} runs, {cached} from cache")


if __name__ == "__main__":
    main()
