#!/usr/bin/env python3
"""Metro commuter study: a 2-cell suburb/downtown day with handovers.

Single-cell sweeps treat every UE as pinned to one base station for the
whole run.  The metro layer drops that assumption: the ``commuter_2cell``
preset moves 70 % of the population from the ``home`` cell to the
congested downtown ``work`` cell in the morning and back in the evening,
each move a mid-stream RRC handover (the departure cell closes the UE's
context with the exact end-of-run float operations; the stream resumes
at the arrival cell — ``docs/DESIGN.md`` §4).  The question a metro
answers that no single cell can: **where** do MakeIdle's savings land
when the population moves between a permissive suburban station and a
load-aware downtown one that denies dormancy under pressure?

This example runs one simulated day at a modest population and prints
the metro-level comparison (energy, handovers, savings) followed by the
per-cell breakdown — watch the ``work`` cell's denial rate eat into the
savings its commuters bring home.

Run it with::

    python examples/metro_commute.py

(A day-long 200-UE metro takes a few minutes single-core; scale DEVICES
down for a quick look.)
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.api import SerialRunner, plan

DEVICES = 200
DURATION_S = 86_400.0  # one full day: both commute legs happen
SHARDS = 2


def main() -> None:
    sweep = (plan()
             .metros("commuter_2cell", devices=DEVICES, duration=DURATION_S)
             .carriers("verizon_3g")
             .policies("status_quo", "makeidle")
             .shards(SHARDS)
             .labelled("metro_commute"))
    print(sweep.describe())

    start = time.perf_counter()
    runs = SerialRunner().run(sweep)
    elapsed = time.perf_counter() - start

    rows = []
    for record in runs.to_records():
        rows.append([
            record["scheme"],
            str(record["devices"]),
            str(record["handovers"]),
            f"{record['energy_j']:.0f}",
            f"{record.get('saved_percent') or 0.0:.1f}",
            f"{100.0 * record['denial_rate']:.1f}",
        ])
    print()
    print(format_table(
        ["scheme", "devices", "handovers", "energy (J)", "saved %",
         "denied %"],
        rows,
    ))

    # Per-cell views: the suburb grants everything; downtown pushes back.
    for record in runs.to_records():
        if record["scheme"] == "status_quo":
            continue
        print()
        print(f"{record['trace']} under {record['scheme']} — per cell:")
        cell_rows = [
            [
                name,
                entry["dormancy"],
                str(entry["visits"]),
                f"{entry['energy_j']:.0f}",
                f"{entry.get('saved_percent') or 0.0:.1f}",
                f"{100.0 * entry['denial_rate']:.1f}",
                f"{100.0 * entry['utilization']:.1f}"
                if entry.get("utilization") is not None else "-",
            ]
            for name, entry in record["cells"].items()
        ]
        print(format_table(
            ["cell", "dormancy", "visits", "energy (J)", "saved %",
             "denied %", "util %"],
            cell_rows,
        ))

    print()
    print(f"{len(runs)} runs in {elapsed:.1f}s")


if __name__ == "__main__":
    main()
