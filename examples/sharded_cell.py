#!/usr/bin/env python3
"""Sharded cell execution: one 10k-device cell across worker processes.

PR 2's event kernel made 10k-device streamed cells *possible* in one
process; this example shows the execution path that makes them *scale*:
the population is partitioned into contiguous device shards, each shard
runs its own kernel in a worker process, and the partial results merge
back into one ``CellResult`` whose per-device records are byte-identical
to the single-process run (for shard-independent base-station policies —
see ``docs/DESIGN.md`` §2.1 for the merge contract and the ``load_aware``
budget-partition approximation).

The sweep declares a shard-count axis of ``(1, SHARDS)`` so the run
reports the single-process reference and the sharded execution side by
side, and then verifies the exactness claim on the returned records.

Run it with::

    python examples/sharded_cell.py

(Scale DEVICES down for a quick look; the speedup column only means much
on a multi-core machine.)
"""

from __future__ import annotations

import os
import time

from repro.analysis import format_table
from repro.api import ProcessPoolRunner, cell, plan

DEVICES = 10_000
SHARDS = 4
APPS = ("im", "email", "news")
DURATION_S = 300.0


def main() -> None:
    population = cell(
        devices=DEVICES,
        apps=APPS,
        duration=DURATION_S,
        name=f"cell{DEVICES}",
        chunk_s=100.0,
    )
    sweep = (
        plan()
        .cells(population)
        .carriers("att_hspa")
        .policies("status_quo", "makeidle")
        .dormancy("accept_all")
        .shards(1, SHARDS)
        .labelled("sharded-cell-demo")
    )
    jobs = min(SHARDS, os.cpu_count() or 1)
    print(sweep.describe())
    print(f"running on a ProcessPoolRunner with {jobs} worker(s)...")

    start = time.perf_counter()
    runs = ProcessPoolRunner(jobs=jobs).run(sweep)
    elapsed = time.perf_counter() - start

    rows = [
        [
            row["scheme"],
            str(row["shards"]),
            f"{row['energy_j']:.0f}",
            f"{row.get('saved_percent', 0.0):.1f}",
            str(row["peak_switches_per_minute"]),
            str(row["peak_active_devices"]),
        ]
        for row in runs.to_records()
    ]
    print(format_table(
        ["scheme", "shards", "energy (J)", "saved %", "peak sw/min",
         "peak active"],
        rows,
    ))
    print(f"total wall time: {elapsed:.1f} s")

    # The exactness claim, verified on the results we just printed:
    # per-device records of the sharded makeidle run match the
    # single-process reference byte for byte.
    by_shards = {
        record.shards: record.result
        for record in runs.records
        if record.scheme == "makeidle"
    }
    assert by_shards[SHARDS].devices == by_shards[1].devices
    print(f"sharded (K={SHARDS}) per-device records are byte-identical "
          "to the single-process run")


if __name__ == "__main__":
    main()
