#!/usr/bin/env python3
"""Scenario study: comparing preset populations at 1000 devices.

A homogeneous cell answers "does MakeIdle scale"; a *scenario* answers the
operator's real questions: what does the scheme buy an office cell versus
a residential one, and what happens during a deployment transition when
only part of the fleet has adopted it?  This example sweeps the four
built-in scenario presets — ``uniform`` (homogeneous control),
``office_day`` and ``evening_peak`` (heterogeneous cohorts under diurnal
traffic shapes) and ``mixed_policy`` (cohorts running *different*
device-side schemes) — at 1000 devices each, and prints both the
cell-level comparison and the per-cohort breakdowns.

Run it with::

    python examples/scenario_study.py

(Takes a few minutes at 1000 devices; scale DEVICES down for a quick
look.)
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.api import SerialRunner, plan

DEVICES = 1000
DURATION_S = 600.0
PRESETS = ("uniform", "office_day", "evening_peak", "mixed_policy")


def main() -> None:
    sweep = (plan()
             .scenarios(*PRESETS, devices=DEVICES, duration=DURATION_S)
             .carriers("att_hspa")
             .policies("status_quo", "makeidle")
             .labelled("scenario_study"))
    print(sweep.describe())

    start = time.perf_counter()
    runs = SerialRunner().run(sweep)
    elapsed = time.perf_counter() - start

    rows = []
    for record in runs.to_records():
        rows.append([
            record["trace"],
            record["scheme"],
            f"{record['energy_j']:.0f}",
            f"{record.get('saved_percent', 0.0):.1f}",
            str(record["switch_count"]),
            str(record["peak_active_devices"]),
            str(record["peak_switches_per_minute"]),
        ])
    print()
    print(format_table(
        ["scenario", "scheme", "energy (J)", "saved %", "switches",
         "peak active", "peak sw/min"],
        rows,
    ))

    # Per-cohort views: who inside each heterogeneous cell actually saves?
    for record in runs.to_records():
        cohorts = record.get("cohorts")
        if not cohorts or record["scheme"] == "status_quo":
            continue
        print()
        print(f"{record['trace']} under {record['scheme']} — per cohort:")
        cohort_rows = [
            [
                label,
                str(entry["devices"]),
                f"{entry['energy_per_device_j']:.1f}",
                f"{entry.get('saved_percent', 0.0):.1f}",
                str(entry["switches"]),
                f"{100.0 * entry['denial_rate']:.1f}",
            ]
            for label, entry in cohorts.items()
        ]
        print(format_table(
            ["cohort", "devices", "J/device", "saved %", "switches",
             "denied %"],
            cohort_rows,
        ))

    stats = runs.cache_stats
    print()
    print(f"{len(runs)} runs in {elapsed:.1f}s "
          f"(simulated {stats.misses}, cache hits {stats.hits})")
    print("Note the mixed_policy cell: the legacy_fleet cohort (pinned to "
          "status_quo) saves nothing, early_adopters save regardless of "
          "the policy axis, and the 'standard' cohort swings with it.")


if __name__ == "__main__":
    main()
