#!/usr/bin/env python3
"""Cell-scale study: 1000 streamed devices against one base station.

The paper's §8 future work asks what happens at the base station when
*many* phones run MakeIdle.  This example answers it at a scale the
pre-kernel simulator could not touch: a 1000-device cell whose workloads
are **streamed** (generated lazily, chunk by chunk), so memory stays
bounded by the device count while the event kernel replays every device's
RRC machine against one shared clock.

The sweep is a plan declaration — population × device scheme ×
base-station dormancy policy — executed through the same
plan → runner → runset lifecycle as the single-UE experiments, with
results cached by population fingerprint.

Run it with::

    python examples/cell_scale.py

(Takes on the order of a minute; scale DEVICES down for a quick look.)
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.api import SerialRunner, cell, dormancy, plan

DEVICES = 1000
APPS = ("im", "email", "news", "microblog")
DURATION_S = 600.0


def main() -> None:
    population = cell(
        devices=DEVICES,
        apps=APPS,
        duration=DURATION_S,
        name=f"cell{DEVICES}",
        streaming=True,       # lazy chunked generation: O(devices) memory
        chunk_s=150.0,
    )
    sweep = (plan()
             .cells(population)
             .carriers("att_hspa")
             .policies("status_quo", "makeidle")
             # Budgets scale with the population: 120 switches/min (the
             # single-cell default) saturates instantly with 1000 phones.
             .dormancy("accept_all",
                       dormancy("rate_limited", 60.0),
                       dormancy("load_aware", 2000),
                       "reject_all")
             .labelled("cell-scale dormancy study"))
    print(sweep.describe())

    start = time.perf_counter()
    runs = SerialRunner().run(sweep)
    elapsed = time.perf_counter() - start

    rows = []
    for record in runs.to_records():
        if record["scheme"] != "makeidle":
            continue
        rows.append(
            [
                record["dormancy"],
                f"{record['energy_j']:.0f}",
                f"{record.get('saved_percent', 0.0):.1f}",
                f"{100.0 * record['denial_rate']:.1f}",
                str(record["peak_switches_per_minute"]),
                str(record["peak_active_devices"]),
                str(record["rrc_messages"]),
            ]
        )
    print(format_table(
        [
            "network dormancy policy",
            "device energy (J)",
            "saved % vs SQ",
            "requests denied %",
            "peak switches/min",
            "peak active",
            "RRC messages",
        ],
        rows,
        title=f"{DEVICES} MakeIdle devices, {DURATION_S / 60:.0f} min of "
              "streamed traffic each",
    ))

    packets = sum(
        len(r.result.devices) and r.result.total_packets
        for r in runs if not r.from_cache
    )
    print(f"\nsimulated {len(runs)} cells ({packets} device-packets) "
          f"in {elapsed:.1f} s — workloads streamed, memory bounded by "
          f"the {DEVICES}-device population, not the packet count")
    print(
        "\n'accept_all' reproduces the paper's assumption at cell scale;\n"
        "'load_aware' caps the signalling storm (peak switches/min) while\n"
        "giving up part of the energy savings, and 'reject_all' shows the\n"
        "pre-Release-7 world where devices cannot release the channel."
    )


if __name__ == "__main__":
    main()
