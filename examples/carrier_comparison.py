#!/usr/bin/env python3
"""Carrier comparison: replay one user's traffic on every carrier, in parallel.

Carriers configure very different inactivity timers (T-Mobile holds the
high-power FACH state for 16.3 s; Verizon LTE drops straight to idle after
10.2 s), so the value of traffic-aware control varies by network.  This
example reproduces the paper's Section 6.5 study on a synthetic multi-day
user workload, declared as one :mod:`repro.api` plan — the user's trace is
generated once, the status quo is simulated once per carrier, and the whole
grid can run on a process pool:

* energy saved by each scheme per carrier (cf. Figure 17),
* signalling overhead normalised by the status quo (cf. Figure 18), and
* the mean/median session delays MakeActive introduces (cf. Table 3).

Run it with::

    python examples/carrier_comparison.py [user_id] [hours_per_day] [jobs]
"""

from __future__ import annotations

import sys

from repro.analysis import format_table
from repro.api import ProcessPoolRunner, SerialRunner, plan
from repro.core import SCHEME_ORDER
from repro.metrics import delay_stats_for_result
from repro.rrc import CARRIER_ORDER, get_profile


def main() -> None:
    user_id = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    hours_per_day = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    # The whole Section 6.5 grid is one declaration: 1 user x 4 carriers x
    # (status quo + 6 schemes).
    p = (plan()
         .users("verizon_3g", (user_id,), hours_per_day=hours_per_day)
         .carriers(*CARRIER_ORDER)
         .policies("status_quo", *SCHEME_ORDER)
         .window_size(100))
    print(p.describe(), "\n")

    runner = ProcessPoolRunner(jobs=jobs) if jobs > 1 else SerialRunner()
    runs = runner.run(p)

    savings_rows = []
    switch_rows = []
    delay_rows = []
    for carrier in CARRIER_ORDER:
        profile = get_profile(carrier)
        cell = runs.only(carrier=carrier)
        results = {r.scheme: r.result for r in cell}
        baseline = results.pop("status_quo")

        savings_rows.append(
            [profile.name]
            + [100.0 * results[s].energy_saved_fraction(baseline) for s in SCHEME_ORDER]
        )
        switch_rows.append(
            [profile.name]
            + [results[s].switches_normalized(baseline) for s in SCHEME_ORDER]
        )
        learn_stats = delay_stats_for_result(
            results["makeidle+makeactive_learn"], only_delayed=True
        )
        fixed_stats = delay_stats_for_result(
            results["makeidle+makeactive_fixed"], only_delayed=True
        )
        delay_rows.append(
            [profile.name, learn_stats.mean, learn_stats.median,
             fixed_stats.mean, fixed_stats.median]
        )

    scheme_headers = list(SCHEME_ORDER)
    print(format_table(["carrier"] + scheme_headers, savings_rows,
                       title="Energy saved vs status quo (%) — cf. Figure 17",
                       float_format="{:.1f}"))
    print()
    print(format_table(["carrier"] + scheme_headers, switch_rows,
                       title="State switches / status quo — cf. Figure 18",
                       float_format="{:.2f}"))
    print()
    print(format_table(
        ["carrier", "learn mean (s)", "learn median (s)",
         "fixed mean (s)", "fixed median (s)"],
        delay_rows,
        title="MakeActive session delays — cf. Table 3",
    ))
    stats = runs.cache_stats
    if stats is not None:
        print(f"\nsimulated {stats.misses} unique runs for "
              f"{len(runs)} grid cells ({stats.hits} cache hits)")


if __name__ == "__main__":
    main()
