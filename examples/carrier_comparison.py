#!/usr/bin/env python3
"""Carrier comparison: replay one user's week of traffic on every carrier.

Carriers configure very different inactivity timers (T-Mobile holds the
high-power FACH state for 16.3 s; Verizon LTE drops straight to idle after
10.2 s), so the value of traffic-aware control varies by network.  This
example reproduces the paper's Section 6.5 study on a synthetic multi-day
user workload:

* energy saved by each scheme per carrier (cf. Figure 17),
* signalling overhead normalised by the status quo (cf. Figure 18), and
* the mean/median session delays MakeActive introduces (cf. Table 3).

Run it with::

    python examples/carrier_comparison.py [user_id] [hours_per_day]
"""

from __future__ import annotations

import sys

from repro.analysis import format_table, run_schemes
from repro.core import SCHEME_ORDER
from repro.metrics import delay_stats_for_result
from repro.rrc import CARRIER_ORDER, get_profile
from repro.traces import user_trace


def main() -> None:
    user_id = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    hours_per_day = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    trace = user_trace("verizon_3g", user_id, hours_per_day=hours_per_day, seed=0)
    print(f"User workload: {trace!r}\n")

    savings_rows = []
    switch_rows = []
    delay_rows = []
    for carrier in CARRIER_ORDER:
        profile = get_profile(carrier)
        results = run_schemes(trace, profile, window_size=100)
        baseline = results.pop("status_quo")

        savings_rows.append(
            [profile.name]
            + [100.0 * results[s].energy_saved_fraction(baseline) for s in SCHEME_ORDER]
        )
        switch_rows.append(
            [profile.name]
            + [results[s].switches_normalized(baseline) for s in SCHEME_ORDER]
        )
        learn_stats = delay_stats_for_result(
            results["makeidle+makeactive_learn"], only_delayed=True
        )
        fixed_stats = delay_stats_for_result(
            results["makeidle+makeactive_fixed"], only_delayed=True
        )
        delay_rows.append(
            [profile.name, learn_stats.mean, learn_stats.median,
             fixed_stats.mean, fixed_stats.median]
        )

    scheme_headers = list(SCHEME_ORDER)
    print(format_table(["carrier"] + scheme_headers, savings_rows,
                       title="Energy saved vs status quo (%) — cf. Figure 17",
                       float_format="{:.1f}"))
    print()
    print(format_table(["carrier"] + scheme_headers, switch_rows,
                       title="State switches / status quo — cf. Figure 18",
                       float_format="{:.2f}"))
    print()
    print(format_table(
        ["carrier", "learn mean (s)", "learn median (s)",
         "fixed mean (s)", "fixed median (s)"],
        delay_rows,
        title="MakeActive session delays — cf. Table 3",
    ))


if __name__ == "__main__":
    main()
