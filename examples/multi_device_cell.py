#!/usr/bin/env python3
"""Base-station view: many phones triggering fast dormancy in one cell.

The paper evaluates everything from the device side and leaves the base
station's perspective to future work (Section 8): what happens to
signalling load when *every* phone in a cell runs MakeIdle, and should the
network ever refuse a fast-dormancy request?  This example runs that study
with the :mod:`repro.basestation` extension:

* six devices, each with its own background workload and MakeIdle policy;
* four network-side dormancy policies, from "always accept" (the paper's
  assumption) to "reject everything" (the pre-Release-7 world);
* per-policy totals for device energy, state switches, RRC messages and the
  fraction of dormancy requests denied.

Run it with::

    python examples/multi_device_cell.py
"""

from __future__ import annotations

from repro import MakeIdlePolicy, get_profile
from repro.analysis import format_table
from repro.basestation import (
    AcceptAllDormancy,
    CellSimulator,
    DeviceSpec,
    LoadAwareDormancy,
    RateLimitedDormancy,
    RejectAllDormancy,
)
from repro.traces import generate_application_trace

DEVICE_APPS = ("im", "email", "news", "microblog", "im", "email")
DURATION_S = 1200.0


def build_devices() -> list[DeviceSpec]:
    """One device per entry of DEVICE_APPS, each with its own workload."""
    return [
        DeviceSpec(
            device_id=index,
            trace=generate_application_trace(app, duration=DURATION_S, seed=index),
            policy=MakeIdlePolicy(window_size=100),
        )
        for index, app in enumerate(DEVICE_APPS)
    ]


def main() -> None:
    profile = get_profile("att_hspa")
    devices = build_devices()
    print(f"Cell with {len(devices)} devices on {profile.name}, "
          f"{DURATION_S / 60:.0f} minutes of traffic each\n")

    policies = (
        AcceptAllDormancy(),
        RateLimitedDormancy(min_interval_s=30.0),
        LoadAwareDormancy(max_switches_per_minute=40),
        RejectAllDormancy(),
    )
    rows = []
    for policy in policies:
        result = CellSimulator(profile, policy).run(devices)
        rows.append(
            [
                policy.name,
                result.total_energy_j,
                result.total_switches,
                result.signaling.messages,
                result.peak_switches_per_minute,
                100.0 * result.denial_rate,
            ]
        )
    print(format_table(
        [
            "network dormancy policy",
            "device energy (J)",
            "switches",
            "RRC messages",
            "peak switches/min",
            "requests denied %",
        ],
        rows,
        title="Network-controlled fast dormancy: device energy vs cell signalling",
    ))
    print(
        "\n'accept_all' is the paper's assumption; the rate-limited and\n"
        "load-aware policies show how an operator can cap signalling storms\n"
        "while giving up only part of the energy savings."
    )


if __name__ == "__main__":
    main()
