#!/usr/bin/env python3
"""Quickstart: how much 3G energy does a traffic-aware radio policy save?

This example walks through the library's core loop in a few lines:

1. pick a carrier profile (measured RRC constants from the paper's Table 2),
2. generate a background-application workload (or load your own pcap),
3. replay it through the trace-driven simulator under several radio
   control policies, and
4. compare energy, signalling overhead and session delays against the
   status quo (the carrier's default inactivity timers).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    MakeIdlePolicy,
    OraclePolicy,
    StatusQuoPolicy,
    TraceSimulator,
    generate_application_trace,
    get_profile,
)
from repro.analysis import format_table
from repro.core import CombinedPolicy, FixedTimerPolicy, LearningMakeActive
from repro.energy import TailEnergyModel


def main() -> None:
    # 1. A carrier profile: AT&T's HSPA+ network as measured in the paper.
    profile = get_profile("att_hspa")
    model = TailEnergyModel(profile)
    print(f"Carrier: {profile.name}")
    print(f"  inactivity timers t1={profile.t1}s t2={profile.t2}s")
    print(f"  tail powers P_t1={profile.power_active_mw:.0f}mW "
          f"P_t2={profile.power_high_idle_mw:.0f}mW")
    print(f"  offline-optimal switch threshold t_threshold={model.t_threshold:.2f}s\n")

    # 2. A one-hour synthetic e-mail workload (background sync every ~5 min).
    trace = generate_application_trace("email", duration=3600.0, seed=7)
    print(f"Workload: {trace!r}\n")

    # 3. Replay under the status quo and three traffic-aware policies.
    simulator = TraceSimulator(profile)
    baseline = simulator.run(trace, StatusQuoPolicy())
    policies = [
        FixedTimerPolicy(4.5),                       # prior work: fixed 4.5 s tail
        MakeIdlePolicy(window_size=100),             # the paper's MakeIdle
        CombinedPolicy(MakeIdlePolicy(window_size=100),
                       LearningMakeActive()),        # MakeIdle + learning MakeActive
        OraclePolicy(),                              # offline upper bound
    ]

    rows = [["status_quo", baseline.total_energy_j, 0.0, 1.0, 0.0]]
    for policy in policies:
        result = simulator.run(trace, policy)
        rows.append(
            [
                policy.name,
                result.total_energy_j,
                100.0 * result.energy_saved_fraction(baseline),
                result.switches_normalized(baseline),
                result.mean_delay,
            ]
        )

    # 4. Report.
    print(
        format_table(
            ["policy", "energy (J)", "saved (%)", "switches / status quo",
             "mean session delay (s)"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
