#!/usr/bin/env python3
"""Quickstart: how much 3G energy does a traffic-aware radio policy save?

The library's core loop is a three-step lifecycle:

1. **declare a plan** — an immutable grid of workloads × carriers ×
   policies (``repro.api.plan``),
2. **execute it with a runner** — serially or on a process pool, with the
   status-quo baseline simulated once per (trace, carrier) and cached, and
3. **analyse the run set** — normalise every scheme against the status quo
   (the carrier's default inactivity timers) and export the records.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.api import SerialRunner, plan
from repro.energy import TailEnergyModel
from repro.rrc import get_profile


def main() -> None:
    # 1. Declare the sweep: a one-hour synthetic e-mail workload (background
    #    sync every ~5 min) replayed on AT&T's HSPA+ network, under the
    #    status quo and three traffic-aware policies plus the offline Oracle.
    profile = get_profile("att_hspa")
    model = TailEnergyModel(profile)
    print(f"Carrier: {profile.name}")
    print(f"  inactivity timers t1={profile.t1}s t2={profile.t2}s")
    print(f"  tail powers P_t1={profile.power_active_mw:.0f}mW "
          f"P_t2={profile.power_high_idle_mw:.0f}mW")
    print(f"  offline-optimal switch threshold t_threshold={model.t_threshold:.2f}s\n")

    p = (plan()
         .apps("email", duration=3600.0, seed=7)
         .carriers("att_hspa")
         .policies("status_quo", "fixed_4.5s", "makeidle",
                   "makeidle+makeactive_learn", "oracle")
         .window_size(100))
    print(p.describe(), "\n")

    # 2. Execute.  Swap in ProcessPoolRunner(jobs=4) for parallel sweeps —
    #    the records come back byte-identical, just faster.
    runs = SerialRunner().run(p)

    # 3. Analyse: every record is normalised against the status-quo run of
    #    its own (trace, carrier) cell.
    rows = [
        [
            r["scheme"],
            r["energy_j"],
            r["saved_percent"],
            r["switches_normalized"],
            r["mean_delay_s"],
        ]
        for r in runs.to_records()
    ]
    print(
        format_table(
            ["policy", "energy (J)", "saved (%)", "switches / status quo",
             "mean session delay (s)"],
            rows,
            float_format="{:.2f}",
        )
    )


if __name__ == "__main__":
    main()
