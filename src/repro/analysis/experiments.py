"""Experiment drivers: one thin plan declaration per paper table/figure family.

These drivers used to hand-roll their own simulation loops; they are now
declarative wrappers over the unified experiment API of :mod:`repro.api` —
each builds an :class:`~repro.api.plan.ExperimentPlan` over the workload ×
carrier × policy grid of its figure, hands it to a runner, and reshapes the
resulting :class:`~repro.api.runset.RunSet` into the result types the
benchmarks and figures consume.  Their signatures and return shapes are
unchanged, so they remain usable directly from notebooks and scripts.

All drivers share one process-wide :func:`~repro.api.runner.default_runner`
(pass ``runner=`` to override, e.g. with a
:class:`~repro.api.runner.ProcessPoolRunner`), so the status-quo baseline of
a given (trace, carrier) pair is simulated once and reused across drivers
instead of once per figure.

Two drivers remain direct simulator calls by design: :func:`twait_series`
and :func:`learning_curve` inspect the *internal state* of one policy
instance after its run (MakeIdle's wait history, MakeActive's learning
iterations), which a declarative grid of reconstructable specs cannot
expose.

Every driver takes explicit duration/seed arguments so benchmarks can trade
runtime for fidelity; the defaults are sized to finish in seconds on a
laptop while preserving the qualitative shape of the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..api import PolicySpec, Runner, default_runner, inline, plan
from ..api.runset import RunSet
from ..core.controller import SCHEME_ORDER, build_scheme, standard_policies
from ..core.makeactive import LearningMakeActive, LearningRecord
from ..core.makeidle import WaitDecision
from ..core.policy import RadioPolicy
from ..energy.accounting import EnergyBreakdown
from ..energy.model import TailEnergyModel
from ..metrics.confusion import ConfusionCounts, confusion_for_result
from ..metrics.delays import DelayStats, delay_stats_for_result
from ..metrics.savings import SavingsReport, savings_table
from ..rrc.profiles import CARRIER_ORDER, CarrierProfile, get_profile
from ..sim.simulator import TraceSimulator
from ..sim.results import SimulationResult
from ..traces.packet import PacketTrace
from ..traces.synthetic import APPLICATION_NAMES
from ..traces.users import user_ids

__all__ = [
    "run_schemes",
    "run_status_quo",
    "application_energy_breakdowns",
    "application_savings",
    "user_study",
    "carrier_comparison",
    "window_size_sweep",
    "twait_series",
    "learning_curve",
    "headline_savings",
    "UserStudyResult",
    "CarrierComparisonRow",
]

#: Schemes whose demotion behaviour is compared against the Oracle in Fig. 12.
CONFUSION_SCHEMES: tuple[str, ...] = ("fixed_4.5s", "p95_iat", "makeidle")

#: Every compared scheme plus the normalisation baseline, in display order.
_ALL_SCHEMES: tuple[str, ...] = ("status_quo",) + SCHEME_ORDER


def _registered_key(profile: CarrierProfile) -> str | None:
    """The profile's carrier key if it matches the registered table, else ``None``.

    Drivers accept arbitrary (possibly ablated) :class:`CarrierProfile`
    objects; only profiles identical to a registered one can be described by
    a plan's carrier axis, so anything else falls back to direct simulation.
    """
    try:
        registered = get_profile(profile.key)
    except KeyError:
        return None
    return profile.key if registered == profile else None


def _runner(runner: Runner | None) -> Runner:
    return runner if runner is not None else default_runner()


def run_status_quo(
    trace: PacketTrace,
    profile: CarrierProfile,
    runner: Runner | None = None,
) -> SimulationResult:
    """Simulate ``trace`` under the carrier's default inactivity timers."""
    key = _registered_key(profile)
    if key is None:
        return TraceSimulator(profile).run(trace, build_scheme("status_quo"))
    p = plan().traces(inline(trace)).carriers(key).policies("status_quo")
    return _runner(runner).run(p).records[0].result


def run_schemes(
    trace: PacketTrace,
    profile: CarrierProfile,
    schemes: Mapping[str, RadioPolicy] | None = None,
    window_size: int = 100,
    runner: Runner | None = None,
) -> dict[str, SimulationResult]:
    """Simulate ``trace`` under the status quo plus every compared scheme.

    Returns a dict keyed by scheme name, with ``"status_quo"`` always
    included first so callers can normalise against it.  An explicit
    ``schemes`` mapping of live policy instances bypasses the plan API (the
    instances may be stateful or unreconstructable from a spec).
    """
    key = _registered_key(profile)
    if schemes is not None or key is None:
        simulator = TraceSimulator(profile)
        results: dict[str, SimulationResult] = {
            "status_quo": simulator.run(trace, build_scheme("status_quo"))
        }
        policies = schemes if schemes is not None else standard_policies(window_size)
        for name, policy in policies.items():
            results[name] = simulator.run(trace, policy)
        return results
    p = (plan()
         .traces(inline(trace))
         .carriers(key)
         .policies(*_ALL_SCHEMES)
         .window_size(window_size))
    return {r.scheme: r.result for r in _runner(runner).run(p)}


# ----------------------------------------------------------------------------------
# Figure 1: per-application energy breakdown under the status quo
# ----------------------------------------------------------------------------------

def application_energy_breakdowns(
    profile: CarrierProfile,
    apps: Sequence[str] = APPLICATION_NAMES,
    duration: float = 3600.0,
    seed: int = 0,
    runner: Runner | None = None,
) -> dict[str, EnergyBreakdown]:
    """Status-quo energy breakdown (data / DCH tail / FACH tail / switch) per app."""
    key = _registered_key(profile)
    if key is None:
        simulator = TraceSimulator(profile)
        from ..traces.synthetic import generate_application_trace

        return {
            a: simulator.run(
                generate_application_trace(a, duration=duration, seed=seed),
                build_scheme("status_quo"),
            ).breakdown
            for a in apps
        }
    p = (plan()
         .apps(*apps, duration=duration, seed=seed)
         .carriers(key)
         .policies("status_quo"))
    return {r.trace_label: r.result.breakdown for r in _runner(runner).run(p)}


# ----------------------------------------------------------------------------------
# Figure 9: energy savings per application
# ----------------------------------------------------------------------------------

def application_savings(
    profile: CarrierProfile,
    apps: Sequence[str] = APPLICATION_NAMES,
    duration: float = 3600.0,
    seed: int = 0,
    window_size: int = 100,
    runner: Runner | None = None,
) -> dict[str, dict[str, SavingsReport]]:
    """Energy saved by each scheme on each application trace (Figure 9)."""
    key = _registered_key(profile)
    if key is None:
        from ..traces.synthetic import generate_application_trace

        table: dict[str, dict[str, SavingsReport]] = {}
        for a in apps:
            trace = generate_application_trace(a, duration=duration, seed=seed)
            results = run_schemes(trace, profile, window_size=window_size)
            baseline = results.pop("status_quo")
            table[a] = savings_table(results, baseline)
        return table
    p = (plan()
         .apps(*apps, duration=duration, seed=seed)
         .carriers(key)
         .policies(*_ALL_SCHEMES)
         .window_size(window_size))
    savings = _runner(runner).run(p).savings()
    return {trace: table for (trace, _carrier, _seed), table in savings.items()}


# ----------------------------------------------------------------------------------
# Figures 10-12 and 15: per-user studies
# ----------------------------------------------------------------------------------

@dataclass(frozen=True)
class UserStudyResult:
    """Per-user outcome of the scheme comparison (drives Figures 10-12, 15)."""

    user_id: int
    savings: dict[str, SavingsReport]
    confusion: dict[str, ConfusionCounts]
    delays: dict[str, DelayStats]
    status_quo_energy_j: float
    status_quo_switches: int


def _study_outcome(
    uid: int, cell: RunSet, threshold: float
) -> UserStudyResult:
    """Shape one (user, carrier) cell of a run set into a study result."""
    results = {r.scheme: r.result for r in cell}
    baseline = results.pop("status_quo")
    savings = savings_table(results, baseline)
    confusion = {
        scheme: confusion_for_result(results[scheme], threshold)
        for scheme in CONFUSION_SCHEMES
        if scheme in results
    }
    delays = {
        scheme: delay_stats_for_result(results[scheme], only_delayed=True)
        for scheme in ("makeidle+makeactive_learn", "makeidle+makeactive_fixed")
        if scheme in results
    }
    return UserStudyResult(
        user_id=uid,
        savings=savings,
        confusion=confusion,
        delays=delays,
        status_quo_energy_j=baseline.total_energy_j,
        status_quo_switches=baseline.switch_count,
    )


def user_study(
    population: str,
    profile: CarrierProfile,
    hours_per_day: float = 2.0,
    seed: int = 0,
    window_size: int = 100,
    users: Iterable[int] | None = None,
    runner: Runner | None = None,
) -> dict[int, UserStudyResult]:
    """Run the full scheme comparison for every user in a population.

    ``population`` selects the synthetic user roster (``"verizon_3g"``,
    ``"verizon_lte"`` or ``"tmobile_3g"``); ``profile`` selects the carrier
    constants, which the paper varies independently of the trace source in
    Section 6.5.
    """
    threshold = TailEnergyModel(profile).t_threshold
    selected = tuple(users) if users is not None else user_ids(population)
    key = _registered_key(profile)
    if key is None:
        from ..traces.users import user_trace

        outcome: dict[int, UserStudyResult] = {}
        for uid in selected:
            trace = user_trace(population, uid, hours_per_day=hours_per_day,
                               seed=seed)
            results = run_schemes(trace, profile, window_size=window_size)
            baseline = results.pop("status_quo")
            outcome[uid] = UserStudyResult(
                user_id=uid,
                savings=savings_table(results, baseline),
                confusion={
                    s: confusion_for_result(results[s], threshold)
                    for s in CONFUSION_SCHEMES if s in results
                },
                delays={
                    s: delay_stats_for_result(results[s], only_delayed=True)
                    for s in ("makeidle+makeactive_learn",
                              "makeidle+makeactive_fixed")
                    if s in results
                },
                status_quo_energy_j=baseline.total_energy_j,
                status_quo_switches=baseline.switch_count,
            )
        return outcome
    p = (plan()
         .users(population, selected, hours_per_day=hours_per_day, seed=seed)
         .carriers(key)
         .policies(*_ALL_SCHEMES)
         .window_size(window_size))
    runs = _runner(runner).run(p)
    cells = runs.group_by("trace")
    return {
        uid: _study_outcome(uid, cells[f"{population}:user{uid}"], threshold)
        for uid in selected
    }


# ----------------------------------------------------------------------------------
# Figures 17-18 and Table 3: carrier comparison
# ----------------------------------------------------------------------------------

@dataclass(frozen=True)
class CarrierComparisonRow:
    """Aggregated results for one carrier (one group of bars in Figs 17/18)."""

    carrier_key: str
    saved_percent: dict[str, float]
    switches_normalized: dict[str, float]
    mean_delay_s: dict[str, float]
    median_delay_s: dict[str, float]


def _comparison_row(carrier_key: str, runs: RunSet) -> CarrierComparisonRow:
    """Aggregate one carrier's user runs into a Figure 17/18 row.

    Savings are energy-weighted over users and delays pooled over sessions,
    exactly as the paper's Section 6.5 aggregates.
    """
    total_baseline = 0.0
    total_baseline_switches = 0
    per_scheme_energy: dict[str, float] = {}
    per_scheme_switches: dict[str, int] = {}
    pooled_delays: dict[str, list[float]] = {}
    for cell in runs.group_by("trace").values():
        results = {r.scheme: r.result for r in cell}
        baseline = results.pop("status_quo")
        total_baseline += baseline.total_energy_j
        total_baseline_switches += baseline.switch_count
        for scheme, result in results.items():
            per_scheme_energy[scheme] = (
                per_scheme_energy.get(scheme, 0.0) + result.total_energy_j
            )
            per_scheme_switches[scheme] = (
                per_scheme_switches.get(scheme, 0) + result.switch_count
            )
            if scheme.startswith("makeidle+makeactive"):
                pooled_delays.setdefault(scheme, []).extend(
                    d for d in result.delays if d > 0.01
                )
    saved_percent = {
        scheme: 100.0 * (total_baseline - energy) / total_baseline
        if total_baseline > 0
        else 0.0
        for scheme, energy in per_scheme_energy.items()
    }
    switches_normalized = {
        scheme: (count / total_baseline_switches
                 if total_baseline_switches else float(count))
        for scheme, count in per_scheme_switches.items()
    }
    mean_delay = {}
    median_delay = {}
    for scheme, values in pooled_delays.items():
        ordered = sorted(values)
        if ordered:
            mean_delay[scheme] = sum(ordered) / len(ordered)
            mid = len(ordered) // 2
            median_delay[scheme] = (
                ordered[mid]
                if len(ordered) % 2
                else (ordered[mid - 1] + ordered[mid]) / 2.0
            )
        else:
            mean_delay[scheme] = 0.0
            median_delay[scheme] = 0.0
    return CarrierComparisonRow(
        carrier_key=carrier_key,
        saved_percent=saved_percent,
        switches_normalized=switches_normalized,
        mean_delay_s=mean_delay,
        median_delay_s=median_delay,
    )


def carrier_comparison(
    carriers: Sequence[str] = CARRIER_ORDER,
    population: str = "verizon_3g",
    hours_per_day: float = 2.0,
    seed: int = 0,
    window_size: int = 100,
    users: Iterable[int] | None = None,
    runner: Runner | None = None,
) -> dict[str, CarrierComparisonRow]:
    """Run the scheme comparison across carrier profiles (Figures 17/18, Table 3).

    The same user traces are replayed against each carrier's RRC parameters,
    exactly as the paper's Section 6.5 does, and savings / switch counts /
    MakeActive delays are aggregated over users (energy-weighted for the
    savings, delay-pooled for Table 3).
    """
    selected = tuple(users) if users is not None else user_ids(population)
    p = (plan()
         .users(population, selected, hours_per_day=hours_per_day, seed=seed)
         .carriers(*carriers)
         .policies(*_ALL_SCHEMES)
         .window_size(window_size))
    runs = _runner(runner).run(p)
    by_carrier = runs.group_by("carrier")
    rows: dict[str, CarrierComparisonRow] = {}
    for carrier in carriers:
        carrier_key = get_profile(carrier).key
        rows[carrier_key] = _comparison_row(carrier_key, by_carrier[carrier_key])
    return rows


# ----------------------------------------------------------------------------------
# Figure 13: MakeIdle window-size sweep
# ----------------------------------------------------------------------------------

def window_size_sweep(
    profile: CarrierProfile,
    trace: PacketTrace,
    window_sizes: Sequence[int] = (10, 25, 50, 100, 200, 400),
    runner: Runner | None = None,
) -> dict[int, ConfusionCounts]:
    """False/missed switch rates of MakeIdle as a function of window size ``n``."""
    threshold = TailEnergyModel(profile).t_threshold
    key = _registered_key(profile)
    if key is None:
        simulator = TraceSimulator(profile)
        return {
            n: confusion_for_result(
                simulator.run(trace, build_scheme("makeidle", n)), threshold
            )
            for n in window_sizes
        }
    p = (plan()
         .traces(inline(trace))
         .carriers(key)
         .policies(*(PolicySpec("makeidle", window_size=n) for n in window_sizes)))
    runs = _runner(runner).run(p)
    return {
        r.spec.policy.window_size: confusion_for_result(r.result, threshold)
        for r in runs
    }


# ----------------------------------------------------------------------------------
# Figure 14: the waiting time chosen by MakeIdle over a trace
# ----------------------------------------------------------------------------------

def twait_series(
    profile: CarrierProfile,
    trace: PacketTrace,
    window_size: int = 100,
) -> list[WaitDecision]:
    """The sequence of MakeIdle waiting-time decisions over one trace.

    Runs the simulator directly (not through the plan API): the figure plots
    the *policy instance's* recorded wait history, which only exists on the
    live object after its run.
    """
    simulator = TraceSimulator(profile)
    policy = build_scheme("makeidle", window_size)
    simulator.run(trace, policy)
    return list(policy.wait_history)


# ----------------------------------------------------------------------------------
# Figure 16: MakeActive learning curve
# ----------------------------------------------------------------------------------

def learning_curve(
    profile: CarrierProfile,
    trace: PacketTrace,
    window_size: int = 100,
) -> list[LearningRecord]:
    """Learned delay and buffered-burst count per MakeActive iteration.

    Like :func:`twait_series`, this inspects the live learner's history and
    therefore drives the simulator directly.
    """
    from ..core.controller import CombinedPolicy  # local import avoids a cycle at module load
    from ..core.makeidle import MakeIdlePolicy

    simulator = TraceSimulator(profile)
    # The figure needs a handle on the live learner to read its history
    # after the run, which build_scheme (correctly) does not expose.
    learner = LearningMakeActive()  # repro-lint: allow[registry-bypass] reason=figure 16 reads the live learner's history; the registry hides the instance
    policy = CombinedPolicy(  # repro-lint: allow[registry-bypass] reason=pairs the learner instance above; mirrors build_scheme("makeidle+makeactive_learn")
        MakeIdlePolicy(window_size=window_size), learner,  # repro-lint: allow[registry-bypass] reason=single-run figure driver; one device, no shared-instance hazard
        name="makeidle+makeactive_learn",
    )
    simulator.run(trace, policy)
    return list(learner.history)


# ----------------------------------------------------------------------------------
# Headline numbers (abstract / Section 6.2)
# ----------------------------------------------------------------------------------

def headline_savings(
    carriers: Sequence[str] = CARRIER_ORDER,
    population: str = "verizon_3g",
    hours_per_day: float = 2.0,
    seed: int = 0,
    users: Iterable[int] | None = None,
    runner: Runner | None = None,
) -> dict[str, dict[str, float]]:
    """Per-carrier savings of MakeIdle alone and MakeIdle+MakeActive (learning).

    The abstract's claim is that MakeIdle alone saves 51–66 % on 3G and 67 %
    on LTE, rising to 62–75 % / 71 % when MakeActive delays are allowed.
    Returns ``{carrier: {"makeidle": pct, "makeidle+makeactive": pct}}``.
    """
    comparison = carrier_comparison(
        carriers=carriers,
        population=population,
        hours_per_day=hours_per_day,
        seed=seed,
        users=users,
        runner=runner,
    )
    headline: dict[str, dict[str, float]] = {}
    for carrier_key, row in comparison.items():
        headline[carrier_key] = {
            "makeidle": row.saved_percent.get("makeidle", 0.0),
            "makeidle+makeactive": row.saved_percent.get(
                "makeidle+makeactive_learn", 0.0
            ),
        }
    return headline
