"""Experiment drivers: one function per paper table/figure family.

These drivers glue the workload generators, the simulator, the policies and
the metrics into the exact experiments of the paper's evaluation section.
The benchmark files under ``benchmarks/`` are thin wrappers that call these
functions and render their output; the functions are also usable directly
from notebooks or scripts.

Every driver takes explicit duration/seed arguments so benchmarks can trade
runtime for fidelity; the defaults are sized to finish in seconds on a
laptop while preserving the qualitative shape of the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.controller import SCHEME_ORDER, standard_policies
from ..core.makeactive import LearningMakeActive, LearningRecord
from ..core.makeidle import MakeIdlePolicy, WaitDecision
from ..core.policy import RadioPolicy, StatusQuoPolicy
from ..energy.accounting import EnergyBreakdown
from ..energy.model import TailEnergyModel
from ..metrics.confusion import ConfusionCounts, confusion_for_result
from ..metrics.delays import DelayStats, delay_stats_for_result
from ..metrics.savings import SavingsReport, savings_table
from ..rrc.profiles import CARRIER_ORDER, CarrierProfile, get_profile
from ..sim.simulator import TraceSimulator
from ..sim.results import SimulationResult
from ..traces.packet import PacketTrace
from ..traces.synthetic import APPLICATION_NAMES, generate_application_trace
from ..traces.users import population_traces, user_ids, user_trace

__all__ = [
    "run_schemes",
    "run_status_quo",
    "application_energy_breakdowns",
    "application_savings",
    "user_study",
    "carrier_comparison",
    "window_size_sweep",
    "twait_series",
    "learning_curve",
    "headline_savings",
    "UserStudyResult",
    "CarrierComparisonRow",
]

#: Schemes whose demotion behaviour is compared against the Oracle in Fig. 12.
CONFUSION_SCHEMES: tuple[str, ...] = ("fixed_4.5s", "p95_iat", "makeidle")


def run_status_quo(trace: PacketTrace, profile: CarrierProfile) -> SimulationResult:
    """Simulate ``trace`` under the carrier's default inactivity timers."""
    simulator = TraceSimulator(profile)
    return simulator.run(trace, StatusQuoPolicy())


def run_schemes(
    trace: PacketTrace,
    profile: CarrierProfile,
    schemes: Mapping[str, RadioPolicy] | None = None,
    window_size: int = 100,
) -> dict[str, SimulationResult]:
    """Simulate ``trace`` under the status quo plus every compared scheme.

    Returns a dict keyed by scheme name, with ``"status_quo"`` always
    included first so callers can normalise against it.
    """
    simulator = TraceSimulator(profile)
    results: dict[str, SimulationResult] = {
        "status_quo": simulator.run(trace, StatusQuoPolicy())
    }
    policies = schemes if schemes is not None else standard_policies(window_size)
    for name, policy in policies.items():
        results[name] = simulator.run(trace, policy)
    return results


# ----------------------------------------------------------------------------------
# Figure 1: per-application energy breakdown under the status quo
# ----------------------------------------------------------------------------------

def application_energy_breakdowns(
    profile: CarrierProfile,
    apps: Sequence[str] = APPLICATION_NAMES,
    duration: float = 3600.0,
    seed: int = 0,
) -> dict[str, EnergyBreakdown]:
    """Status-quo energy breakdown (data / DCH tail / FACH tail / switch) per app."""
    breakdowns: dict[str, EnergyBreakdown] = {}
    for app in apps:
        trace = generate_application_trace(app, duration=duration, seed=seed)
        result = run_status_quo(trace, profile)
        breakdowns[app] = result.breakdown
    return breakdowns


# ----------------------------------------------------------------------------------
# Figure 9: energy savings per application
# ----------------------------------------------------------------------------------

def application_savings(
    profile: CarrierProfile,
    apps: Sequence[str] = APPLICATION_NAMES,
    duration: float = 3600.0,
    seed: int = 0,
    window_size: int = 100,
) -> dict[str, dict[str, SavingsReport]]:
    """Energy saved by each scheme on each application trace (Figure 9)."""
    table: dict[str, dict[str, SavingsReport]] = {}
    for app in apps:
        trace = generate_application_trace(app, duration=duration, seed=seed)
        results = run_schemes(trace, profile, window_size=window_size)
        baseline = results.pop("status_quo")
        table[app] = savings_table(results, baseline)
    return table


# ----------------------------------------------------------------------------------
# Figures 10-12 and 15: per-user studies
# ----------------------------------------------------------------------------------

@dataclass(frozen=True)
class UserStudyResult:
    """Per-user outcome of the scheme comparison (drives Figures 10-12, 15)."""

    user_id: int
    savings: dict[str, SavingsReport]
    confusion: dict[str, ConfusionCounts]
    delays: dict[str, DelayStats]
    status_quo_energy_j: float
    status_quo_switches: int


def user_study(
    population: str,
    profile: CarrierProfile,
    hours_per_day: float = 2.0,
    seed: int = 0,
    window_size: int = 100,
    users: Iterable[int] | None = None,
) -> dict[int, UserStudyResult]:
    """Run the full scheme comparison for every user in a population.

    ``population`` selects the synthetic user roster (``"verizon_3g"``,
    ``"verizon_lte"`` or ``"tmobile_3g"``); ``profile`` selects the carrier
    constants, which the paper varies independently of the trace source in
    Section 6.5.
    """
    threshold = TailEnergyModel(profile).t_threshold
    outcome: dict[int, UserStudyResult] = {}
    selected = tuple(users) if users is not None else user_ids(population)
    for uid in selected:
        trace = user_trace(population, uid, hours_per_day=hours_per_day, seed=seed)
        results = run_schemes(trace, profile, window_size=window_size)
        baseline = results.pop("status_quo")
        savings = savings_table(results, baseline)
        confusion = {
            scheme: confusion_for_result(results[scheme], threshold)
            for scheme in CONFUSION_SCHEMES
            if scheme in results
        }
        delays = {
            scheme: delay_stats_for_result(results[scheme], only_delayed=True)
            for scheme in ("makeidle+makeactive_learn", "makeidle+makeactive_fixed")
            if scheme in results
        }
        outcome[uid] = UserStudyResult(
            user_id=uid,
            savings=savings,
            confusion=confusion,
            delays=delays,
            status_quo_energy_j=baseline.total_energy_j,
            status_quo_switches=baseline.switch_count,
        )
    return outcome


# ----------------------------------------------------------------------------------
# Figures 17-18 and Table 3: carrier comparison
# ----------------------------------------------------------------------------------

@dataclass(frozen=True)
class CarrierComparisonRow:
    """Aggregated results for one carrier (one group of bars in Figs 17/18)."""

    carrier_key: str
    saved_percent: dict[str, float]
    switches_normalized: dict[str, float]
    mean_delay_s: dict[str, float]
    median_delay_s: dict[str, float]


def carrier_comparison(
    carriers: Sequence[str] = CARRIER_ORDER,
    population: str = "verizon_3g",
    hours_per_day: float = 2.0,
    seed: int = 0,
    window_size: int = 100,
    users: Iterable[int] | None = None,
) -> dict[str, CarrierComparisonRow]:
    """Run the scheme comparison across carrier profiles (Figures 17/18, Table 3).

    The same user traces are replayed against each carrier's RRC parameters,
    exactly as the paper's Section 6.5 does, and savings / switch counts /
    MakeActive delays are aggregated over users (energy-weighted for the
    savings, delay-pooled for Table 3).
    """
    rows: dict[str, CarrierComparisonRow] = {}
    selected = tuple(users) if users is not None else user_ids(population)
    traces = {
        uid: user_trace(population, uid, hours_per_day=hours_per_day, seed=seed)
        for uid in selected
    }
    for carrier_key in carriers:
        profile = get_profile(carrier_key)
        total_baseline = 0.0
        total_baseline_switches = 0
        per_scheme_energy: dict[str, float] = {}
        per_scheme_switches: dict[str, int] = {}
        pooled_delays: dict[str, list[float]] = {}
        for uid, trace in traces.items():
            results = run_schemes(trace, profile, window_size=window_size)
            baseline = results.pop("status_quo")
            total_baseline += baseline.total_energy_j
            total_baseline_switches += baseline.switch_count
            for scheme, result in results.items():
                per_scheme_energy[scheme] = (
                    per_scheme_energy.get(scheme, 0.0) + result.total_energy_j
                )
                per_scheme_switches[scheme] = (
                    per_scheme_switches.get(scheme, 0) + result.switch_count
                )
                if scheme.startswith("makeidle+makeactive"):
                    pooled_delays.setdefault(scheme, []).extend(
                        d for d in result.delays if d > 0.01
                    )
        saved_percent = {
            scheme: 100.0 * (total_baseline - energy) / total_baseline
            if total_baseline > 0
            else 0.0
            for scheme, energy in per_scheme_energy.items()
        }
        switches_normalized = {
            scheme: (count / total_baseline_switches
                     if total_baseline_switches else float(count))
            for scheme, count in per_scheme_switches.items()
        }
        mean_delay = {}
        median_delay = {}
        for scheme, values in pooled_delays.items():
            ordered = sorted(values)
            if ordered:
                mean_delay[scheme] = sum(ordered) / len(ordered)
                mid = len(ordered) // 2
                median_delay[scheme] = (
                    ordered[mid]
                    if len(ordered) % 2
                    else (ordered[mid - 1] + ordered[mid]) / 2.0
                )
            else:
                mean_delay[scheme] = 0.0
                median_delay[scheme] = 0.0
        rows[carrier_key] = CarrierComparisonRow(
            carrier_key=carrier_key,
            saved_percent=saved_percent,
            switches_normalized=switches_normalized,
            mean_delay_s=mean_delay,
            median_delay_s=median_delay,
        )
    return rows


# ----------------------------------------------------------------------------------
# Figure 13: MakeIdle window-size sweep
# ----------------------------------------------------------------------------------

def window_size_sweep(
    profile: CarrierProfile,
    trace: PacketTrace,
    window_sizes: Sequence[int] = (10, 25, 50, 100, 200, 400),
) -> dict[int, ConfusionCounts]:
    """False/missed switch rates of MakeIdle as a function of window size ``n``."""
    threshold = TailEnergyModel(profile).t_threshold
    simulator = TraceSimulator(profile)
    sweep: dict[int, ConfusionCounts] = {}
    for n in window_sizes:
        result = simulator.run(trace, MakeIdlePolicy(window_size=n))
        sweep[n] = confusion_for_result(result, threshold)
    return sweep


# ----------------------------------------------------------------------------------
# Figure 14: the waiting time chosen by MakeIdle over a trace
# ----------------------------------------------------------------------------------

def twait_series(
    profile: CarrierProfile,
    trace: PacketTrace,
    window_size: int = 100,
) -> list[WaitDecision]:
    """The sequence of MakeIdle waiting-time decisions over one trace."""
    simulator = TraceSimulator(profile)
    policy = MakeIdlePolicy(window_size=window_size)
    simulator.run(trace, policy)
    return list(policy.wait_history)


# ----------------------------------------------------------------------------------
# Figure 16: MakeActive learning curve
# ----------------------------------------------------------------------------------

def learning_curve(
    profile: CarrierProfile,
    trace: PacketTrace,
    window_size: int = 100,
) -> list[LearningRecord]:
    """Learned delay and buffered-burst count per MakeActive iteration."""
    from ..core.controller import CombinedPolicy  # local import avoids a cycle at module load

    simulator = TraceSimulator(profile)
    learner = LearningMakeActive()
    policy = CombinedPolicy(
        MakeIdlePolicy(window_size=window_size), learner,
        name="makeidle+makeactive_learn",
    )
    simulator.run(trace, policy)
    return list(learner.history)


# ----------------------------------------------------------------------------------
# Headline numbers (abstract / Section 6.2)
# ----------------------------------------------------------------------------------

def headline_savings(
    carriers: Sequence[str] = CARRIER_ORDER,
    population: str = "verizon_3g",
    hours_per_day: float = 2.0,
    seed: int = 0,
    users: Iterable[int] | None = None,
) -> dict[str, dict[str, float]]:
    """Per-carrier savings of MakeIdle alone and MakeIdle+MakeActive (learning).

    The abstract's claim is that MakeIdle alone saves 51–66 % on 3G and 67 %
    on LTE, rising to 62–75 % / 71 % when MakeActive delays are allowed.
    Returns ``{carrier: {"makeidle": pct, "makeidle+makeactive": pct}}``.
    """
    comparison = carrier_comparison(
        carriers=carriers,
        population=population,
        hours_per_day=hours_per_day,
        seed=seed,
        users=users,
    )
    headline: dict[str, dict[str, float]] = {}
    for carrier_key, row in comparison.items():
        headline[carrier_key] = {
            "makeidle": row.saved_percent.get("makeidle", 0.0),
            "makeidle+makeactive": row.saved_percent.get(
                "makeidle+makeactive_learn", 0.0
            ),
        }
    return headline
