"""Text renderers for the reproduced tables and figures.

The benchmark harness prints its results as plain-text tables and horizontal
bar charts so they can be compared with the paper's figures without any
plotting dependency.  These helpers are deliberately dumb: they format
numbers, they never compute them.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_bar_chart", "format_grouped_bars"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    rendered_rows = [
        [
            float_format.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Render ``{label: value}`` as a horizontal ASCII bar chart.

    Negative values render as empty bars with the numeric value shown, so
    schemes that *cost* energy (the paper's negative-savings cases) remain
    visible.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_width = max(len(label) for label in values)
    maximum = max((v for v in values.values() if v > 0), default=0.0)
    for label, value in values.items():
        if maximum > 0 and value > 0:
            bar = "#" * max(1, int(round(width * value / maximum)))
        else:
            bar = ""
        lines.append(f"{label.ljust(label_width)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def format_grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    unit: str = "",
    float_format: str = "{:.1f}",
) -> str:
    """Render ``{group: {series: value}}`` as a table (groups are rows).

    This matches the grouped-bar figures of the paper (e.g. energy saved per
    user per scheme): one row per group, one column per series.
    """
    series: list[str] = []
    for group_values in groups.values():
        for name in group_values:
            if name not in series:
                series.append(name)
    rows = []
    for group, group_values in groups.items():
        row: list[object] = [group]
        for name in series:
            value = group_values.get(name)
            row.append(float_format.format(value) + unit if value is not None else "-")
        rows.append(row)
    return format_table(["group"] + series, rows, title=title)
