"""Experiment drivers and text renderers for the paper's tables and figures."""

from .experiments import (
    CarrierComparisonRow,
    UserStudyResult,
    application_energy_breakdowns,
    application_savings,
    carrier_comparison,
    headline_savings,
    learning_curve,
    run_schemes,
    run_status_quo,
    twait_series,
    user_study,
    window_size_sweep,
)
from .figures import format_bar_chart, format_grouped_bars, format_table

__all__ = [
    "CarrierComparisonRow",
    "UserStudyResult",
    "application_energy_breakdowns",
    "application_savings",
    "carrier_comparison",
    "format_bar_chart",
    "format_grouped_bars",
    "format_table",
    "headline_savings",
    "learning_curve",
    "run_schemes",
    "run_status_quo",
    "twait_series",
    "user_study",
    "window_size_sweep",
]
