"""Energy-saving metrics relative to the status quo.

Every energy result in the paper is expressed as the percentage of energy
saved compared with the status quo (the carrier's default inactivity
timers) on the same trace:  ``100 * (E_statusquo - E_scheme) / E_statusquo``.
The helpers here compute that for single runs and for dictionaries of runs
keyed by scheme, which is the shape the figure benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..sim.results import SimulationResult

__all__ = ["SavingsReport", "energy_saved_percent", "savings_table"]


@dataclass(frozen=True)
class SavingsReport:
    """Energy and overhead of one scheme relative to the status-quo run."""

    scheme: str
    energy_j: float
    baseline_energy_j: float
    saved_percent: float
    switch_count: int
    baseline_switch_count: int
    switches_normalized: float
    saved_per_switch_j: float
    mean_delay_s: float
    median_delay_s: float

    @property
    def saved_j(self) -> float:
        """Absolute saving in joules."""
        return self.baseline_energy_j - self.energy_j


def energy_saved_percent(
    result: SimulationResult, baseline: SimulationResult
) -> float:
    """Percentage of the status-quo energy that ``result`` saves (may be negative)."""
    return 100.0 * result.energy_saved_fraction(baseline)


def compare(result: SimulationResult, baseline: SimulationResult) -> SavingsReport:
    """Build the full :class:`SavingsReport` of one scheme against the baseline."""
    return SavingsReport(
        scheme=result.policy_name,
        energy_j=result.total_energy_j,
        baseline_energy_j=baseline.total_energy_j,
        saved_percent=energy_saved_percent(result, baseline),
        switch_count=result.switch_count,
        baseline_switch_count=baseline.switch_count,
        switches_normalized=result.switches_normalized(baseline),
        saved_per_switch_j=result.energy_saved_per_switch(baseline),
        mean_delay_s=result.mean_delay,
        median_delay_s=result.median_delay,
    )


def savings_table(
    results: Mapping[str, SimulationResult], baseline: SimulationResult
) -> dict[str, SavingsReport]:
    """Compare every scheme in ``results`` against the status-quo ``baseline``."""
    return {name: compare(result, baseline) for name, result in results.items()}
