"""False-switch / missed-switch analysis against the Oracle (Figure 12).

The paper explains MakeIdle's advantage over the fixed baselines by counting
how often each scheme's demotion decisions disagree with the offline-optimal
(Oracle) decision:

* a **false switch** (false positive) is a gap for which the scheme demoted
  the radio but the Oracle would have kept it Active (the gap was shorter
  than ``t_threshold``) — it wastes switch energy and signalling;
* a **missed switch** (false negative) is a gap for which the Oracle demotes
  but the scheme kept the radio on — it wastes tail energy.

The rates are normalised the way the paper defines them:
``FP = N_FS / (N_FS + N_TN)`` and ``FN = N_MS / (N_MS + N_TP)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..sim.results import GapDecision, SimulationResult

__all__ = ["ConfusionCounts", "confusion_from_decisions", "confusion_for_result"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Counts of agreement/disagreement between a scheme and the Oracle."""

    true_positive: int
    true_negative: int
    false_switch: int
    missed_switch: int

    @property
    def total(self) -> int:
        """Total number of decisions compared."""
        return (
            self.true_positive
            + self.true_negative
            + self.false_switch
            + self.missed_switch
        )

    @property
    def false_switch_rate(self) -> float:
        """False positives over (false positives + true negatives), in [0, 1]."""
        denominator = self.false_switch + self.true_negative
        return self.false_switch / denominator if denominator else 0.0

    @property
    def missed_switch_rate(self) -> float:
        """False negatives over (false negatives + true positives), in [0, 1]."""
        denominator = self.missed_switch + self.true_positive
        return self.missed_switch / denominator if denominator else 0.0

    @property
    def false_switch_percent(self) -> float:
        """False-switch rate as a percentage (as plotted in Figure 12)."""
        return 100.0 * self.false_switch_rate

    @property
    def missed_switch_percent(self) -> float:
        """Missed-switch rate as a percentage (as plotted in Figure 12)."""
        return 100.0 * self.missed_switch_rate


def confusion_from_decisions(
    decisions: Sequence[GapDecision], t_threshold: float
) -> ConfusionCounts:
    """Compare per-gap demotion decisions against the threshold rule.

    The Oracle demotes exactly when the gap exceeds ``t_threshold``; each
    :class:`GapDecision` records whether the scheme actually demoted within
    that gap.
    """
    if t_threshold < 0:
        raise ValueError(f"t_threshold must be non-negative, got {t_threshold}")
    tp = tn = fp = fn = 0
    for decision in decisions:
        oracle_switches = decision.gap > t_threshold
        if decision.switched and oracle_switches:
            tp += 1
        elif decision.switched and not oracle_switches:
            fp += 1
        elif not decision.switched and oracle_switches:
            fn += 1
        else:
            tn += 1
    return ConfusionCounts(
        true_positive=tp, true_negative=tn, false_switch=fp, missed_switch=fn
    )


def confusion_for_result(
    result: SimulationResult, t_threshold: float
) -> ConfusionCounts:
    """Confusion counts of one simulated run against the Oracle rule."""
    return confusion_from_decisions(result.gap_decisions, t_threshold)
