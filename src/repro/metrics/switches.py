"""Signalling-overhead metrics: state-switch counts and normalisations.

Figures 10(b), 11(b) and 18 report the number of radio state switches of
each scheme divided by the number under the status quo, because every
promotion costs the base station signalling messages and channel
(re)allocation work.  These helpers compute the counts, the normalised
ratios and the "energy saved per switch" efficiency measure of
Figures 10(c)/11(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..rrc.state_machine import SwitchKind
from ..sim.results import SimulationResult

__all__ = [
    "SwitchStats",
    "peak_per_window",
    "switch_stats",
    "switches_normalized_table",
]


def peak_per_window(
    times: Sequence[float], window_s: float, presorted: bool = False
) -> int:
    """Largest number of events falling in any ``window_s``-second window.

    The cell simulation uses this for its peak-switches-per-minute load
    metric.  ``times`` is sorted once unless the caller promises
    ``presorted=True``; the sweep itself is a linear two-pointer pass.

    Windows are **half-open**: an event at time ``t`` and another at
    exactly ``t + window_s`` fall in different windows, so two switches
    exactly one minute apart never count as the same minute's load
    (mirrors :meth:`repro.sim.engine.CellLoad.switches_within_window`).
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    ordered = times if presorted else sorted(times)
    best = 0
    start = 0
    for end, time in enumerate(ordered):
        while time - ordered[start] >= window_s:
            start += 1
        if end - start + 1 > best:
            best = end - start + 1
    return best


@dataclass(frozen=True)
class SwitchStats:
    """Breakdown of the switches recorded in one simulated run."""

    promotions: int
    fast_dormancy_demotions: int
    timer_demotions: int

    @property
    def total(self) -> int:
        """All switches (promotions plus demotions of either kind)."""
        return self.promotions + self.fast_dormancy_demotions + self.timer_demotions

    @property
    def signalling_switches(self) -> int:
        """Switches that cost base-station signalling (promotions + dormancy requests)."""
        return self.promotions + self.fast_dormancy_demotions


def switch_stats(result: SimulationResult) -> SwitchStats:
    """Count the promotions and demotions of one run by kind."""
    promotions = sum(1 for s in result.switches if s.kind is SwitchKind.PROMOTION)
    dormancy = sum(1 for s in result.switches if s.kind is SwitchKind.FAST_DORMANCY)
    timer = sum(1 for s in result.switches if s.kind is SwitchKind.TIMER_DEMOTION)
    return SwitchStats(
        promotions=promotions,
        fast_dormancy_demotions=dormancy,
        timer_demotions=timer,
    )


def switches_normalized_table(
    results: Mapping[str, SimulationResult], baseline: SimulationResult
) -> dict[str, float]:
    """Switch counts of each scheme divided by the status-quo count."""
    return {
        name: result.switches_normalized(baseline)
        for name, result in results.items()
    }


def energy_saved_per_switch_table(
    results: Mapping[str, SimulationResult], baseline: SimulationResult
) -> dict[str, float]:
    """Joules saved per switch performed, per scheme (Figures 10c/11c)."""
    return {
        name: result.energy_saved_per_switch(baseline)
        for name, result in results.items()
    }
