"""Session-delay metrics for MakeActive (Figure 15 and Table 3).

MakeActive trades a bounded session-start delay for fewer promotions.  The
paper reports the mean and median delay per traffic burst for the learning
and fixed-bound variants (Figure 15) and per carrier (Table 3).  The
helpers here summarise the per-session delays a simulation recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..sim.results import SimulationResult

__all__ = ["DelayStats", "delay_stats", "delay_stats_for_result"]


@dataclass(frozen=True)
class DelayStats:
    """Summary statistics of a collection of session delays (seconds)."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    delayed_fraction: float

    @classmethod
    def empty(cls) -> "DelayStats":
        """Statistics of an empty delay collection (all zeros)."""
        return cls(count=0, mean=0.0, median=0.0, p95=0.0, maximum=0.0,
                   delayed_fraction=0.0)


def delay_stats(delays: Iterable[float]) -> DelayStats:
    """Summarise a collection of per-session delays.

    ``delayed_fraction`` is the share of sessions that were actually held
    back (delay > 10 ms); the fixed-bound scheme pushes most sessions to the
    full bound while the learning scheme spreads them lower — the contrast
    the paper draws in Section 5.2.
    """
    values = sorted(float(d) for d in delays)
    if not values:
        return DelayStats.empty()
    count = len(values)
    mean = sum(values) / count
    mid = count // 2
    median = values[mid] if count % 2 else (values[mid - 1] + values[mid]) / 2.0
    p95_index = min(count - 1, max(0, int(round(0.95 * count)) - 1))
    delayed = sum(1 for v in values if v > 0.01)
    return DelayStats(
        count=count,
        mean=mean,
        median=median,
        p95=values[p95_index],
        maximum=values[-1],
        delayed_fraction=delayed / count,
    )


def delay_stats_for_result(
    result: SimulationResult, only_delayed: bool = False
) -> DelayStats:
    """Delay statistics of one simulated run.

    With ``only_delayed=True`` sessions that were promoted immediately
    (zero delay) are excluded, which matches the per-burst delay numbers in
    Figure 15 / Table 3 (those figures discuss the delays MakeActive
    *introduces*).
    """
    delays: Sequence[float] = result.delays
    if only_delayed:
        delays = [d for d in delays if d > 0.01]
    return delay_stats(delays)
