"""Evaluation metrics: savings, signalling overhead, confusion vs Oracle, delays."""

from .confusion import ConfusionCounts, confusion_for_result, confusion_from_decisions
from .delays import DelayStats, delay_stats, delay_stats_for_result
from .savings import SavingsReport, compare, energy_saved_percent, savings_table
from .switches import (
    SwitchStats,
    energy_saved_per_switch_table,
    switch_stats,
    switches_normalized_table,
)

__all__ = [
    "ConfusionCounts",
    "DelayStats",
    "SavingsReport",
    "SwitchStats",
    "compare",
    "confusion_for_result",
    "confusion_from_decisions",
    "delay_stats",
    "delay_stats_for_result",
    "energy_saved_per_switch_table",
    "energy_saved_percent",
    "savings_table",
    "switch_stats",
    "switches_normalized_table",
]
