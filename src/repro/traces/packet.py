"""Packet and packet-trace containers.

Everything in this library is driven by *packet traces*: ordered sequences
of packets described by an arrival timestamp, a size in bytes, a direction
(uplink or downlink) and an optional flow identifier.  The paper's control
module observes exactly this information at the socket layer, so the trace
container is the narrow waist between the workload generators / pcap readers
on one side and the RRC simulator and policies on the other.

The classes here are deliberately simple value types: a :class:`Packet` is a
frozen dataclass and a :class:`PacketTrace` is an immutable, time-sorted
sequence of packets with convenience accessors for the quantities the
algorithms need (inter-arrival times, duration, byte counts, per-flow and
per-direction views).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Direction",
    "Packet",
    "PacketTrace",
    "merge_traces",
]


class Direction(Enum):
    """Direction of a packet relative to the mobile device."""

    UPLINK = "uplink"
    DOWNLINK = "downlink"

    @property
    def is_uplink(self) -> bool:
        """Return ``True`` for packets sent by the device."""
        return self is Direction.UPLINK

    @property
    def is_downlink(self) -> bool:
        """Return ``True`` for packets received by the device."""
        return self is Direction.DOWNLINK

    def opposite(self) -> "Direction":
        """Return the opposite direction."""
        return Direction.DOWNLINK if self is Direction.UPLINK else Direction.UPLINK


@dataclass(frozen=True, order=True, slots=True)
class Packet:
    """A single packet observation.

    Slotted: packets are the single most-allocated object in the library
    (every generated chunk, every kernel arrival), and ``__slots__`` both
    shrinks them and makes the kernel's per-event ``timestamp`` /
    ``direction`` / ``size`` reads a fixed-offset load instead of a dict
    lookup.

    Attributes
    ----------
    timestamp:
        Arrival (or transmission) time in seconds.  Timestamps are relative
        to an arbitrary epoch; only differences matter to the algorithms.
    size:
        Packet size in bytes (IP length).  Must be non-negative.
    direction:
        Whether the device sent (:attr:`Direction.UPLINK`) or received
        (:attr:`Direction.DOWNLINK`) the packet.
    flow_id:
        Optional identifier of the flow or application session the packet
        belongs to.  Used by MakeActive to group packets into sessions and
        by the workload generators to label application components.
    app:
        Optional human-readable application label (e.g. ``"email"``).
    """

    timestamp: float
    size: int = 0
    direction: Direction = field(default=Direction.DOWNLINK, compare=False)
    flow_id: int = field(default=0, compare=False)
    app: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"packet size must be non-negative, got {self.size}")
        if self.timestamp < 0:
            raise ValueError(
                f"packet timestamp must be non-negative, got {self.timestamp}"
            )

    def shifted(self, offset: float) -> "Packet":
        """Return a copy of this packet with ``offset`` added to its timestamp."""
        return replace(self, timestamp=self.timestamp + offset)

    def with_flow(self, flow_id: int) -> "Packet":
        """Return a copy of this packet tagged with ``flow_id``."""
        return replace(self, flow_id=flow_id)

    def with_app(self, app: str) -> "Packet":
        """Return a copy of this packet tagged with application label ``app``."""
        return replace(self, app=app)


class PacketTrace(Sequence[Packet]):
    """An immutable, time-ordered sequence of packets.

    The constructor accepts packets in any order and sorts them by timestamp.
    All derived quantities (inter-arrival times, durations, byte counts) are
    computed lazily and cached.
    """

    def __init__(self, packets: Iterable[Packet] = (), name: str = "") -> None:
        self._packets: tuple[Packet, ...] = tuple(
            sorted(packets, key=lambda p: p.timestamp)
        )
        self._name = name
        self._timestamps: tuple[float, ...] | None = None
        self._inter_arrivals: tuple[float, ...] | None = None

    # -- basic sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def packet_blocks(self) -> Iterator[Sequence[Packet]]:
        """The kernel block protocol: a materialised trace is one block.

        Lets the simulation kernel walk the packet tuple by index instead
        of driving an iterator per packet (see
        :mod:`repro.traces.streaming` for the chunked counterpart).
        """
        yield self._packets

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return PacketTrace(self._packets[index], name=self._name)
        return self._packets[index]

    def __bool__(self) -> bool:
        return bool(self._packets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PacketTrace):
            return NotImplemented
        return self._packets == other._packets

    def __hash__(self) -> int:
        return hash(self._packets)

    def __repr__(self) -> str:
        label = f" {self._name!r}" if self._name else ""
        return (
            f"<PacketTrace{label} packets={len(self)} "
            f"duration={self.duration:.1f}s bytes={self.total_bytes}>"
        )

    # -- metadata ----------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable name of the trace (application or user label)."""
        return self._name

    def renamed(self, name: str) -> "PacketTrace":
        """Return the same trace under a different name."""
        return PacketTrace(self._packets, name=name)

    # -- derived quantities --------------------------------------------------------

    @property
    def timestamps(self) -> tuple[float, ...]:
        """Packet timestamps in seconds, non-decreasing."""
        if self._timestamps is None:
            self._timestamps = tuple(p.timestamp for p in self._packets)
        return self._timestamps

    @property
    def inter_arrival_times(self) -> tuple[float, ...]:
        """Gaps between consecutive packets, in seconds (length ``len(trace) - 1``)."""
        if self._inter_arrivals is None:
            ts = self.timestamps
            self._inter_arrivals = tuple(
                ts[i + 1] - ts[i] for i in range(len(ts) - 1)
            )
        return self._inter_arrivals

    @property
    def start_time(self) -> float:
        """Timestamp of the first packet (0.0 for an empty trace)."""
        return self._packets[0].timestamp if self._packets else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last packet (0.0 for an empty trace)."""
        return self._packets[-1].timestamp if self._packets else 0.0

    @property
    def duration(self) -> float:
        """Time between the first and the last packet, in seconds."""
        return self.end_time - self.start_time

    @property
    def total_bytes(self) -> int:
        """Sum of all packet sizes in bytes."""
        return sum(p.size for p in self._packets)

    @property
    def uplink_bytes(self) -> int:
        """Bytes sent by the device."""
        return sum(p.size for p in self._packets if p.direction.is_uplink)

    @property
    def downlink_bytes(self) -> int:
        """Bytes received by the device."""
        return sum(p.size for p in self._packets if p.direction.is_downlink)

    @property
    def flow_ids(self) -> tuple[int, ...]:
        """Sorted tuple of distinct flow identifiers present in the trace."""
        return tuple(sorted({p.flow_id for p in self._packets}))

    @property
    def apps(self) -> tuple[str, ...]:
        """Sorted tuple of distinct application labels present in the trace."""
        return tuple(sorted({p.app for p in self._packets if p.app}))

    # -- transformations -----------------------------------------------------------

    def shifted(self, offset: float) -> "PacketTrace":
        """Return a copy with ``offset`` seconds added to every timestamp."""
        return PacketTrace((p.shifted(offset) for p in self._packets), name=self._name)

    def normalized(self) -> "PacketTrace":
        """Return a copy whose first packet is at time 0."""
        if not self._packets:
            return self
        return self.shifted(-self.start_time)

    def filter(self, predicate: Callable[[Packet], bool]) -> "PacketTrace":
        """Return the sub-trace of packets for which ``predicate`` is true."""
        return PacketTrace(
            (p for p in self._packets if predicate(p)), name=self._name
        )

    def only_direction(self, direction: Direction) -> "PacketTrace":
        """Return the sub-trace of packets travelling in ``direction``."""
        return self.filter(lambda p: p.direction is direction)

    def only_flow(self, flow_id: int) -> "PacketTrace":
        """Return the sub-trace belonging to flow ``flow_id``."""
        return self.filter(lambda p: p.flow_id == flow_id)

    def only_app(self, app: str) -> "PacketTrace":
        """Return the sub-trace of packets labelled with application ``app``."""
        return self.filter(lambda p: p.app == app)

    def between(self, start: float, end: float) -> "PacketTrace":
        """Return packets with ``start <= timestamp < end``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        ts = self.timestamps
        lo = bisect.bisect_left(ts, start)
        hi = bisect.bisect_left(ts, end)
        return PacketTrace(self._packets[lo:hi], name=self._name)

    def count_between(self, start: float, end: float) -> int:
        """Number of packets with ``start <= timestamp < end`` (O(log n))."""
        if end < start:
            return 0
        ts = self.timestamps
        return bisect.bisect_left(ts, end) - bisect.bisect_left(ts, start)

    def next_packet_after(self, time: float) -> Packet | None:
        """Return the first packet strictly after ``time``, or ``None``."""
        ts = self.timestamps
        idx = bisect.bisect_right(ts, time)
        if idx >= len(self._packets):
            return None
        return self._packets[idx]

    def concatenate(self, other: "PacketTrace") -> "PacketTrace":
        """Return a trace containing the packets of both traces, re-sorted."""
        return PacketTrace(
            list(self._packets) + list(other._packets),
            name=self._name or other._name,
        )


def merge_traces(traces: Iterable[PacketTrace], name: str = "merged") -> PacketTrace:
    """Merge several traces into one time-sorted trace.

    Flow identifiers are re-mapped so flows from different input traces do
    not collide: each input trace's flows are offset by a multiple of a large
    stride.  Application labels are preserved.
    """
    merged: list[Packet] = []
    stride = 1_000_000
    for index, trace in enumerate(traces):
        offset = index * stride
        for packet in trace:
            merged.append(packet.with_flow(packet.flow_id + offset))
    return PacketTrace(merged, name=name)
