"""Minimal libpcap (``.pcap``) reader and writer.

The paper's traces were collected with ``tcpdump`` on Android phones.  To
let users of this library run the algorithms on their own captures without
pulling in heavyweight dependencies, this module implements the classic
libpcap file format (magic ``0xa1b2c3d4``, including the swapped-byte-order
and nanosecond-resolution variants) from scratch using :mod:`struct`.

Packets are converted to :class:`~repro.traces.packet.Packet` records.  The
direction of each packet is inferred by comparing the IP source address with
a caller-supplied device address (or the most common source address when no
address is given, which is a reasonable heuristic for single-device
captures).  Only IPv4 over Ethernet, Linux cooked capture (SLL) and raw IP
link types are parsed; anything else falls back to a direction-less record
with the captured length.

The writer produces standard microsecond-resolution pcap files containing
synthetic raw-IP packets, which is useful for exporting generated workloads
so they can be inspected with standard tools.
"""

from __future__ import annotations

import io
import socket
import struct
import zlib
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from .packet import Direction, Packet, PacketTrace

__all__ = [
    "PcapError",
    "PcapRecord",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]

_MAGIC_MICRO = 0xA1B2C3D4
_MAGIC_NANO = 0xA1B23C4D

_LINKTYPE_ETHERNET = 1
_LINKTYPE_RAW_IP = 101
_LINKTYPE_LINUX_SLL = 113

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")


class PcapError(Exception):
    """Raised when a pcap file is malformed or uses an unsupported format."""


@dataclass(frozen=True)
class PcapRecord:
    """One raw record from a pcap file, before conversion to :class:`Packet`."""

    timestamp: float
    captured_length: int
    original_length: int
    data: bytes


class PcapReader:
    """Iterates over the records of a classic pcap capture file."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream
        header = stream.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic in (_MAGIC_MICRO, _MAGIC_NANO):
            self._endian = "<"
        else:
            magic_be = struct.unpack(">I", header[:4])[0]
            if magic_be in (_MAGIC_MICRO, _MAGIC_NANO):
                self._endian = ">"
                magic = magic_be
            else:
                raise PcapError(f"not a pcap file (magic 0x{magic:08x})")
        self._nanosecond = magic == _MAGIC_NANO
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.version = (fields[1], fields[2])
        self.snaplen = fields[5]
        self.link_type = fields[6]

    @property
    def nanosecond_resolution(self) -> bool:
        """Whether timestamps use nanosecond (rather than microsecond) fractions."""
        return self._nanosecond

    def __iter__(self) -> Iterator[PcapRecord]:
        return self

    def __next__(self) -> PcapRecord:
        header = self._stream.read(_RECORD_HEADER.size)
        if not header:
            raise StopIteration
        if len(header) < _RECORD_HEADER.size:
            raise PcapError("truncated pcap record header")
        ts_sec, ts_frac, captured, original = struct.unpack(
            self._endian + "IIII", header
        )
        data = self._stream.read(captured)
        if len(data) < captured:
            raise PcapError("truncated pcap record payload")
        divisor = 1e9 if self._nanosecond else 1e6
        return PcapRecord(
            timestamp=ts_sec + ts_frac / divisor,
            captured_length=captured,
            original_length=original,
            data=data,
        )

    def records(self) -> list[PcapRecord]:
        """Read and return all remaining records."""
        return list(self)


class PcapWriter:
    """Writes microsecond-resolution pcap files with raw-IP link type."""

    def __init__(self, stream: BinaryIO, snaplen: int = 65535) -> None:
        self._stream = stream
        header = struct.pack(
            "<IHHiIII", _MAGIC_MICRO, 2, 4, 0, 0, snaplen, _LINKTYPE_RAW_IP
        )
        self._stream.write(header)

    def write_record(self, timestamp: float, data: bytes) -> None:
        """Append one record with the given timestamp and payload bytes."""
        if timestamp < 0:
            raise ValueError("pcap timestamps must be non-negative")
        ts_sec = int(timestamp)
        ts_usec = int(round((timestamp - ts_sec) * 1e6))
        if ts_usec >= 1_000_000:
            ts_sec += 1
            ts_usec -= 1_000_000
        header = struct.pack("<IIII", ts_sec, ts_usec, len(data), len(data))
        self._stream.write(header)
        self._stream.write(data)

    def write_packet(self, packet: Packet, device_address: str = "10.0.0.2") -> None:
        """Serialise ``packet`` as a minimal synthetic IPv4/UDP datagram.

        The uplink/downlink direction is encoded by placing ``device_address``
        as the source (uplink) or destination (downlink), so a round trip
        through :func:`read_pcap` recovers the direction.
        """
        remote = "192.0.2.1"
        if packet.direction.is_uplink:
            src, dst = device_address, remote
        else:
            src, dst = remote, device_address
        payload_length = max(0, packet.size - 28)  # IP (20) + UDP (8) headers
        total_length = 28 + payload_length
        ip_header = struct.pack(
            ">BBHHHBBH4s4s",
            0x45,  # version 4, IHL 5
            0,
            total_length,
            0,
            0,
            64,
            socket.IPPROTO_UDP,
            0,
            socket.inet_aton(src),
            socket.inet_aton(dst),
        )
        udp_header = struct.pack(">HHHH", 5000 + packet.flow_id % 1000, 443,
                                 8 + payload_length, 0)
        data = ip_header + udp_header + bytes(payload_length)
        self.write_record(packet.timestamp, data)


def _extract_ipv4(data: bytes, link_type: int) -> bytes | None:
    """Return the IPv4 header+payload from a link-layer frame, or ``None``."""
    if link_type == _LINKTYPE_RAW_IP:
        payload = data
    elif link_type == _LINKTYPE_ETHERNET:
        if len(data) < 14:
            return None
        ethertype = struct.unpack(">H", data[12:14])[0]
        if ethertype != 0x0800:
            return None
        payload = data[14:]
    elif link_type == _LINKTYPE_LINUX_SLL:
        if len(data) < 16:
            return None
        protocol = struct.unpack(">H", data[14:16])[0]
        if protocol != 0x0800:
            return None
        payload = data[16:]
    else:
        return None
    if len(payload) < 20 or payload[0] >> 4 != 4:
        return None
    return payload


def _parse_ipv4(payload: bytes) -> tuple[str, str, int, int] | None:
    """Parse an IPv4 header, returning (src, dst, total_length, flow_hash)."""
    ihl = (payload[0] & 0x0F) * 4
    if len(payload) < ihl:
        return None
    total_length = struct.unpack(">H", payload[2:4])[0]
    protocol = payload[9]
    src = socket.inet_ntoa(payload[12:16])
    dst = socket.inet_ntoa(payload[16:20])
    src_port = dst_port = 0
    if protocol in (socket.IPPROTO_TCP, socket.IPPROTO_UDP) and len(payload) >= ihl + 4:
        src_port, dst_port = struct.unpack(">HH", payload[ihl : ihl + 4])
    # Use a stable hash (not the per-process-salted built-in) so the same
    # capture always yields the same flow identifiers.
    flow_key = (f"{min(src, dst)}|{max(src, dst)}|{protocol}|"
                f"{min(src_port, dst_port)}|{max(src_port, dst_port)}")
    flow_hash = zlib.crc32(flow_key.encode("ascii")) & 0x7FFFFFFF
    return src, dst, total_length, flow_hash


def read_pcap(
    source: str | Path | BinaryIO,
    device_address: str | None = None,
    name: str = "",
) -> PacketTrace:
    """Read a pcap capture into a :class:`PacketTrace`.

    Parameters
    ----------
    source:
        Path to a ``.pcap`` file or an open binary stream.
    device_address:
        IPv4 address of the mobile device; packets sourced from it are
        uplink, everything else downlink.  When omitted, the most frequent
        source address in the capture is assumed to be the device.
    name:
        Optional trace name; defaults to the file stem when reading a path.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("rb") as stream:
            return read_pcap(stream, device_address=device_address,
                             name=name or path.stem)

    reader = PcapReader(source)
    parsed: list[tuple[float, str, str, int, int]] = []
    for record in reader:
        ip_payload = _extract_ipv4(record.data, reader.link_type)
        if ip_payload is None:
            continue
        fields = _parse_ipv4(ip_payload)
        if fields is None:
            continue
        src, dst, total_length, flow_hash = fields
        length = total_length or record.original_length
        parsed.append((record.timestamp, src, dst, length, flow_hash))

    if not parsed:
        return PacketTrace([], name=name)

    if device_address is None:
        address_counts = Counter(src for _, src, _, _, _ in parsed)
        address_counts.update(dst for _, _, dst, _, _ in parsed)
        # Prefer RFC1918-style client addresses when counts tie.
        device_address = address_counts.most_common(1)[0][0]

    packets = [
        Packet(
            timestamp=ts,
            size=length,
            direction=Direction.UPLINK if src == device_address else Direction.DOWNLINK,
            flow_id=flow_hash,
        )
        for ts, src, dst, length, flow_hash in parsed
    ]
    first = min(p.timestamp for p in packets)
    return PacketTrace([p.shifted(-first) for p in packets], name=name)


def write_pcap(
    destination: str | Path | BinaryIO,
    trace: PacketTrace,
    device_address: str = "10.0.0.2",
) -> None:
    """Write ``trace`` as a pcap file of synthetic IPv4/UDP datagrams."""
    if isinstance(destination, (str, Path)):
        with Path(destination).open("wb") as stream:
            write_pcap(stream, trace, device_address=device_address)
        return
    writer = PcapWriter(destination)
    for packet in trace:
        writer.write_packet(packet, device_address=device_address)


def trace_to_bytes(trace: PacketTrace, device_address: str = "10.0.0.2") -> bytes:
    """Serialise ``trace`` to pcap bytes in memory (useful in tests)."""
    buffer = io.BytesIO()
    write_pcap(buffer, trace, device_address=device_address)
    return buffer.getvalue()
