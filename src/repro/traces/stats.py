"""Inter-arrival-time statistics over packet traces.

The baselines evaluated in the paper rest on simple statistics of the packet
inter-arrival time (IAT) distribution:

* the "4.5-second tail" scheme (Falaki et al.) sets the inactivity timer to a
  fixed 4.5 s because 95 % of IATs in their traces were below that value;
* the "95 % IAT" scheme computes the 95th percentile of the IAT distribution
  of the trace under test and uses that as the inactivity timer.

This module provides an :class:`EmpiricalCdf` built from samples, percentile
helpers, and a :class:`SlidingWindowDistribution` used by the online MakeIdle
predictor (Section 4.2 of the paper): the conditional probability that no
packet arrives within ``t_wait + t_threshold`` given that none arrived within
``t_wait`` is evaluated against the empirical distribution of the last ``n``
inter-arrival times.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

from .packet import PacketTrace

__all__ = [
    "EmpiricalCdf",
    "SlidingWindowDistribution",
    "TraceSummary",
    "inter_arrival_percentile",
    "summarize_trace",
]


class EmpiricalCdf:
    """Empirical cumulative distribution function over a set of samples.

    The CDF is right-continuous: ``cdf(x)`` is the fraction of samples that
    are ``<= x``.  Quantiles use the nearest-rank definition, which matches
    the paper's use of "the 95th percentile of packet inter-arrival time".
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._samples = sorted(float(s) for s in samples)
        if not self._samples:
            raise ValueError("EmpiricalCdf requires at least one sample")

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        """The sorted samples backing the CDF."""
        return tuple(self._samples)

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._samples[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._samples[-1]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return sum(self._samples) / len(self._samples)

    def cdf(self, x: float) -> float:
        """Fraction of samples less than or equal to ``x``."""
        return bisect.bisect_right(self._samples, x) / len(self._samples)

    def survival(self, x: float) -> float:
        """Fraction of samples strictly greater than ``x`` (``1 - cdf(x)``)."""
        return 1.0 - self.cdf(x)

    def conditional_survival(self, waited: float, extra: float) -> float:
        """P(sample > waited + extra | sample > waited).

        This is the quantity the MakeIdle online predictor evaluates: the
        probability that no packet arrives in the next ``extra`` seconds
        given that none has arrived in the ``waited`` seconds so far.
        Returns 1.0 when no sample exceeds ``waited`` (the conditioning event
        has empirical probability zero, so waiting longer cannot reduce the
        estimate).
        """
        denom = self.survival(waited)
        if denom <= 0.0:
            return 1.0
        return self.survival(waited + extra) / denom

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the samples, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if q == 0.0:  # repro-lint: allow[float-eq] reason=documented percentile edge: q=0.0 maps to the minimum sample by definition
            return self._samples[0]
        rank = max(1, int(-(-q / 100.0 * len(self._samples) // 1)))  # ceil
        return self._samples[min(rank, len(self._samples)) - 1]

    def histogram(self, bin_edges: Sequence[float]) -> list[int]:
        """Counts of samples in the half-open bins defined by ``bin_edges``.

        Bin ``i`` counts samples in ``[bin_edges[i], bin_edges[i + 1])``;
        samples outside the overall range are ignored.
        """
        if len(bin_edges) < 2:
            raise ValueError("histogram requires at least two bin edges")
        counts = [0] * (len(bin_edges) - 1)
        for s in self._samples:
            if s < bin_edges[0] or s >= bin_edges[-1]:
                continue
            idx = bisect.bisect_right(bin_edges, s) - 1
            counts[idx] += 1
        return counts


class SlidingWindowDistribution:
    """Inter-arrival distribution over the most recent ``window_size`` gaps.

    The MakeIdle online predictor (paper Section 4.2) maintains the
    distribution of inter-arrival times of the last ``n`` packets seen by
    the control module and recomputes its conditional probabilities as the
    window slides.  ``n = 100`` is the paper's default (Figure 13 sweeps it).
    """

    def __init__(self, window_size: int = 100) -> None:
        if window_size < 2:
            raise ValueError(f"window_size must be >= 2, got {window_size}")
        self._window_size = window_size
        self._gaps: deque[float] = deque(maxlen=window_size)
        self._last_timestamp: float | None = None

    @property
    def window_size(self) -> int:
        """Maximum number of inter-arrival samples retained."""
        return self._window_size

    @property
    def sample_count(self) -> int:
        """Number of inter-arrival samples currently in the window."""
        return len(self._gaps)

    @property
    def samples(self) -> tuple[float, ...]:
        """Current window contents, oldest first."""
        return tuple(self._gaps)

    def observe(self, timestamp: float) -> None:
        """Record a packet arrival at ``timestamp`` (non-decreasing)."""
        if self._last_timestamp is not None:
            gap = timestamp - self._last_timestamp
            if gap < 0:
                raise ValueError(
                    "packet timestamps must be non-decreasing: "
                    f"{timestamp} < {self._last_timestamp}"
                )
            self._gaps.append(gap)
        self._last_timestamp = timestamp

    def observe_gap(self, gap: float) -> None:
        """Record an inter-arrival gap directly (used when replaying gaps)."""
        if gap < 0:
            raise ValueError(f"inter-arrival gap must be non-negative, got {gap}")
        self._gaps.append(gap)

    def reset(self) -> None:
        """Discard all state, including the last-seen timestamp."""
        self._gaps.clear()
        self._last_timestamp = None

    def is_warm(self, minimum_samples: int = 2) -> bool:
        """Whether enough samples have been seen to make predictions."""
        return len(self._gaps) >= minimum_samples

    def cdf(self) -> EmpiricalCdf | None:
        """Empirical CDF of the window, or ``None`` if the window is empty."""
        if not self._gaps:
            return None
        return EmpiricalCdf(self._gaps)

    def probability_no_packet(self, waited: float, extra: float) -> float:
        """P(no packet within ``waited + extra`` s | none within ``waited`` s).

        Falls back to 0.0 (pessimistic: a packet is assumed imminent) when
        the window has no samples yet, so a cold-start MakeIdle never
        switches the radio based on no evidence.
        """
        cdf = self.cdf()
        if cdf is None:
            return 0.0
        return cdf.conditional_survival(waited, extra)

    def probability_gap_exceeds(self, threshold: float) -> float:
        """P(inter-arrival gap > threshold) under the current window."""
        cdf = self.cdf()
        if cdf is None:
            return 0.0
        return cdf.survival(threshold)


@dataclass(frozen=True)
class TraceSummary:
    """Headline statistics of a packet trace."""

    name: str
    packet_count: int
    duration: float
    total_bytes: int
    uplink_bytes: int
    downlink_bytes: int
    mean_inter_arrival: float
    median_inter_arrival: float
    p95_inter_arrival: float
    max_inter_arrival: float

    @property
    def mean_throughput_bps(self) -> float:
        """Mean throughput in bits per second over the trace duration."""
        if self.duration <= 0:
            return 0.0
        return self.total_bytes * 8 / self.duration


def inter_arrival_percentile(trace: PacketTrace, q: float = 95.0) -> float:
    """Return the ``q``-th percentile of the trace's inter-arrival times.

    This is the statistic used by the "95 % IAT" baseline.  Raises
    ``ValueError`` for traces with fewer than two packets, where no
    inter-arrival time exists.
    """
    gaps = trace.inter_arrival_times
    if not gaps:
        raise ValueError("trace has fewer than two packets; no inter-arrival times")
    return EmpiricalCdf(gaps).percentile(q)


def summarize_trace(trace: PacketTrace) -> TraceSummary:
    """Compute a :class:`TraceSummary` for ``trace``.

    Traces with fewer than two packets report zero for all inter-arrival
    statistics.
    """
    gaps = trace.inter_arrival_times
    if gaps:
        cdf = EmpiricalCdf(gaps)
        mean_gap = cdf.mean
        median_gap = cdf.percentile(50.0)
        p95_gap = cdf.percentile(95.0)
        max_gap = cdf.max
    else:
        mean_gap = median_gap = p95_gap = max_gap = 0.0
    return TraceSummary(
        name=trace.name,
        packet_count=len(trace),
        duration=trace.duration,
        total_bytes=trace.total_bytes,
        uplink_bytes=trace.uplink_bytes,
        downlink_bytes=trace.downlink_bytes,
        mean_inter_arrival=mean_gap,
        median_inter_arrival=median_gap,
        p95_inter_arrival=p95_gap,
        max_inter_arrival=max_gap,
    )
