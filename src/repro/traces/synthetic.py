"""Synthetic workload generators for the paper's application classes.

The paper evaluates its algorithms on two kinds of traces, neither of which
is publicly available:

* two-hour ``tcpdump`` traces of seven popular Android applications run in
  the background (Section 6.1), and
* 28 days of traces from nine real users on T-Mobile and Verizon phones.

Following the substitution rule documented in ``docs/DESIGN.md``, this module
regenerates statistically equivalent traces from the paper's own description
of each application's traffic pattern:

========  =====================================================================
News      background process fetching breaking news; occasional medium bursts
IM        heartbeat packets every 5–20 seconds, tiny payloads, rare messages
MicroBlog automatic tweet fetches every few minutes, medium download bursts
Game      offline game with an advertisement bar refreshing roughly once/minute
Email     background sync with the mail server every five minutes
Social    interactive foreground use: reading feeds, viewing pictures, posting
Finance   stock ticker updating roughly once per second in the foreground
========  =====================================================================

All generators are deterministic given a seed (they use
:class:`random.Random`), so experiments and tests are reproducible.  The
generators emit bursts as short packet trains with realistic per-packet
spacing so that MakeIdle's intra-burst/inter-burst distinction is exercised.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .packet import Direction, Packet, PacketTrace, merge_traces

__all__ = [
    "ApplicationProfile",
    "APPLICATION_PROFILES",
    "APPLICATION_NAMES",
    "generate_application_packets",
    "generate_application_trace",
    "generate_poisson_trace",
    "generate_periodic_trace",
    "PacketTrainSpec",
]


@dataclass(frozen=True)
class PacketTrainSpec:
    """Shape of one traffic burst emitted by a generator.

    A burst is modelled as a request/response exchange: ``uplink_packets``
    small uplink packets followed by ``downlink_packets`` larger downlink
    packets, with consecutive packets spaced by an exponential gap of mean
    ``intra_gap_mean`` seconds (capped at ``intra_gap_max``).
    """

    uplink_packets: int
    downlink_packets: int
    uplink_size: int = 120
    downlink_size: int = 1200
    intra_gap_mean: float = 0.05
    intra_gap_max: float = 0.5

    def __post_init__(self) -> None:
        if self.uplink_packets < 0 or self.downlink_packets < 0:
            raise ValueError("packet counts must be non-negative")
        if self.uplink_packets + self.downlink_packets == 0:
            raise ValueError("a packet train must contain at least one packet")
        if self.intra_gap_mean <= 0 or self.intra_gap_max <= 0:
            raise ValueError("intra-burst gaps must be positive")
        # Hot-path constant: emit() draws one exponential gap per packet;
        # precomputing the rate once is the identical float the per-call
        # ``1.0 / intra_gap_mean`` division produced.
        object.__setattr__(self, "_intra_rate", 1.0 / self.intra_gap_mean)

    def emit(
        self,
        rng: random.Random,
        start: float,
        flow_id: int,
        app: str,
    ) -> list[Packet]:
        """Materialise the burst starting at time ``start``."""
        packets: list[Packet] = []
        append = packets.append
        expovariate = rng.expovariate
        intra_rate = self._intra_rate
        intra_max = self.intra_gap_max
        time = start
        uplink_size = self.uplink_size
        for _ in range(self.uplink_packets):
            append(Packet(time, uplink_size, Direction.UPLINK, flow_id, app))
            gap = expovariate(intra_rate)
            time += gap if gap < intra_max else intra_max
        downlink_size = self.downlink_size
        for _ in range(self.downlink_packets):
            append(Packet(time, downlink_size, Direction.DOWNLINK, flow_id, app))
            gap = expovariate(intra_rate)
            time += gap if gap < intra_max else intra_max
        return packets


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical description of one background application's traffic.

    Sessions (bursts) arrive with inter-session gaps drawn from
    ``session_gap`` (a callable taking the RNG and returning seconds).  Each
    session's packet train shape is drawn from ``trains`` with the paired
    weights.  ``jitter`` adds a uniform offset to each session start so
    periodic applications do not align perfectly across runs.
    """

    name: str
    description: str
    session_gap: Callable[[random.Random], float]
    trains: Sequence[PacketTrainSpec]
    train_weights: Sequence[float] = ()
    jitter: float = 0.0
    flows: int = 1

    def __post_init__(self) -> None:
        # draw_train() runs once per session for every device of a cell:
        # snapshot the train list and the cumulative weights once instead
        # of rebuilding both lists per draw.  ``random.choices`` computes
        # exactly these cumulative sums internally, and consumes the same
        # single ``random()`` either way, so draws are byte-identical.
        object.__setattr__(self, "_train_list", list(self.trains))
        cum_weights = None
        if self.train_weights:
            total = 0.0
            cum_weights = []
            for weight in self.train_weights:
                total += weight
                cum_weights.append(total)
        object.__setattr__(self, "_cum_weights", cum_weights)

    def draw_gap(self, rng: random.Random) -> float:
        """Draw one inter-session gap in seconds (always positive)."""
        gap = self.session_gap(rng)
        if self.jitter > 0:
            gap += rng.uniform(-self.jitter, self.jitter)
        return max(0.05, gap)

    def draw_train(self, rng: random.Random) -> PacketTrainSpec:
        """Draw the packet-train shape of the next session."""
        if self._cum_weights is None:
            return rng.choice(self._train_list)
        return rng.choices(self._train_list, cum_weights=self._cum_weights,
                           k=1)[0]


def _uniform(low: float, high: float) -> Callable[[random.Random], float]:
    return lambda rng: rng.uniform(low, high)


def _exponential(mean: float) -> Callable[[random.Random], float]:
    return lambda rng: rng.expovariate(1.0 / mean)


def _lognormal(median: float, sigma: float) -> Callable[[random.Random], float]:
    mu = math.log(median)
    return lambda rng: rng.lognormvariate(mu, sigma)


#: The seven application classes of Section 6.1, in the order of Figure 9.
APPLICATION_PROFILES: dict[str, ApplicationProfile] = {
    "news": ApplicationProfile(
        name="news",
        description="News reader with a background breaking-news fetcher",
        session_gap=_lognormal(median=90.0, sigma=0.8),
        trains=(
            PacketTrainSpec(uplink_packets=2, downlink_packets=8),
            PacketTrainSpec(uplink_packets=3, downlink_packets=25,
                            downlink_size=1400),
        ),
        train_weights=(0.7, 0.3),
        jitter=10.0,
        flows=2,
    ),
    "im": ApplicationProfile(
        name="im",
        description="Instant messenger sending heartbeats every 5-20 seconds",
        session_gap=_uniform(5.0, 20.0),
        trains=(
            PacketTrainSpec(uplink_packets=1, downlink_packets=1,
                            uplink_size=90, downlink_size=90,
                            intra_gap_mean=0.15, intra_gap_max=0.6),
            PacketTrainSpec(uplink_packets=2, downlink_packets=3,
                            uplink_size=200, downlink_size=400),
        ),
        train_weights=(0.92, 0.08),
        flows=1,
    ),
    "microblog": ApplicationProfile(
        name="microblog",
        description="Micro-blog client automatically fetching new tweets",
        session_gap=_lognormal(median=150.0, sigma=0.5),
        trains=(
            PacketTrainSpec(uplink_packets=2, downlink_packets=12),
            PacketTrainSpec(uplink_packets=2, downlink_packets=30,
                            downlink_size=1400),
        ),
        train_weights=(0.8, 0.2),
        jitter=20.0,
        flows=2,
    ),
    "game": ApplicationProfile(
        name="game",
        description="Offline game whose advertisement bar refreshes ~once/minute",
        session_gap=_uniform(50.0, 70.0),
        trains=(
            PacketTrainSpec(uplink_packets=1, downlink_packets=4,
                            downlink_size=800),
        ),
        flows=1,
    ),
    "email": ApplicationProfile(
        name="email",
        description="Email client synchronising with the server every five minutes",
        session_gap=_uniform(280.0, 320.0),
        trains=(
            PacketTrainSpec(uplink_packets=3, downlink_packets=6),
            PacketTrainSpec(uplink_packets=4, downlink_packets=40,
                            downlink_size=1400),
        ),
        train_weights=(0.75, 0.25),
        flows=1,
    ),
    "social": ApplicationProfile(
        name="social",
        description="Interactive social-network use: feeds, pictures, comments",
        session_gap=_lognormal(median=25.0, sigma=1.0),
        trains=(
            PacketTrainSpec(uplink_packets=2, downlink_packets=10),
            PacketTrainSpec(uplink_packets=3, downlink_packets=60,
                            downlink_size=1400, intra_gap_mean=0.03),
            PacketTrainSpec(uplink_packets=5, downlink_packets=2,
                            uplink_size=600),
        ),
        train_weights=(0.5, 0.3, 0.2),
        flows=3,
    ),
    "finance": ApplicationProfile(
        name="finance",
        description="Stock ticker updating roughly once per second in the foreground",
        session_gap=_uniform(0.8, 1.3),
        trains=(
            PacketTrainSpec(uplink_packets=1, downlink_packets=1,
                            uplink_size=150, downlink_size=300,
                            intra_gap_mean=0.08, intra_gap_max=0.3),
        ),
        flows=1,
    ),
}

#: Application names in the display order used by Figure 9.
APPLICATION_NAMES: tuple[str, ...] = (
    "news", "im", "microblog", "game", "email", "social", "finance",
)


def _resolve_application_profile(
    app: str | ApplicationProfile,
) -> ApplicationProfile:
    """Look up an application profile by name (or pass one through)."""
    if isinstance(app, str):
        key = app.lower()
        if key not in APPLICATION_PROFILES:
            raise KeyError(
                f"unknown application {app!r}; known: {sorted(APPLICATION_PROFILES)}"
            )
        return APPLICATION_PROFILES[key]
    return app


def generate_application_packets(
    app: str | ApplicationProfile,
    duration: float = 7200.0,
    seed: int = 0,
    rate: Callable[[float], float] | None = None,
) -> list[Packet]:
    """The time-sorted packet list of one application run.

    This is :func:`generate_application_trace` without the
    :class:`~repro.traces.packet.PacketTrace` wrapper: the returned list
    holds exactly the packets the trace would hold, already in the
    trace's order (a stable sort by timestamp — overlapping bursts
    interleave identically).  The chunked streaming layer
    (:mod:`repro.traces.streaming`) consumes these lists directly so the
    kernel can walk chunk-local arrays instead of paying a container
    round-trip per chunk.
    """
    profile = _resolve_application_profile(app)
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")

    def next_gap(at: float) -> float:
        gap = profile.draw_gap(rng)
        if rate is None:
            return gap
        multiplier = rate(at)
        if not multiplier > 0:
            raise ValueError(
                f"rate envelope must be positive, got {multiplier} at t={at}"
            )
        return gap / multiplier

    rng = random.Random(seed)
    packets: list[Packet] = []
    time = next_gap(0.0)
    flow_counter = 0
    flow_cycle = max(1, profile.flows)
    name = profile.name
    while time < duration:
        train = profile.draw_train(rng)
        flow_id = flow_counter % flow_cycle
        flow_counter += 1
        burst = train.emit(rng, time, flow_id, name)
        # Burst packets are time-ordered, so the common all-inside case
        # needs one comparison instead of one per packet.
        if burst[-1].timestamp < duration:
            packets.extend(burst)
        else:
            packets.extend(p for p in burst if p.timestamp < duration)
        time += next_gap(time)
    # The same stable timestamp sort the PacketTrace constructor applies,
    # so list and trace order agree packet for packet.
    packets.sort(key=lambda p: p.timestamp)
    return packets


def generate_application_trace(
    app: str | ApplicationProfile,
    duration: float = 7200.0,
    seed: int = 0,
    rate: Callable[[float], float] | None = None,
) -> PacketTrace:
    """Generate a trace for one application class.

    Parameters
    ----------
    app:
        Either the name of a profile from :data:`APPLICATION_PROFILES`
        (case-insensitive) or an :class:`ApplicationProfile` instance.
    duration:
        Length of the generated trace in seconds.  The paper's application
        traces were two hours long, which is the default.
    seed:
        Seed for the deterministic random generator.
    rate:
        Optional traffic-rate envelope: a callable mapping a timestamp
        (seconds from trace start) to a positive session-rate multiplier.
        Each drawn inter-session gap is divided by the envelope evaluated
        at the *previous* session's start, so a multiplier of 2 doubles
        the session arrival rate around that time while leaving burst
        shapes and intra-burst spacing untouched (the inversion-by-local-
        rate construction used for diurnal shaping; see
        :mod:`repro.scenarios.shapes`).  ``None`` (the default) is the
        unshaped generator, byte-identical to earlier releases.
    """
    profile = _resolve_application_profile(app)
    return PacketTrace(
        generate_application_packets(profile, duration=duration, seed=seed,
                                     rate=rate),
        name=profile.name,
    )


def generate_poisson_trace(
    rate: float,
    duration: float,
    seed: int = 0,
    size: int = 500,
    name: str = "poisson",
) -> PacketTrace:
    """Generate a memoryless (Poisson) packet arrival trace.

    Useful as a null model in tests and ablations: for exponential
    inter-arrivals the conditional probability used by MakeIdle is constant
    in the waiting time, so the predictor's behaviour is easy to verify
    analytically.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    rng = random.Random(seed)
    packets: list[Packet] = []
    time = rng.expovariate(rate)
    while time < duration:
        direction = Direction.UPLINK if rng.random() < 0.4 else Direction.DOWNLINK
        packets.append(Packet(time, size, direction, 0, name))
        time += rng.expovariate(rate)
    return PacketTrace(packets, name=name)


def generate_periodic_trace(
    period: float,
    duration: float,
    burst_packets: int = 1,
    size: int = 500,
    jitter: float = 0.0,
    seed: int = 0,
    name: str = "periodic",
) -> PacketTrace:
    """Generate a strictly periodic trace (optionally jittered).

    Periodic heartbeats are the regime where fixed inactivity timers waste
    the most energy, so this generator is used heavily by the unit tests and
    the ablation benchmarks.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if burst_packets < 1:
        raise ValueError("burst_packets must be at least 1")
    rng = random.Random(seed)
    packets: list[Packet] = []
    time = period
    while time < duration:
        start = time + (rng.uniform(-jitter, jitter) if jitter else 0.0)
        start = max(0.0, start)
        for i in range(burst_packets):
            direction = Direction.UPLINK if i == 0 else Direction.DOWNLINK
            packets.append(Packet(start + i * 0.05, size, direction, 0, name))
        time += period
    return PacketTrace(packets, name=name)


def generate_mixed_trace(
    apps: Iterable[str],
    duration: float = 7200.0,
    seed: int = 0,
    name: str = "mixed",
) -> PacketTrace:
    """Generate a trace with several applications running concurrently.

    Each application is generated independently (with a distinct derived
    seed) and the traces are merged; this models a phone with several
    background applications installed, the situation MakeActive targets.
    """
    traces = [
        generate_application_trace(app, duration=duration, seed=seed + 101 * index)
        for index, app in enumerate(apps)
    ]
    return merge_traces(traces, name=name)
