"""Synthetic reconstructions of the paper's per-user trace data sets.

The paper's evaluation uses traces from nine real users collected over 28
device-days: six users on Nexus S phones in T-Mobile's 3G network and four
users on Galaxy Nexus phones in Verizon's 3G/LTE network (Section 6.1).
Figures 10–12 and 15 report per-user results for six Verizon-3G users and
three Verizon-LTE users.

Those traces are not public, so this module builds *user workload models*:
each user is a weighted mixture of the application profiles from
:mod:`repro.traces.synthetic`, plus a diurnal activity pattern (periods of
interactive use separated by long idle stretches) so the traces contain both
dense interactive bursts and sparse background chatter — the regime in which
the relative ordering of the schemes in the paper emerges.

Users are deterministic: ``user_trace("verizon_3g", 2)`` always returns the
same trace.  The mixtures are chosen so that users differ meaningfully (some
are IM-heavy, some email-heavy, some run many apps), mirroring the paper's
observation that per-user results vary.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Sequence

from .packet import PacketTrace, merge_traces
from .synthetic import generate_application_trace

__all__ = [
    "UserProfile",
    "USER_POPULATIONS",
    "user_ids",
    "user_profile",
    "user_trace",
    "population_traces",
]


@dataclass(frozen=True)
class UserProfile:
    """Description of one synthetic user's workload.

    Attributes
    ----------
    user_id:
        1-based identifier within the population (matches the x-axis of
        Figures 10–12).
    population:
        Which data set the user belongs to (``"verizon_3g"``, ``"verizon_lte"``
        or ``"tmobile_3g"``).
    apps:
        Application profile names the user runs in the background.
    activity_factor:
        Scales the density of interactive (social/finance) sessions; higher
        means a heavier user.
    days:
        Number of simulated days of data for this user (the paper collected
        two to five days per user).
    """

    user_id: int
    population: str
    apps: tuple[str, ...]
    activity_factor: float
    days: int

    @property
    def label(self) -> str:
        """Stable label, e.g. ``"verizon_3g/user2"``."""
        return f"{self.population}/user{self.user_id}"


#: Per-population user rosters.  Six Verizon 3G users and three Verizon LTE
#: users (as plotted in Figures 10-12), six T-Mobile users (Section 6.1).
USER_POPULATIONS: dict[str, tuple[UserProfile, ...]] = {
    "verizon_3g": (
        UserProfile(1, "verizon_3g", ("im", "email", "news"), 0.8, 3),
        UserProfile(2, "verizon_3g", ("im", "social", "microblog"), 1.4, 2),
        UserProfile(3, "verizon_3g", ("email", "news", "game"), 0.6, 4),
        UserProfile(4, "verizon_3g", ("im", "finance", "email"), 1.1, 2),
        UserProfile(5, "verizon_3g", ("social", "microblog", "news", "im"), 1.6, 3),
        UserProfile(6, "verizon_3g", ("email", "game"), 0.5, 5),
    ),
    "verizon_lte": (
        UserProfile(1, "verizon_lte", ("im", "social", "email"), 1.2, 3),
        UserProfile(2, "verizon_lte", ("news", "microblog", "game"), 0.7, 2),
        UserProfile(3, "verizon_lte", ("im", "email", "finance", "social"), 1.5, 3),
    ),
    "tmobile_3g": (
        UserProfile(1, "tmobile_3g", ("im", "email"), 0.7, 5),
        UserProfile(2, "tmobile_3g", ("news", "social"), 1.3, 4),
        UserProfile(3, "tmobile_3g", ("im", "microblog", "game"), 0.9, 5),
        UserProfile(4, "tmobile_3g", ("email", "finance"), 0.8, 5),
        UserProfile(5, "tmobile_3g", ("social", "im", "news"), 1.5, 5),
        UserProfile(6, "tmobile_3g", ("email", "game", "im"), 0.6, 4),
    ),
}


def user_ids(population: str) -> tuple[int, ...]:
    """Return the user identifiers available in ``population``."""
    return tuple(profile.user_id for profile in _population(population))


def user_profile(population: str, user_id: int) -> UserProfile:
    """Return the :class:`UserProfile` for a user, raising ``KeyError`` if unknown."""
    for profile in _population(population):
        if profile.user_id == user_id:
            return profile
    raise KeyError(f"no user {user_id} in population {population!r}")


def _population(population: str) -> tuple[UserProfile, ...]:
    try:
        return USER_POPULATIONS[population]
    except KeyError:
        raise KeyError(
            f"unknown population {population!r}; known: {sorted(USER_POPULATIONS)}"
        ) from None


def user_trace(
    population: str,
    user_id: int,
    hours_per_day: float = 4.0,
    seed: int = 0,
) -> PacketTrace:
    """Generate the packet trace for one user.

    The trace concatenates ``days`` sessions of ``hours_per_day`` hours of
    phone activity; within each day the user's background applications run
    continuously while interactive applications (social, finance) appear
    only inside a few "active windows" whose number scales with the user's
    ``activity_factor``.  Idle night-time gaps between days are omitted
    (they contribute nothing to tail energy and would only slow simulation).

    Parameters
    ----------
    population:
        ``"verizon_3g"``, ``"verizon_lte"`` or ``"tmobile_3g"``.
    user_id:
        1-based user identifier within the population.
    hours_per_day:
        Hours of captured activity per simulated day.
    seed:
        Base random seed; combined with the population and user id so every
        user is distinct but reproducible.
    """
    profile = user_profile(population, user_id)
    if hours_per_day <= 0:
        raise ValueError(f"hours_per_day must be positive, got {hours_per_day}")

    # Derive a per-user seed with a stable (process-independent) hash so the
    # same user always yields the same trace; Python's built-in hash() is
    # salted per process and must not be used here.
    label_hash = zlib.crc32(f"{population}/{user_id}".encode("utf-8"))
    base_seed = seed * 7919 + label_hash % 100_000
    rng = random.Random(base_seed)
    day_length = hours_per_day * 3600.0
    background_apps = [a for a in profile.apps if a not in ("social", "finance")]
    interactive_apps = [a for a in profile.apps if a in ("social", "finance")]

    day_traces: list[PacketTrace] = []
    for day in range(profile.days):
        day_seed = base_seed + 977 * day
        components: list[PacketTrace] = []
        for index, app in enumerate(background_apps):
            components.append(
                generate_application_trace(
                    app, duration=day_length, seed=day_seed + 13 * index
                )
            )
        # Interactive apps appear in a handful of foreground windows.
        window_count = max(1, round(2 * profile.activity_factor))
        for index, app in enumerate(interactive_apps):
            for window in range(window_count):
                window_length = rng.uniform(300.0, 900.0)
                window_start = rng.uniform(0.0, max(1.0, day_length - window_length))
                segment = generate_application_trace(
                    app,
                    duration=window_length,
                    seed=day_seed + 131 * index + 17 * window,
                ).shifted(window_start)
                components.append(segment)
        day_trace = merge_traces(components, name=f"{profile.label}/day{day}")
        day_traces.append(day_trace.shifted(day * day_length))

    merged = merge_traces(day_traces, name=profile.label)
    return merged.normalized().renamed(profile.label)


def population_traces(
    population: str,
    hours_per_day: float = 4.0,
    seed: int = 0,
) -> dict[int, PacketTrace]:
    """Generate traces for every user in ``population``, keyed by user id."""
    return {
        uid: user_trace(population, uid, hours_per_day=hours_per_day, seed=seed)
        for uid in user_ids(population)
    }
