"""Parser for tcpdump text output.

The paper's data collection ran ``tcpdump`` in the background on every
phone.  Binary captures are handled by :mod:`repro.traces.pcap`; this module
parses the *text* form produced by ``tcpdump -tt -n -q`` (and the common
``-ttt``/``-l`` variants people actually have lying around), so existing
logs can be replayed through the simulator without re-capturing.

A typical line looks like::

    1355241600.123456 IP 10.0.0.2.44312 > 93.184.216.34.443: tcp 1448

The parser extracts the timestamp, the two endpoints, the protocol and the
payload length, infers the direction from the device address, and assigns a
flow id per 5-tuple-ish endpoint pair so MakeActive can group sessions.
Unparseable lines are skipped (and counted) rather than aborting the whole
import — real tcpdump logs are full of truncated lines and notices.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from .packet import Direction, Packet, PacketTrace

__all__ = [
    "TcpdumpParseResult",
    "parse_tcpdump_line",
    "parse_tcpdump_lines",
    "read_tcpdump",
    "format_tcpdump_line",
    "write_tcpdump",
]

#: ``host.port`` endpoint: IPv4 dotted quad followed by an optional port.
_ENDPOINT = r"(?P<{side}>\d+\.\d+\.\d+\.\d+)(?:\.(?P<{side}_port>\d+))?"

_LINE_RE = re.compile(
    r"^(?P<ts>\d+(?:\.\d+)?)\s+IP6?\s+"
    + _ENDPOINT.format(side="src")
    + r"\s+>\s+"
    + _ENDPOINT.format(side="dst")
    + r":\s*(?P<rest>.*)$"
)

#: Length extractors tried in order against the part after the colon.
_LENGTH_RES = (
    re.compile(r"\blength\s+(?P<len>\d+)"),
    re.compile(r"\b(?:tcp|udp|UDP|TCP)\s+(?P<len>\d+)\b"),
    re.compile(r"\((?P<len>\d+)\)\s*$"),
)


@dataclass(frozen=True)
class TcpdumpParseResult:
    """Outcome of parsing a tcpdump text log."""

    trace: PacketTrace
    parsed_lines: int
    skipped_lines: int

    @property
    def total_lines(self) -> int:
        """Lines examined (parsed plus skipped)."""
        return self.parsed_lines + self.skipped_lines


def parse_tcpdump_line(
    line: str, device_address: str
) -> tuple[float, str, str, int] | None:
    """Parse one tcpdump text line.

    Returns ``(timestamp, src, dst, length)`` or ``None`` when the line does
    not describe an IP packet (comments, truncated lines, link-level
    notices).  ``src``/``dst`` include the port when present
    (``"10.0.0.2:443"`` style) so they can serve as flow keys.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        return None
    timestamp = float(match.group("ts"))
    src = match.group("src")
    dst = match.group("dst")
    if match.group("src_port"):
        src = f"{src}:{match.group('src_port')}"
    if match.group("dst_port"):
        dst = f"{dst}:{match.group('dst_port')}"
    rest = match.group("rest")
    length = 0
    for pattern in _LENGTH_RES:
        length_match = pattern.search(rest)
        if length_match:
            length = int(length_match.group("len"))
            break
    del device_address  # direction is decided by the caller, kept for symmetry
    return timestamp, src, dst, length


def parse_tcpdump_lines(
    lines: Iterable[str],
    device_address: str = "10.0.0.2",
    name: str = "tcpdump",
) -> TcpdumpParseResult:
    """Parse an iterable of tcpdump text lines into a packet trace.

    Direction is uplink when the source address starts with
    ``device_address``, downlink otherwise.  Flow ids are assigned per
    remote endpoint (the non-device side of the conversation), which matches
    how the synthetic workloads label application sessions.
    """
    packets: list[Packet] = []
    flow_ids: dict[str, int] = {}
    parsed = 0
    skipped = 0
    for line in lines:
        if not line.strip():
            continue
        fields = parse_tcpdump_line(line, device_address)
        if fields is None:
            skipped += 1
            continue
        timestamp, src, dst, length = fields
        uplink = src.split(":")[0] == device_address
        remote = dst if uplink else src
        flow_id = flow_ids.setdefault(remote, len(flow_ids))
        packets.append(
            Packet(
                timestamp=timestamp,
                size=length,
                direction=Direction.UPLINK if uplink else Direction.DOWNLINK,
                flow_id=flow_id,
            )
        )
        parsed += 1
    trace = PacketTrace(packets, name=name).normalized()
    return TcpdumpParseResult(trace=trace, parsed_lines=parsed, skipped_lines=skipped)


def read_tcpdump(
    source: str | Path | TextIO,
    device_address: str = "10.0.0.2",
    name: str | None = None,
) -> TcpdumpParseResult:
    """Read a tcpdump text log from a path or open file object."""
    if hasattr(source, "read"):
        lines: Iterator[str] = iter(source)  # type: ignore[arg-type]
        label = name or "tcpdump"
        return parse_tcpdump_lines(lines, device_address, label)
    path = Path(source)
    label = name or path.stem
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        return parse_tcpdump_lines(handle, device_address, label)


def format_tcpdump_line(
    packet: Packet,
    device_address: str = "10.0.0.2",
    remote_address: str = "198.51.100.1",
    epoch: float = 0.0,
) -> str:
    """Render a packet as a tcpdump-style text line (inverse of the parser)."""
    timestamp = epoch + packet.timestamp
    device = f"{device_address}.{40000 + packet.flow_id % 10000}"
    remote = f"{remote_address}.443"
    if packet.direction is Direction.UPLINK:
        src, dst = device, remote
    else:
        src, dst = remote, device
    return f"{timestamp:.6f} IP {src} > {dst}: tcp {packet.size}"


def write_tcpdump(
    trace: PacketTrace,
    path: str | Path,
    device_address: str = "10.0.0.2",
    epoch: float = 0.0,
) -> int:
    """Write a trace as a tcpdump-style text log; returns the line count.

    The output round-trips through :func:`read_tcpdump` (timestamps are
    re-based to zero on read because the parser normalises the trace).
    """
    lines = [
        format_tcpdump_line(packet, device_address=device_address, epoch=epoch)
        for packet in trace
    ]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return len(lines)
