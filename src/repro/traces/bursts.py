"""Burst and session segmentation of packet traces.

The paper reasons about traffic at two granularities above packets:

* a **burst** is a maximal run of packets whose consecutive inter-arrival
  gaps are all below a gap threshold; the MakeIdle algorithm tries to detect
  the end of a burst, and Figure 7 illustrates "shifting" bursts to batch
  them;
* a **session** is a burst attributed to a flow (a new connection or request
  initiated while the radio is idle); MakeActive delays the start of
  sessions to batch several of them into a single radio promotion.

This module segments traces into bursts/sessions and provides the helper
used by the fixed-delay MakeActive variant to compute ``k``, the average
number of bursts per radio active period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .packet import Packet, PacketTrace

__all__ = [
    "Burst",
    "segment_bursts",
    "bursts_per_active_period",
    "session_start_times",
]


@dataclass(frozen=True)
class Burst:
    """A maximal run of closely spaced packets.

    Attributes
    ----------
    start:
        Timestamp of the first packet in the burst.
    end:
        Timestamp of the last packet in the burst.
    packet_count:
        Number of packets in the burst.
    total_bytes:
        Sum of packet sizes in the burst.
    flow_ids:
        Distinct flow identifiers contributing packets to the burst.
    """

    start: float
    end: float
    packet_count: int
    total_bytes: int
    flow_ids: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"burst end ({self.end}) must be >= start ({self.start})"
            )
        if self.packet_count < 1:
            raise ValueError("a burst contains at least one packet")

    @property
    def duration(self) -> float:
        """Time from first to last packet of the burst, in seconds."""
        return self.end - self.start

    def gap_to(self, other: "Burst") -> float:
        """Idle time between the end of this burst and the start of ``other``."""
        return other.start - self.end


def segment_bursts(trace: PacketTrace, gap_threshold: float) -> list[Burst]:
    """Split ``trace`` into bursts separated by gaps longer than ``gap_threshold``.

    Two consecutive packets belong to the same burst when their inter-arrival
    time is less than or equal to ``gap_threshold`` seconds.  An empty trace
    yields an empty list.

    Parameters
    ----------
    trace:
        The packet trace to segment.
    gap_threshold:
        Maximum intra-burst gap in seconds; must be non-negative.  A natural
        choice is the carrier's total inactivity timeout ``t1 + t2`` (gaps
        longer than that force a demotion in the status quo) or the
        offline-optimal ``t_threshold``.
    """
    if gap_threshold < 0:
        raise ValueError(f"gap_threshold must be non-negative, got {gap_threshold}")
    if not trace:
        return []

    bursts: list[Burst] = []
    current: list[Packet] = [trace[0]]
    for previous, packet in zip(trace, trace[1:]):
        if packet.timestamp - previous.timestamp <= gap_threshold:
            current.append(packet)
        else:
            bursts.append(_finalize(current))
            current = [packet]
    bursts.append(_finalize(current))
    return bursts


def _finalize(packets: Sequence[Packet]) -> Burst:
    """Build a :class:`Burst` from a non-empty run of packets."""
    return Burst(
        start=packets[0].timestamp,
        end=packets[-1].timestamp,
        packet_count=len(packets),
        total_bytes=sum(p.size for p in packets),
        flow_ids=tuple(sorted({p.flow_id for p in packets})),
    )


def bursts_per_active_period(
    trace: PacketTrace, burst_gap: float, active_window: float
) -> float:
    """Average number of bursts falling inside one radio active period.

    The fixed-delay MakeActive variant sets ``T_fix_delay = k * (t1 + t2)``
    where ``k`` is "the average number of bursts during each of the radio's
    active period" (paper Section 5.1).  An *active period* here is a maximal
    run of bursts whose inter-burst gaps are all at most ``active_window``
    (the status-quo inactivity timeout): under the default timers the radio
    stays Active across those gaps.

    Parameters
    ----------
    trace:
        The packet trace to analyse.
    burst_gap:
        Gap threshold used to segment packets into bursts (seconds).
    active_window:
        Maximum inter-burst gap for which the radio would have remained
        Active under the status quo, i.e. ``t1 + t2``.

    Returns
    -------
    float
        The mean number of bursts per active period; at least 1.0 for any
        non-empty trace, 0.0 for an empty trace.
    """
    bursts = segment_bursts(trace, burst_gap)
    if not bursts:
        return 0.0
    periods: list[int] = []
    count = 1
    for previous, current in zip(bursts, bursts[1:]):
        if previous.gap_to(current) <= active_window:
            count += 1
        else:
            periods.append(count)
            count = 1
    periods.append(count)
    return sum(periods) / len(periods)


def session_start_times(
    trace: PacketTrace, idle_gap: float
) -> list[tuple[float, int]]:
    """Return ``(timestamp, flow_id)`` of packets that start a new session.

    A packet starts a session when it is the first packet of its flow, or
    when the previous packet of the same flow is more than ``idle_gap``
    seconds earlier.  MakeActive only acts on session starts that occur while
    the radio is Idle; the simulator filters this list against the radio
    state at run time.
    """
    if idle_gap < 0:
        raise ValueError(f"idle_gap must be non-negative, got {idle_gap}")
    last_seen: dict[int, float] = {}
    starts: list[tuple[float, int]] = []
    for packet in trace:
        previous = last_seen.get(packet.flow_id)
        if previous is None or packet.timestamp - previous > idle_gap:
            starts.append((packet.timestamp, packet.flow_id))
        last_seen[packet.flow_id] = packet.timestamp
    return starts


def iter_burst_gaps(bursts: Sequence[Burst]) -> Iterator[float]:
    """Yield the idle gaps between consecutive bursts."""
    for previous, current in zip(bursts, bursts[1:]):
        yield previous.gap_to(current)
