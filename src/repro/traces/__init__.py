"""Packet traces: containers, statistics, segmentation, pcap I/O, generators.

This subpackage is the workload substrate of the library.  Everything the
energy-saving algorithms consume is a :class:`~repro.traces.packet.PacketTrace`,
whether it came from a real ``tcpdump`` capture (:mod:`repro.traces.pcap`),
a synthetic application model (:mod:`repro.traces.synthetic`) or a synthetic
user workload (:mod:`repro.traces.users`).
"""

from .bursts import (
    Burst,
    bursts_per_active_period,
    segment_bursts,
    session_start_times,
)
from .filters import (
    add_jitter,
    clip_sizes,
    downsample,
    drop_direction,
    gap_histogram,
    interleave,
    remap_flows,
    scale_time,
    slice_windows,
    split_by_app,
    split_by_flow,
    split_train_test,
    thin_by_fraction,
)
from .packet import Direction, Packet, PacketTrace, merge_traces
from .tcpdump import (
    TcpdumpParseResult,
    parse_tcpdump_lines,
    read_tcpdump,
    write_tcpdump,
)
from .pcap import PcapError, PcapReader, PcapWriter, read_pcap, write_pcap
from .streaming import (
    ChunkedPacketStream,
    RateEnvelope,
    merge_packet_streams,
    stream_application_packets,
    stream_user_day_packets,
)
from .stats import (
    EmpiricalCdf,
    SlidingWindowDistribution,
    TraceSummary,
    inter_arrival_percentile,
    summarize_trace,
)
from .synthetic import (
    APPLICATION_NAMES,
    APPLICATION_PROFILES,
    ApplicationProfile,
    PacketTrainSpec,
    generate_application_packets,
    generate_application_trace,
    generate_mixed_trace,
    generate_periodic_trace,
    generate_poisson_trace,
)
from .users import (
    USER_POPULATIONS,
    UserProfile,
    population_traces,
    user_ids,
    user_profile,
    user_trace,
)

__all__ = [
    "APPLICATION_NAMES",
    "TcpdumpParseResult",
    "add_jitter",
    "clip_sizes",
    "downsample",
    "drop_direction",
    "gap_histogram",
    "interleave",
    "parse_tcpdump_lines",
    "read_tcpdump",
    "remap_flows",
    "scale_time",
    "slice_windows",
    "split_by_app",
    "split_by_flow",
    "split_train_test",
    "ChunkedPacketStream",
    "RateEnvelope",
    "stream_application_packets",
    "stream_user_day_packets",
    "thin_by_fraction",
    "write_tcpdump",
    "APPLICATION_PROFILES",
    "ApplicationProfile",
    "Burst",
    "Direction",
    "EmpiricalCdf",
    "Packet",
    "PacketTrace",
    "PacketTrainSpec",
    "PcapError",
    "PcapReader",
    "PcapWriter",
    "SlidingWindowDistribution",
    "TraceSummary",
    "USER_POPULATIONS",
    "UserProfile",
    "bursts_per_active_period",
    "generate_application_packets",
    "generate_application_trace",
    "generate_mixed_trace",
    "generate_periodic_trace",
    "generate_poisson_trace",
    "inter_arrival_percentile",
    "merge_packet_streams",
    "merge_traces",
    "population_traces",
    "read_pcap",
    "segment_bursts",
    "session_start_times",
    "summarize_trace",
    "user_ids",
    "user_profile",
    "user_trace",
    "write_pcap",
]
