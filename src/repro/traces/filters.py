"""Trace transformation utilities.

The evaluation pipelines repeatedly need the same handful of trace
manipulations — cutting a day-long capture into analysis windows, isolating
one application's packets, thinning a dense trace for a quick experiment,
or perturbing timestamps to test a policy's robustness.  These helpers all
consume and produce :class:`~repro.traces.packet.PacketTrace` objects, so
they compose freely with the generators, the pcap reader and the simulator.

Every function is pure: the input trace is never modified.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Iterable, Sequence

from .packet import Direction, Packet, PacketTrace

__all__ = [
    "slice_windows",
    "split_by_app",
    "split_by_flow",
    "downsample",
    "thin_by_fraction",
    "add_jitter",
    "scale_time",
    "remap_flows",
    "interleave",
    "clip_sizes",
    "drop_direction",
    "gap_histogram",
    "split_train_test",
]


def slice_windows(
    trace: PacketTrace, window_s: float, *, keep_empty: bool = False
) -> list[PacketTrace]:
    """Cut a trace into consecutive windows of ``window_s`` seconds.

    Each window is re-based so its first packet keeps its absolute
    timestamp (windows are slices, not normalised traces).  Empty windows
    are dropped unless ``keep_empty`` is set.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    if not trace:
        return []
    start = trace.start_time
    end = trace.end_time
    windows: list[PacketTrace] = []
    index = 0
    while start + index * window_s <= end:
        low = start + index * window_s
        high = low + window_s
        window = trace.between(low, high)
        if window or keep_empty:
            windows.append(window.renamed(f"{trace.name}[{index}]"))
        index += 1
    return windows


def split_by_app(trace: PacketTrace) -> dict[str, PacketTrace]:
    """Split a trace into one sub-trace per application label.

    Packets with an empty ``app`` label are grouped under ``""``.
    """
    groups: dict[str, list[Packet]] = {}
    for packet in trace:
        groups.setdefault(packet.app, []).append(packet)
    return {
        app: PacketTrace(packets, name=app or trace.name)
        for app, packets in groups.items()
    }


def split_by_flow(trace: PacketTrace) -> dict[int, PacketTrace]:
    """Split a trace into one sub-trace per flow id."""
    groups: dict[int, list[Packet]] = {}
    for packet in trace:
        groups.setdefault(packet.flow_id, []).append(packet)
    return {
        flow_id: PacketTrace(packets, name=f"{trace.name}/flow{flow_id}")
        for flow_id, packets in groups.items()
    }


def downsample(trace: PacketTrace, keep_every: int) -> PacketTrace:
    """Keep every ``keep_every``-th packet (1 keeps everything)."""
    if keep_every < 1:
        raise ValueError(f"keep_every must be >= 1, got {keep_every}")
    kept = [packet for index, packet in enumerate(trace) if index % keep_every == 0]
    return PacketTrace(kept, name=trace.name)


def thin_by_fraction(
    trace: PacketTrace, keep_fraction: float, seed: int = 0
) -> PacketTrace:
    """Keep each packet independently with probability ``keep_fraction``.

    Deterministic for a given seed; useful for quick what-if runs on long
    user traces.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(
            f"keep_fraction must be in (0, 1], got {keep_fraction}"
        )
    rng = random.Random(seed)
    kept = [packet for packet in trace if rng.random() < keep_fraction]
    return PacketTrace(kept, name=trace.name)


def add_jitter(
    trace: PacketTrace, max_jitter_s: float, seed: int = 0
) -> PacketTrace:
    """Perturb every timestamp by a uniform jitter in ``[-max, +max]`` seconds.

    Timestamps are clamped at zero so the result is still a valid trace.
    Robustness studies use this to check that MakeIdle's predictions do not
    hinge on exact packet timing.
    """
    if max_jitter_s < 0:
        raise ValueError(f"max_jitter_s must be non-negative, got {max_jitter_s}")
    rng = random.Random(seed)
    jittered = [
        replace(
            packet,
            timestamp=max(0.0, packet.timestamp + rng.uniform(-max_jitter_s, max_jitter_s)),
        )
        for packet in trace
    ]
    return PacketTrace(jittered, name=trace.name)


def scale_time(trace: PacketTrace, factor: float) -> PacketTrace:
    """Stretch (factor > 1) or compress (factor < 1) all inter-arrival times."""
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    if not trace:
        return trace
    origin = trace.start_time
    scaled = [
        replace(packet, timestamp=origin + (packet.timestamp - origin) * factor)
        for packet in trace
    ]
    return PacketTrace(scaled, name=trace.name)


def remap_flows(
    trace: PacketTrace, mapping: Callable[[Packet], int]
) -> PacketTrace:
    """Re-assign flow ids using ``mapping`` (e.g. collapse all flows of an app)."""
    remapped = [packet.with_flow(mapping(packet)) for packet in trace]
    return PacketTrace(remapped, name=trace.name)


def interleave(
    traces: Iterable[PacketTrace],
    name: str = "interleaved",
    separate_flows: bool = True,
) -> PacketTrace:
    """Merge several traces into one combined workload.

    Unlike :func:`~repro.traces.packet.merge_traces`, flow ids are offset per
    input trace (when ``separate_flows`` is set) so sessions from different
    applications never collide — which matters to MakeActive's batching.
    """
    packets: list[Packet] = []
    flow_offset = 0
    for trace in traces:
        if separate_flows and trace:
            max_flow = max(p.flow_id for p in trace)
            packets.extend(p.with_flow(p.flow_id + flow_offset) for p in trace)
            flow_offset += max_flow + 1
        else:
            packets.extend(trace)
    return PacketTrace(packets, name=name)


def clip_sizes(trace: PacketTrace, mtu: int = 1500) -> PacketTrace:
    """Clamp packet sizes to ``mtu`` bytes (sanity guard for parsed captures)."""
    if mtu <= 0:
        raise ValueError(f"mtu must be positive, got {mtu}")
    clipped = [
        replace(packet, size=min(packet.size, mtu)) if packet.size > mtu else packet
        for packet in trace
    ]
    return PacketTrace(clipped, name=trace.name)


def drop_direction(trace: PacketTrace, direction: Direction) -> PacketTrace:
    """Remove all packets travelling in ``direction``."""
    return trace.filter(lambda p: p.direction is not direction)


def gap_histogram(
    trace: PacketTrace, bin_edges: Sequence[float]
) -> list[int]:
    """Histogram of inter-arrival times over explicit ``bin_edges``.

    ``bin_edges`` must be increasing; gaps above the last edge are counted
    in a final overflow bin, so the returned list has ``len(bin_edges)``
    entries.
    """
    if len(bin_edges) < 1:
        raise ValueError("bin_edges must contain at least one edge")
    edges = list(bin_edges)
    if any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("bin_edges must be strictly increasing")
    counts = [0] * len(edges)
    for gap in trace.inter_arrival_times:
        placed = False
        for index, edge in enumerate(edges):
            if gap <= edge:
                counts[index] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    return counts


def split_train_test(
    trace: PacketTrace, train_fraction: float = 0.5
) -> tuple[PacketTrace, PacketTrace]:
    """Split a trace chronologically into a training and a testing part.

    The paper notes it grants the "95% IAT" baseline leeway by evaluating it
    on the data it was trained on; this helper supports the honest variant.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    if not trace:
        return trace, trace
    cut = trace.start_time + trace.duration * train_fraction
    train = trace.filter(lambda p: p.timestamp <= cut)
    test = trace.filter(lambda p: p.timestamp > cut)
    return train.renamed(f"{trace.name}/train"), test.renamed(f"{trace.name}/test")
