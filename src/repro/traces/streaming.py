"""Lazy, bounded-memory packet sources for cell-scale simulation.

The simulation kernel (:mod:`repro.sim.engine`) consumes packet
*iterators*: it holds one pending packet per UE, so a cell's memory is
bounded by the number of attached devices — provided the workloads
themselves are generated lazily.  This module supplies those lazy sources.

A streamed workload is produced **chunk by chunk**: each chunk of
``chunk_s`` seconds is synthesised with the existing (deterministic)
generators, yielded packet by packet, and discarded before the next chunk
is built.  Peak memory is therefore one chunk per *currently generating*
device rather than one full trace per device, and a 10k-device cell over
hours of traffic streams in a few megabytes.

Chunked generation is deterministic given ``(name, duration, seed,
chunk_s)`` but is a *different* sample of the application's traffic model
than the equivalent single-shot :func:`generate_application_trace` call —
bursts do not straddle chunk boundaries.  The statistics that matter to
the energy model (inter-arrival mix, burst shapes) are unchanged; see
``docs/DESIGN.md`` ("substitution rule") for why statistically equivalent
regeneration is the contract throughout this library.

Block protocol (the kernel fast path)
-------------------------------------

Application streams additionally expose :meth:`ChunkedPacketStream.packet_blocks`:
an iterator of **chunk-local packet lists** (each chunk's packets, already
shifted to absolute stream time, as one plain list).  The kernel walks
these arrays with list indexing instead of resuming a Python generator
frame per packet — the same packets in the same order, delivered without
the per-``next()`` interpreter overhead (see ``docs/DESIGN.md`` "hot
path").  Sources that don't implement the protocol (plain generators,
merged streams) keep working through the per-packet iterator path.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Callable, Iterable, Iterator, Sequence

from .packet import Packet
from .synthetic import generate_application_packets

#: A traffic-rate envelope: absolute stream time (seconds) -> positive
#: session-rate multiplier.  Scenario diurnal shapes
#: (:class:`repro.scenarios.shapes.DiurnalShape`) are one implementation.
RateEnvelope = Callable[[float], float]

__all__ = [
    "ChunkedPacketStream",
    "RateEnvelope",
    "merge_packet_streams",
    "stream_application_packets",
    "stream_user_day_packets",
]


def _chunk_seed(seed: int, index: int) -> int:
    """Derive chunk ``index``'s generator seed from the stream seed.

    Hashed rather than strided: cell populations hand out *consecutive*
    per-device seeds, so any linear ``seed + K * index`` rule would make
    device ``i``'s chunk ``k`` collide with device ``i + K*k``'s chunk 0,
    replaying identical traffic across devices at scale.
    """
    return zlib.crc32(f"{seed}/{index}".encode("ascii"))


def _app_stream_seed(seed: int, index: int) -> int:
    """Derive the per-application stream seed of a user-day workload.

    Hashed for the same reason as :func:`_chunk_seed` — a linear
    ``seed + 13 * index`` rule made device ``i``'s application at index
    ``k`` replay device ``i + 13k``'s index-0 application traffic under
    the consecutive per-device seeds cell populations hand out.  The
    ``app/`` prefix keeps this derivation chain disjoint from the chunk
    chain, so an application stream never shares a generator seed with
    some other stream's chunk.
    """
    return zlib.crc32(f"app/{seed}/{index}".encode("ascii"))


class ChunkedPacketStream:
    """One application's packets, lazily generated ``chunk_s`` at a time.

    Behaves as a plain packet iterator (``next()`` / ``for`` — drop-in
    for the generator this used to be) *and* exposes
    :meth:`packet_blocks` for consumers that can walk chunk-local arrays
    directly.  Both views share one cursor over the same underlying chunk
    sequence, so mixing them never duplicates or drops packets.
    """

    __slots__ = ("_chunks", "_buf", "_idx")

    def __init__(
        self,
        name: str,
        duration: float,
        seed: int,
        chunk_s: float,
        envelope: RateEnvelope | None,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if chunk_s <= 0:
            raise ValueError(f"chunk_s must be positive, got {chunk_s}")
        self._chunks = self._generate_chunks(name, duration, seed, chunk_s,
                                             envelope)
        self._buf: Sequence[Packet] = ()
        self._idx = 0

    @staticmethod
    def _generate_chunks(
        name: str,
        duration: float,
        seed: int,
        chunk_s: float,
        envelope: RateEnvelope | None,
    ) -> Iterator[list[Packet]]:
        """Yield one absolute-time packet list per generated chunk.

        Chunk 0 reuses the generator's packets unmodified (adding an
        offset of 0.0 preserves every timestamp, so the copy the old
        per-packet ``shifted(0.0)`` produced held identical values);
        later chunks rebuild each packet once at ``timestamp + offset`` —
        the same float addition ``Packet.shifted`` performs.
        """
        offset = 0.0
        index = 0
        while offset < duration:
            length = min(chunk_s, duration - offset)
            rate = None
            if envelope is not None:
                def rate(local: float, _offset: float = offset) -> float:
                    return envelope(_offset + local)
            chunk = generate_application_packets(
                name, duration=length, seed=_chunk_seed(seed, index),
                rate=rate,
            )
            if offset:
                chunk = [
                    Packet(p.timestamp + offset, p.size, p.direction,
                           p.flow_id, p.app)
                    for p in chunk
                ]
            yield chunk
            offset += length
            index += 1

    def __iter__(self) -> "ChunkedPacketStream":
        return self

    def __next__(self) -> Packet:
        idx = self._idx
        if idx < len(self._buf):
            self._idx = idx + 1
            return self._buf[idx]
        for chunk in self._chunks:
            if chunk:
                self._buf = chunk
                self._idx = 1
                return chunk[0]
        raise StopIteration

    def packet_blocks(self) -> Iterator[Sequence[Packet]]:
        """Iterate the remaining packets as chunk-local lists.

        Starts from the current cursor position (packets already consumed
        via ``next()`` are not repeated) and leaves the per-packet view
        exhausted as blocks are taken.
        """
        if self._idx < len(self._buf):
            rest = self._buf[self._idx:]
            self._buf = ()
            self._idx = 0
            yield rest
        yield from self._chunks


def stream_application_packets(
    name: str,
    duration: float = 3600.0,
    seed: int = 0,
    chunk_s: float = 600.0,
    envelope: RateEnvelope | None = None,
) -> ChunkedPacketStream:
    """One application's packets as a lazy, chunked stream.

    Equivalent in distribution to
    :func:`~repro.traces.synthetic.generate_application_trace` but with
    peak memory of one chunk instead of the whole trace.  Packets are
    yielded in non-decreasing timestamp order, as the kernel requires;
    the returned :class:`ChunkedPacketStream` also exposes the
    block-walking fast path (see the module docstring).

    ``envelope`` applies diurnal traffic shaping: a callable from
    *absolute* stream time to a positive session-rate multiplier, handed
    to the per-chunk generator shifted by the chunk's offset so a chunk
    generated for the 9am-10am window sees the 9am-10am rates.  ``None``
    is the unshaped stream, byte-identical to earlier releases.
    """
    return ChunkedPacketStream(name, duration, seed, chunk_s, envelope)


def stream_user_day_packets(
    apps: Iterable[str],
    duration: float = 3600.0,
    seed: int = 0,
    chunk_s: float = 600.0,
    envelope: RateEnvelope | None = None,
) -> Iterator[Packet]:
    """Yield a multi-application device workload lazily.

    One stream per application (flow ids remapped so applications never
    collide), merged in time order — the streaming analogue of building a
    user trace with :func:`~repro.traces.packet.merge_traces`.  The
    optional ``envelope`` shapes every constituent application stream
    with the same time-of-day rate multipliers (see
    :func:`stream_application_packets`).
    """
    streams = [
        _remap_flows(
            stream_application_packets(
                app, duration=duration, seed=_app_stream_seed(seed, index),
                chunk_s=chunk_s, envelope=envelope,
            ),
            offset=index * 1_000_000,
        )
        for index, app in enumerate(apps)
    ]
    return merge_packet_streams(*streams)


def _remap_flows(stream: Iterator[Packet], offset: int) -> Iterator[Packet]:
    for packet in stream:
        yield packet.with_flow(packet.flow_id + offset)


def merge_packet_streams(*streams: Iterable[Packet]) -> Iterator[Packet]:
    """Merge time-ordered packet streams into one, lazily.

    Holds one pending packet per input stream (``heapq.merge``), so merging
    many lazy sources stays bounded-memory.  Inputs must each be in
    non-decreasing timestamp order.
    """
    return heapq.merge(*streams, key=lambda p: p.timestamp)
