"""Energy accounting: integrating power over a radio timeline and a trace.

The paper estimates the energy of a simulated run as the sum of three parts
(Section 6.1 and Figure 1):

* **Data energy** — while the device is actively sending or receiving, it
  draws the bulk-transfer power of Table 1/2; the per-packet energy is the
  packet's share of transfer time multiplied by the direction-specific power.
* **Tail energy** — while the radio is Active or High-power idle but not
  transferring, it draws the corresponding tail power ``P_t1`` / ``P_t2``
  (these are the "DCH Timer" and "FACH Timer" bars of Figure 1).
* **Switch energy** — each demotion/promotion has a fixed energy cost.

:class:`DataEnergyModel` converts a packet trace into per-packet transfer
times and energies using the paper's per-second method; :class:`EnergyAccountant`
combines that with a state-machine timeline and switch events into an
:class:`EnergyBreakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..rrc.profiles import CarrierProfile
from ..rrc.state_machine import StateInterval, SwitchEvent
from ..rrc.states import RadioState
from ..rrc.tables import transition_table
from ..traces.packet import PacketTrace

__all__ = [
    "DataEnergyModel",
    "EnergyBreakdown",
    "EnergyAccountant",
    "PacketTransfer",
    "assemble_breakdown",
]


@dataclass(frozen=True)
class PacketTransfer:
    """Transfer time and energy attributed to one packet."""

    timestamp: float
    duration_s: float
    energy_j: float
    uplink: bool


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one simulated run, split by cause (the Figure 1 categories)."""

    data_j: float
    active_tail_j: float
    high_idle_tail_j: float
    idle_j: float
    switch_j: float
    data_time_s: float
    active_time_s: float
    high_idle_time_s: float
    idle_time_s: float
    promotions: int
    demotions: int

    @property
    def total_j(self) -> float:
        """Total energy of the run in joules."""
        return (
            self.data_j
            + self.active_tail_j
            + self.high_idle_tail_j
            + self.idle_j
            + self.switch_j
        )

    @property
    def tail_j(self) -> float:
        """Tail energy: radio on (Active or High idle) but not transferring."""
        return self.active_tail_j + self.high_idle_tail_j

    @property
    def switch_count(self) -> int:
        """Total number of state switches (promotions plus demotions)."""
        return self.promotions + self.demotions

    def fraction(self, component_j: float) -> float:
        """Fraction of the total contributed by ``component_j`` (0 when total is 0)."""
        total = self.total_j
        return component_j / total if total > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown as a plain dictionary (for tables and JSON)."""
        return {
            "data_j": self.data_j,
            "active_tail_j": self.active_tail_j,
            "high_idle_tail_j": self.high_idle_tail_j,
            "idle_j": self.idle_j,
            "switch_j": self.switch_j,
            "total_j": self.total_j,
            "data_time_s": self.data_time_s,
            "active_time_s": self.active_time_s,
            "high_idle_time_s": self.high_idle_time_s,
            "idle_time_s": self.idle_time_s,
            "promotions": float(self.promotions),
            "demotions": float(self.demotions),
        }


class DataEnergyModel:
    """Per-packet transfer time and energy, following the paper's method.

    For a packet that follows another packet within ``burst_gap`` seconds,
    the transfer time is the inter-arrival gap and the energy is that gap
    multiplied by the direction-specific bulk power (this is exactly the
    estimate described in Section 6.1).  For the first packet of a burst the
    gap is not meaningful, so the transfer time falls back to the packet's
    serialisation time at the configured link rate (bounded below by
    ``min_packet_time``).

    ``burst_gap`` defaults to the smaller of one second and the profile's
    offline threshold ``t_threshold``: gaps longer than the threshold are
    tail time by definition (the radio could profitably have been demoted),
    so charging them as transfer time would misattribute energy and make the
    offline-optimal rule appear sub-optimal.
    """

    def __init__(
        self,
        profile: CarrierProfile,
        burst_gap: float | None = None,
        downlink_rate_mbps: float = 5.0,
        uplink_rate_mbps: float = 1.0,
        min_packet_time: float = 0.002,
    ) -> None:
        if burst_gap is None:
            from .model import TailEnergyModel

            burst_gap = min(1.0, TailEnergyModel(profile).t_threshold)
        if burst_gap <= 0:
            raise ValueError(f"burst_gap must be positive, got {burst_gap}")
        if downlink_rate_mbps <= 0 or uplink_rate_mbps <= 0:
            raise ValueError("link rates must be positive")
        if min_packet_time <= 0:
            raise ValueError("min_packet_time must be positive")
        self._profile = profile
        self._burst_gap = burst_gap
        self._downlink_rate = downlink_rate_mbps * 1e6 / 8.0  # bytes per second
        self._uplink_rate = uplink_rate_mbps * 1e6 / 8.0
        self._min_packet_time = min_packet_time
        # Hot-path constants from the profile's transition table — the
        # identical floats ``profile.transfer_power_w`` derives, snapshot
        # once so the kernel's per-packet fold never walks the property
        # chain (see repro.rrc.tables for the byte-identity contract).
        table = transition_table(profile)
        self._send_power_w = table.power_send_w
        self._recv_power_w = table.power_recv_w

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile supplying transfer powers."""
        return self._profile

    @property
    def burst_gap(self) -> float:
        """Maximum gap for which a packet is charged its inter-arrival time."""
        return self._burst_gap

    @property
    def uplink_rate(self) -> float:
        """Uplink serialisation rate in bytes per second."""
        return self._uplink_rate

    @property
    def downlink_rate(self) -> float:
        """Downlink serialisation rate in bytes per second."""
        return self._downlink_rate

    @property
    def min_packet_time(self) -> float:
        """Lower bound on one packet's serialisation time, seconds."""
        return self._min_packet_time

    @property
    def send_power_w(self) -> float:
        """Uplink transfer power (``profile.transfer_power_w(True)``), watts."""
        return self._send_power_w

    @property
    def recv_power_w(self) -> float:
        """Downlink transfer power (``profile.transfer_power_w(False)``), watts."""
        return self._recv_power_w

    def serialization_time(self, size: int, uplink: bool) -> float:
        """Time to put ``size`` bytes on the air at the configured link rate."""
        rate = self._uplink_rate if uplink else self._downlink_rate
        return max(self._min_packet_time, size / rate)

    def packet_transfers(self, trace: PacketTrace) -> list[PacketTransfer]:
        """Per-packet transfer records for ``trace``."""
        transfers: list[PacketTransfer] = []
        previous_time: float | None = None
        for packet in trace:
            uplink = packet.direction.is_uplink
            if previous_time is None:
                duration = self.serialization_time(packet.size, uplink)
            else:
                gap = packet.timestamp - previous_time
                if gap <= self._burst_gap:
                    duration = gap
                else:
                    duration = self.serialization_time(packet.size, uplink)
            energy = duration * (
                self._send_power_w if uplink else self._recv_power_w
            )
            transfers.append(
                PacketTransfer(packet.timestamp, duration, energy, uplink)
            )
            previous_time = packet.timestamp
        return transfers

    def total_data_energy(self, trace: PacketTrace) -> tuple[float, float]:
        """Return ``(energy_j, transfer_time_s)`` summed over the trace."""
        transfers = self.packet_transfers(trace)
        return (
            sum(t.energy_j for t in transfers),
            sum(t.duration_s for t in transfers),
        )


def assemble_breakdown(
    profile: CarrierProfile,
    *,
    data_j: float,
    data_time_s: float,
    active_time_s: float,
    high_idle_time_s: float,
    idle_time_s: float,
    switch_j: float,
    promotions: int,
    demotions: int,
) -> EnergyBreakdown:
    """Build an :class:`EnergyBreakdown` from pre-summed time/energy totals.

    This is the single place the tail/idle power formulas live: the batch
    :meth:`EnergyAccountant.account` path and the simulation kernel's
    streaming accumulation both call it, so their results agree exactly.
    Transfer time is attributed to the Active state (data can only flow
    while the radio is connected), so the Active tail time is the total
    Active-state time minus the transfer time, clamped at zero.  State
    powers come from the profile's transition table — the identical
    floats the ``power_*_w`` properties derive (see repro.rrc.tables).
    """
    table = transition_table(profile)
    active_tail_time = max(0.0, active_time_s - data_time_s)
    return EnergyBreakdown(
        data_j=data_j,
        active_tail_j=active_tail_time * table.power_active_w,
        high_idle_tail_j=high_idle_time_s * table.power_high_idle_w,
        idle_j=idle_time_s * table.power_idle_w,
        switch_j=switch_j,
        data_time_s=data_time_s,
        active_time_s=active_time_s,
        high_idle_time_s=high_idle_time_s,
        idle_time_s=idle_time_s,
        promotions=promotions,
        demotions=demotions,
    )


class EnergyAccountant:
    """Combines a trace, a radio timeline and switch events into a breakdown."""

    def __init__(
        self,
        profile: CarrierProfile,
        data_model: DataEnergyModel | None = None,
    ) -> None:
        self._profile = profile
        self._data_model = data_model or DataEnergyModel(profile)

    @property
    def profile(self) -> CarrierProfile:
        """The carrier profile used for all power values."""
        return self._profile

    @property
    def data_model(self) -> DataEnergyModel:
        """The per-packet transfer model."""
        return self._data_model

    def account(
        self,
        trace: PacketTrace,
        intervals: Sequence[StateInterval],
        switches: Sequence[SwitchEvent],
    ) -> EnergyBreakdown:
        """Compute the :class:`EnergyBreakdown` of one simulated run.

        Transfer time is attributed to the Active state (data can only flow
        while the radio is connected), so the Active tail time is the total
        Active-state time minus the transfer time, clamped at zero.
        """
        data_j, data_time = self._data_model.total_data_energy(trace)

        active_time = sum(
            i.duration for i in intervals
            if i.state in (RadioState.ACTIVE, RadioState.PROMOTING)
        )
        high_idle_time = sum(
            i.duration for i in intervals if i.state is RadioState.HIGH_IDLE
        )
        idle_time = sum(
            i.duration for i in intervals if i.state is RadioState.IDLE
        )
        switch_j = sum(s.energy_j for s in switches)
        promotions = sum(1 for s in switches if s.is_promotion)
        demotions = sum(1 for s in switches if s.is_demotion)

        return assemble_breakdown(
            self._profile,
            data_j=data_j,
            data_time_s=data_time,
            active_time_s=active_time,
            high_idle_time_s=high_idle_time,
            idle_time_s=idle_time,
            switch_j=switch_j,
            promotions=promotions,
            demotions=demotions,
        )
