"""Sensitivity analyses for the energy model's assumptions.

Section 6.1 of the paper acknowledges one modelling caveat: fast dormancy is
not deployed on US carriers, so its cost is approximated as 50 % of the
measured radio-off cost, and the authors report that re-running the
evaluation at 10 %, 20 % and 40 % "did not change appreciably".  This module
provides the machinery to reproduce that check and two further sweeps the
design depends on:

* :func:`dormancy_cost_sensitivity` — energy saving of a policy as a function
  of the assumed fast-dormancy cost fraction.
* :func:`inactivity_timer_sweep` — status-quo energy and switch count as the
  network's ``t1`` timer is varied (the knob the "4.5-second tail" baseline
  turns).
* :func:`switch_energy_sweep` — how the offline threshold ``t_threshold``
  (Section 4.1) moves as the per-switch energy ``E_switch`` changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..core.policy import RadioPolicy, StatusQuoPolicy
from ..rrc.profiles import CarrierProfile
from ..traces.packet import PacketTrace
from .model import TailEnergyModel

__all__ = [
    "SensitivityPoint",
    "SensitivitySweep",
    "dormancy_cost_sensitivity",
    "inactivity_timer_sweep",
    "switch_energy_sweep",
    "DEFAULT_DORMANCY_FRACTIONS",
]

#: The fractions the paper checked (Section 6.1): 10 %, 20 %, 40 % and 50 %.
DEFAULT_DORMANCY_FRACTIONS: tuple[float, ...] = (0.1, 0.2, 0.4, 0.5)


@dataclass(frozen=True)
class SensitivityPoint:
    """One point of a sensitivity sweep."""

    parameter: float
    energy_j: float
    energy_saved_fraction: float
    switch_count: int


@dataclass(frozen=True)
class SensitivitySweep:
    """A named series of sensitivity points."""

    parameter_name: str
    points: tuple[SensitivityPoint, ...]

    @property
    def parameters(self) -> tuple[float, ...]:
        """The swept parameter values, in the order they were evaluated."""
        return tuple(p.parameter for p in self.points)

    @property
    def savings(self) -> tuple[float, ...]:
        """Energy-saving fraction at each swept value."""
        return tuple(p.energy_saved_fraction for p in self.points)

    @property
    def max_savings_spread(self) -> float:
        """Largest minus smallest saving across the sweep.

        The paper's claim that results "did not change appreciably" across
        dormancy-cost fractions corresponds to this spread being small.
        """
        values = self.savings
        if not values:
            return 0.0
        return max(values) - min(values)

    def point_at(self, parameter: float) -> SensitivityPoint:
        """Return the point evaluated at ``parameter`` (exact match)."""
        for point in self.points:
            if point.parameter == parameter:
                return point
        raise KeyError(f"no sweep point at parameter {parameter!r}")


def _run_policy(
    trace: PacketTrace,
    profile: CarrierProfile,
    policy_factory: Callable[[], RadioPolicy],
):
    """Simulate ``trace`` on ``profile`` with a fresh policy instance."""
    # Imported lazily to avoid a circular import (sim depends on core.policy).
    from ..sim.simulator import TraceSimulator

    simulator = TraceSimulator(profile)
    return simulator.run(trace, policy_factory())


def dormancy_cost_sensitivity(
    trace: PacketTrace,
    profile: CarrierProfile,
    policy_factory: Callable[[], RadioPolicy],
    fractions: Sequence[float] = DEFAULT_DORMANCY_FRACTIONS,
) -> SensitivitySweep:
    """Sweep the assumed fast-dormancy cost fraction (Section 6.1 caveat).

    For every fraction the trace is simulated twice — once with the status
    quo and once with the policy under test — both against a profile whose
    ``dormancy_fraction`` is set to that value, and the saving is recorded.
    """
    if not fractions:
        raise ValueError("fractions must not be empty")
    points: list[SensitivityPoint] = []
    for fraction in fractions:
        swept_profile = profile.with_dormancy_fraction(fraction)
        baseline = _run_policy(trace, swept_profile, StatusQuoPolicy)
        result = _run_policy(trace, swept_profile, policy_factory)
        points.append(
            SensitivityPoint(
                parameter=fraction,
                energy_j=result.total_energy_j,
                energy_saved_fraction=result.energy_saved_fraction(baseline),
                switch_count=result.switch_count,
            )
        )
    return SensitivitySweep("dormancy_fraction", tuple(points))


def inactivity_timer_sweep(
    trace: PacketTrace,
    profile: CarrierProfile,
    timer_values: Sequence[float],
) -> SensitivitySweep:
    """Sweep the network inactivity timeout under the status quo.

    Each value replaces the carrier's total timeout (``t1`` with ``t2`` set
    to zero), which is exactly the knob the "4.5-second tail" proposal turns.
    The saving is measured against the carrier's deployed timers.
    """
    if not timer_values:
        raise ValueError("timer_values must not be empty")
    for value in timer_values:
        if value <= 0:
            raise ValueError(f"timer values must be positive, got {value}")
    baseline = _run_policy(trace, profile, StatusQuoPolicy)
    points: list[SensitivityPoint] = []
    for value in timer_values:
        swept_profile = profile.with_timers(t1=value, t2=0.0)
        result = _run_policy(trace, swept_profile, StatusQuoPolicy)
        if baseline.total_energy_j > 0:
            saving = 1.0 - result.total_energy_j / baseline.total_energy_j
        else:
            saving = 0.0
        points.append(
            SensitivityPoint(
                parameter=value,
                energy_j=result.total_energy_j,
                energy_saved_fraction=saving,
                switch_count=result.switch_count,
            )
        )
    return SensitivitySweep("inactivity_timeout", tuple(points))


def switch_energy_sweep(
    profile: CarrierProfile,
    scale_factors: Sequence[float],
) -> list[tuple[float, float]]:
    """How ``t_threshold`` moves as the switching energy is scaled.

    Returns ``(scale_factor, t_threshold)`` pairs.  The offline-optimal rule
    of Section 4.1 demotes the radio when the gap exceeds ``t_threshold``,
    the gap length at which the tail energy equals ``E_switch``; a more
    expensive switch pushes the threshold out, a cheaper one pulls it in.
    """
    if not scale_factors:
        raise ValueError("scale_factors must not be empty")
    results: list[tuple[float, float]] = []
    for factor in scale_factors:
        if factor <= 0:
            raise ValueError(f"scale factors must be positive, got {factor}")
        scaled = replace(
            profile,
            promotion_energy_j=profile.promotion_energy_j * factor,
            radio_off_energy_j=profile.radio_off_energy_j * factor,
        )
        results.append((factor, TailEnergyModel(scaled).t_threshold))
    return results
