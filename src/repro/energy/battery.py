"""Battery model and lifetime projection.

The paper's conclusion puts its savings in perspective by projecting battery
lifetime: the Nexus S loses about 7.3 hours of lifetime when using 3G instead
of 2G, so saving 66 % of the radio energy "might correspond to an increase in
lifetime by about 66 % of 7.3 hours, or about 4.8 hours".  This module makes
that projection explicit and reusable:

* :class:`Battery` describes a device battery (capacity, voltage).
* :class:`DevicePowerBudget` splits the device's average power draw into the
  radio component (which our policies reduce) and the rest of the platform
  (CPU, screen, …) which is unaffected.
* :func:`project_lifetime` converts a simulated
  :class:`~repro.energy.accounting.EnergyBreakdown` (or a savings fraction)
  into battery-lifetime hours, and :func:`lifetime_extension` reports the
  gain over the status quo.
"""

from __future__ import annotations

from dataclasses import dataclass

from .accounting import EnergyBreakdown

__all__ = [
    "Battery",
    "DevicePowerBudget",
    "LifetimeProjection",
    "GALAXY_NEXUS_BATTERY",
    "NEXUS_S_BATTERY",
    "project_lifetime",
    "lifetime_extension",
    "paper_lifetime_estimate",
]


@dataclass(frozen=True)
class Battery:
    """A device battery described by its nominal capacity and voltage.

    Attributes
    ----------
    capacity_mah:
        Nominal capacity in milliamp-hours.
    voltage_v:
        Nominal cell voltage in volts (Li-ion phones are ≈3.7 V).
    """

    capacity_mah: float
    voltage_v: float = 3.7

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError(f"capacity_mah must be positive, got {self.capacity_mah}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage_v must be positive, got {self.voltage_v}")

    @property
    def capacity_j(self) -> float:
        """Total stored energy in joules (capacity × voltage)."""
        return self.capacity_mah / 1000.0 * self.voltage_v * 3600.0

    @property
    def capacity_wh(self) -> float:
        """Total stored energy in watt-hours."""
        return self.capacity_j / 3600.0

    def hours_at_power(self, power_w: float) -> float:
        """How long the battery lasts at a constant drain of ``power_w`` watts."""
        if power_w <= 0:
            raise ValueError(f"power_w must be positive, got {power_w}")
        return self.capacity_j / power_w / 3600.0


#: Battery of the Galaxy Nexus used in the paper's Verizon measurements.
GALAXY_NEXUS_BATTERY = Battery(capacity_mah=1750.0)

#: Battery of the Nexus S used in the paper's T-Mobile measurements and in the
#: conclusion's lifetime estimate.
NEXUS_S_BATTERY = Battery(capacity_mah=1500.0)


@dataclass(frozen=True)
class DevicePowerBudget:
    """Average device power split into radio and non-radio components.

    The policies in this library only change the radio component; screen,
    CPU and other platform draw is unaffected, so lifetime projections must
    keep the two separate.

    Attributes
    ----------
    radio_power_w:
        Average power of the cellular radio under the status quo, watts.
    platform_power_w:
        Average power of everything else (CPU, screen, sensors), watts.
    """

    radio_power_w: float
    platform_power_w: float

    def __post_init__(self) -> None:
        if self.radio_power_w < 0:
            raise ValueError("radio_power_w must be non-negative")
        if self.platform_power_w < 0:
            raise ValueError("platform_power_w must be non-negative")

    @property
    def total_power_w(self) -> float:
        """Total average device power in watts."""
        return self.radio_power_w + self.platform_power_w

    @property
    def radio_fraction(self) -> float:
        """Fraction of total power drawn by the radio (0 when total is 0)."""
        total = self.total_power_w
        return self.radio_power_w / total if total > 0 else 0.0

    def with_radio_saving(self, saving_fraction: float) -> "DevicePowerBudget":
        """Return a budget whose radio power is reduced by ``saving_fraction``.

        ``saving_fraction`` may be negative (a scheme that costs energy);
        values above 1 are rejected because the radio cannot produce energy.
        """
        if saving_fraction > 1.0:
            raise ValueError(
                f"saving_fraction must be <= 1, got {saving_fraction}"
            )
        return DevicePowerBudget(
            radio_power_w=self.radio_power_w * (1.0 - saving_fraction),
            platform_power_w=self.platform_power_w,
        )

    @classmethod
    def from_breakdown(
        cls,
        breakdown: EnergyBreakdown,
        duration_s: float,
        platform_power_w: float = 0.35,
    ) -> "DevicePowerBudget":
        """Build a budget from a simulated run's energy breakdown.

        ``duration_s`` is the wall-clock length of the simulated run; the
        radio power is the breakdown's total energy averaged over it.  The
        default platform power (0.35 W) approximates an Android phone with
        the screen mostly off, matching the paper's background-application
        focus.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        return cls(
            radio_power_w=breakdown.total_j / duration_s,
            platform_power_w=platform_power_w,
        )


@dataclass(frozen=True)
class LifetimeProjection:
    """Battery-lifetime figures for a baseline and an energy-saving scheme."""

    baseline_hours: float
    scheme_hours: float
    radio_saving_fraction: float

    @property
    def extension_hours(self) -> float:
        """Extra battery hours gained by the scheme."""
        return self.scheme_hours - self.baseline_hours

    @property
    def extension_fraction(self) -> float:
        """Relative lifetime gain (0 when the baseline lifetime is 0)."""
        if self.baseline_hours <= 0:
            return 0.0
        return self.extension_hours / self.baseline_hours


def project_lifetime(
    battery: Battery,
    budget: DevicePowerBudget,
    radio_saving_fraction: float,
) -> LifetimeProjection:
    """Project battery lifetime before and after applying a radio saving.

    Parameters
    ----------
    battery:
        The device battery.
    budget:
        Status-quo power budget (radio + platform).
    radio_saving_fraction:
        Fraction of radio energy saved by the scheme (e.g. ``0.66``).
    """
    baseline_hours = battery.hours_at_power(budget.total_power_w)
    saved_budget = budget.with_radio_saving(radio_saving_fraction)
    if saved_budget.total_power_w <= 0:
        raise ValueError("scheme would leave the device drawing no power at all")
    scheme_hours = battery.hours_at_power(saved_budget.total_power_w)
    return LifetimeProjection(
        baseline_hours=baseline_hours,
        scheme_hours=scheme_hours,
        radio_saving_fraction=radio_saving_fraction,
    )


def lifetime_extension(
    battery: Battery,
    baseline: EnergyBreakdown,
    scheme: EnergyBreakdown,
    duration_s: float,
    platform_power_w: float = 0.35,
) -> LifetimeProjection:
    """Project the lifetime gain of ``scheme`` over ``baseline``.

    Both breakdowns must come from simulating the *same* trace over the
    same duration; the radio saving fraction is derived from their totals.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    budget = DevicePowerBudget.from_breakdown(baseline, duration_s, platform_power_w)
    if baseline.total_j > 0:
        saving = (baseline.total_j - scheme.total_j) / baseline.total_j
    else:
        saving = 0.0
    return project_lifetime(battery, budget, saving)


def paper_lifetime_estimate(
    saving_fraction: float,
    radio_lifetime_cost_hours: float = 7.3,
) -> float:
    """The paper's back-of-envelope lifetime gain (conclusion, Section 8).

    The Nexus S specification lists a 7.3-hour lifetime difference between
    2G and 3G talk time; the paper estimates the gain from saving a fraction
    ``s`` of radio energy as ``s × 7.3`` hours (66 % → ≈4.8 hours).
    """
    if not 0.0 <= saving_fraction <= 1.0:
        raise ValueError(
            f"saving_fraction must be in [0, 1], got {saving_fraction}"
        )
    if radio_lifetime_cost_hours < 0:
        raise ValueError("radio_lifetime_cost_hours must be non-negative")
    return saving_fraction * radio_lifetime_cost_hours
