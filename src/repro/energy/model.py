"""The paper's simplified power model: tail energy E(t) and t_threshold.

Section 4.1 of the paper models the energy spent between two adjacent
packets separated by ``t`` seconds, under the status-quo RRC timers, as the
piecewise function

.. math::

    E(t) = \\begin{cases}
        t \\, P_{t1}                                   & 0 < t \\le t_1 \\\\
        t_1 P_{t1} + (t - t_1) P_{t2}                  & t_1 < t \\le t_1 + t_2 \\\\
        t_1 P_{t1} + t_2 P_{t2} + E_{switch}           & t > t_1 + t_2
    \\end{cases}

where ``P_t1`` and ``P_t2`` are the Active and High-power-idle tail powers
and ``E_switch`` is the cost of one demotion plus the promotion needed for
the next packet.  Switching to Idle immediately after the first packet
instead costs exactly ``E_switch``; it pays off iff ``E_switch < E(t)``,
and because ``E(t)`` is non-decreasing there is a unique threshold
``t_threshold`` such that switching wins exactly when ``t > t_threshold``.

:class:`TailEnergyModel` implements ``E(t)``, its derivative-free expected
value under an empirical gap distribution (used by the online MakeIdle
predictor), and the closed-form ``t_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..rrc.profiles import CarrierProfile

__all__ = ["TailEnergyModel", "compute_t_threshold"]


@dataclass(frozen=True)
class TailEnergyModel:
    """Piecewise tail-energy model ``E(t)`` for one carrier profile."""

    profile: CarrierProfile

    # -- the piecewise model -------------------------------------------------------

    def tail_energy(self, gap: float) -> float:
        """``E(t)``: energy spent idling between two packets ``gap`` seconds apart.

        Under the status-quo timers the radio stays in Active for up to
        ``t1`` seconds, then (if the carrier has a FACH-like state) in
        High-power idle for up to ``t2`` seconds, then demotes to Idle; if
        the demotion happened, the next packet additionally pays the
        promotion (the full ``E_switch`` round trip is charged here, as in
        the paper's formulation).
        """
        if gap < 0:
            raise ValueError(f"gap must be non-negative, got {gap}")
        p = self.profile
        if gap <= p.t1:
            return gap * p.power_active_w
        if gap <= p.t1 + p.t2:
            return p.t1 * p.power_active_w + (gap - p.t1) * p.power_high_idle_w
        full_tail = p.t1 * p.power_active_w + p.t2 * p.power_high_idle_w
        return full_tail + p.switch_energy_j

    def wait_energy(self, wait: float) -> float:
        """Energy spent keeping the radio on for ``wait`` seconds after a packet.

        This is the cost MakeIdle pays while it waits to gain confidence
        that the burst has ended; it follows the same Active→High-idle
        power schedule as :meth:`tail_energy` but never includes the switch
        cost (the caller adds ``E_switch`` explicitly when it decides to
        demote).
        """
        if wait < 0:
            raise ValueError(f"wait must be non-negative, got {wait}")
        p = self.profile
        if wait <= p.t1:
            return wait * p.power_active_w
        if wait <= p.t1 + p.t2:
            return p.t1 * p.power_active_w + (wait - p.t1) * p.power_high_idle_w
        return p.t1 * p.power_active_w + p.t2 * p.power_high_idle_w

    @property
    def switch_energy(self) -> float:
        """``E_switch``: demote-then-promote round-trip energy, joules."""
        return self.profile.switch_energy_j

    @property
    def full_tail_energy(self) -> float:
        """Energy of riding out both inactivity timers once (no switch cost)."""
        p = self.profile
        return p.t1 * p.power_active_w + p.t2 * p.power_high_idle_w

    # -- the offline-optimal threshold ------------------------------------------------

    @property
    def t_threshold(self) -> float:
        """The gap above which demoting immediately beats staying on.

        Solves ``E(t) = E_switch`` on the piecewise-linear model.  If the
        switch energy exceeds even the full tail (pathological profile),
        the threshold is the total timeout ``t1 + t2`` — switching then
        only wins when the status quo would have switched anyway.
        """
        p = self.profile
        e_switch = p.switch_energy_j
        if p.power_active_w > 0 and e_switch <= p.t1 * p.power_active_w:
            return e_switch / p.power_active_w
        remaining = e_switch - p.t1 * p.power_active_w
        if p.power_high_idle_w > 0 and remaining <= p.t2 * p.power_high_idle_w:
            return p.t1 + remaining / p.power_high_idle_w
        return p.t1 + p.t2

    def switch_beneficial(self, gap: float) -> bool:
        """Whether demoting immediately saves energy for a gap of ``gap`` seconds."""
        return gap > self.t_threshold

    # -- expectations under an empirical gap distribution -----------------------------

    def expected_no_switch_energy(self, gaps: Iterable[float]) -> float:
        """E[E_no_switch]: expected status-quo tail energy under observed gaps.

        This approximates the integral in the paper's Equation (1) with the
        empirical distribution of the recent inter-arrival times; gaps longer
        than ``t1 + t2`` contribute the full capped tail (the integral's
        upper limit).
        """
        gap_list = [g for g in gaps if g >= 0]
        if not gap_list:
            return 0.0
        cap = self.profile.t1 + self.profile.t2
        total = sum(self.wait_energy(min(g, cap)) for g in gap_list)
        return total / len(gap_list)

    def expected_wait_switch_energy(self, wait: float) -> float:
        """E[E_wait_switch]: cost of waiting ``wait`` seconds and then demoting."""
        return self.switch_energy + self.wait_energy(wait)

    def expected_gain(self, wait: float, gaps: Sequence[float]) -> float:
        """``f(t_wait)`` from the paper: expected saving of wait-then-switch.

        Positive values mean that waiting ``wait`` seconds and then issuing
        fast dormancy is expected to beat letting the inactivity timers run.
        """
        return self.expected_no_switch_energy(gaps) - self.expected_wait_switch_energy(wait)


def compute_t_threshold(profile: CarrierProfile) -> float:
    """Convenience wrapper returning :attr:`TailEnergyModel.t_threshold`."""
    return TailEnergyModel(profile).t_threshold
