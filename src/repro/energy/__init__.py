"""Energy substrate: tail-energy model, accounting, and model validation."""

from .accounting import (
    DataEnergyModel,
    EnergyAccountant,
    EnergyBreakdown,
    PacketTransfer,
)
from .battery import (
    GALAXY_NEXUS_BATTERY,
    NEXUS_S_BATTERY,
    Battery,
    DevicePowerBudget,
    LifetimeProjection,
    lifetime_extension,
    paper_lifetime_estimate,
    project_lifetime,
)
from .model import TailEnergyModel, compute_t_threshold
from .sensitivity import (
    DEFAULT_DORMANCY_FRACTIONS,
    SensitivityPoint,
    SensitivitySweep,
    dormancy_cost_sensitivity,
    inactivity_timer_sweep,
    switch_energy_sweep,
)
from .validation import (
    BulkTransferRun,
    ValidationResult,
    generate_bulk_transfer,
    reference_transfer_energy,
    run_validation,
)

__all__ = [
    "Battery",
    "BulkTransferRun",
    "DEFAULT_DORMANCY_FRACTIONS",
    "DevicePowerBudget",
    "GALAXY_NEXUS_BATTERY",
    "LifetimeProjection",
    "NEXUS_S_BATTERY",
    "SensitivityPoint",
    "SensitivitySweep",
    "dormancy_cost_sensitivity",
    "inactivity_timer_sweep",
    "lifetime_extension",
    "paper_lifetime_estimate",
    "project_lifetime",
    "switch_energy_sweep",
    "DataEnergyModel",
    "EnergyAccountant",
    "EnergyBreakdown",
    "PacketTransfer",
    "TailEnergyModel",
    "ValidationResult",
    "compute_t_threshold",
    "generate_bulk_transfer",
    "reference_transfer_energy",
    "run_validation",
]
