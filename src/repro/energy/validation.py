"""Energy-model validation: reproduces the Figure 8 error experiment.

Section 6.1 justifies the per-second energy estimator by comparing it with
direct power-monitor measurements of TCP bulk transfers of 10 kB, 100 kB and
1000 kB (five runs each), finding errors within ±10 %.  Figure 8 plots the
resulting error distribution for Verizon 3G and LTE.

We cannot measure a physical phone, so the "measured" side of the comparison
is produced by a *detailed reference model* that captures the effects the
simple per-second estimator ignores — per-burst energy-per-bit variation
(larger transfers are more efficient per bit, per Huang et al. [8]), ramp-up
time at the start of a transfer and protocol overhead — plus run-to-run
measurement noise.  The experiment then reports the relative error of the
library's :class:`~repro.energy.accounting.DataEnergyModel` estimate against
that reference, which reproduces the figure's shape: small (±10 %), roughly
zero-centred errors for both 3G and LTE.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..rrc.profiles import CarrierProfile
from ..traces.packet import Direction, Packet, PacketTrace
from .accounting import DataEnergyModel

__all__ = [
    "BulkTransferRun",
    "ValidationResult",
    "generate_bulk_transfer",
    "reference_transfer_energy",
    "run_validation",
]

#: Transfer sizes used in the paper's validation runs (bytes).
TRANSFER_SIZES: tuple[int, ...] = (10_000, 100_000, 1_000_000)


@dataclass(frozen=True)
class BulkTransferRun:
    """One bulk transfer: its trace, estimated and reference energies."""

    size_bytes: int
    uplink: bool
    estimated_j: float
    reference_j: float

    @property
    def relative_error(self) -> float:
        """(estimate - reference) / reference."""
        if self.reference_j == 0:
            return 0.0
        return (self.estimated_j - self.reference_j) / self.reference_j


@dataclass(frozen=True)
class ValidationResult:
    """Validation errors for one carrier profile."""

    profile_key: str
    runs: tuple[BulkTransferRun, ...]

    @property
    def errors(self) -> tuple[float, ...]:
        """Relative errors of all runs."""
        return tuple(run.relative_error for run in self.runs)

    @property
    def mean_error(self) -> float:
        """Mean signed relative error."""
        return sum(self.errors) / len(self.errors) if self.runs else 0.0

    @property
    def mean_absolute_error(self) -> float:
        """Mean absolute relative error (the paper reports this to be <= 10 %)."""
        if not self.runs:
            return 0.0
        return sum(abs(e) for e in self.errors) / len(self.errors)

    @property
    def max_absolute_error(self) -> float:
        """Worst-case absolute relative error across runs."""
        return max((abs(e) for e in self.errors), default=0.0)


def generate_bulk_transfer(
    size_bytes: int,
    uplink: bool,
    rate_mbps: float,
    seed: int = 0,
    mtu: int = 1400,
) -> PacketTrace:
    """Generate a TCP-bulk-transfer-like packet trace of ``size_bytes`` bytes.

    Packets of ``mtu`` bytes are spaced by their serialisation time at
    ``rate_mbps`` with small jitter, plus sparse ACKs in the reverse
    direction, approximating the steady-state behaviour of a TCP bulk flow.
    """
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    if rate_mbps <= 0:
        raise ValueError("rate_mbps must be positive")
    rng = random.Random(seed)
    direction = Direction.UPLINK if uplink else Direction.DOWNLINK
    ack_direction = direction.opposite()
    bytes_per_second = rate_mbps * 1e6 / 8.0
    packets: list[Packet] = []
    sent = 0
    time = 0.0
    packet_index = 0
    while sent < size_bytes:
        payload = min(mtu, size_bytes - sent)
        packets.append(Packet(time, payload, direction, 1, "bulk"))
        sent += payload
        packet_index += 1
        if packet_index % 2 == 0:
            packets.append(Packet(time + 0.002, 52, ack_direction, 1, "bulk"))
        gap = payload / bytes_per_second
        time += gap * rng.uniform(0.9, 1.1)
    return PacketTrace(packets, name=f"bulk_{size_bytes}")


def reference_transfer_energy(
    profile: CarrierProfile,
    trace: PacketTrace,
    seed: int = 0,
) -> float:
    """Detailed reference ("measured") energy of a bulk transfer.

    The reference model integrates direction-specific power over the actual
    transfer duration like the estimator, but additionally models:

    * a per-burst efficiency factor — energy per second falls slightly with
      transfer size (large transfers amortise scheduling overhead better);
    * a small protocol/radio-scheduling overhead proportional to the
      transfer energy;
    * multiplicative measurement noise of a few percent, as a power monitor
      would show run to run.
    """
    if not trace:
        return 0.0
    rng = random.Random(seed)
    total_bytes = trace.total_bytes
    duration = max(trace.duration, 1e-3)
    uplink_fraction = trace.uplink_bytes / total_bytes if total_bytes else 0.0
    mean_power = (
        uplink_fraction * profile.power_send_w
        + (1.0 - uplink_fraction) * profile.power_recv_w
    )
    # Efficiency: 1000 kB transfers draw ~6 % less power per second than
    # 10 kB ones (interpolated on the order of magnitude of the size).
    size_factor = 1.06 - 0.02 * max(0.0, min(3.0, (len(str(total_bytes)) - 5)))
    overhead_factor = 1.03
    noise = rng.uniform(0.96, 1.04)
    return mean_power * duration * size_factor * overhead_factor * noise


def run_validation(
    profile: CarrierProfile,
    runs_per_size: int = 5,
    seed: int = 0,
) -> ValidationResult:
    """Run the Figure 8 validation experiment for one carrier profile.

    For each transfer size and each of ``runs_per_size`` runs, generates an
    uplink and a downlink bulk transfer, estimates its energy with the
    library's :class:`DataEnergyModel` and compares against the detailed
    reference model.
    """
    estimator = DataEnergyModel(profile)
    runs: list[BulkTransferRun] = []
    for size in TRANSFER_SIZES:
        for run_index in range(runs_per_size):
            for uplink in (False, True):
                run_seed = seed + (size // 1000) * 31 + run_index * 7 + int(uplink)
                rate = 2.0 if uplink else 6.0
                trace = generate_bulk_transfer(size, uplink, rate, seed=run_seed)
                estimated, _ = estimator.total_data_energy(trace)
                reference = reference_transfer_energy(profile, trace, seed=run_seed)
                runs.append(
                    BulkTransferRun(
                        size_bytes=size,
                        uplink=uplink,
                        estimated_j=estimated,
                        reference_j=reference,
                    )
                )
    return ValidationResult(profile_key=profile.key, runs=tuple(runs))
