"""Result containers produced by the trace-driven simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..energy.accounting import EnergyBreakdown
from ..rrc.state_machine import StateInterval, SwitchEvent
from ..traces.packet import PacketTrace

__all__ = ["GapDecision", "SessionDelay", "SimulationResult"]


@dataclass(frozen=True, slots=True)
class GapDecision:
    """One inter-packet gap and whether the policy demoted the radio within it.

    These records feed the false-switch / missed-switch analysis of
    Figure 12: the ground truth is whether the gap exceeds the offline
    ``t_threshold``, and the policy's decision is whether it actually issued
    a fast-dormancy demotion before the next packet arrived.
    """

    time: float
    gap: float
    switched: bool


@dataclass(frozen=True, slots=True)
class SessionDelay:
    """Delay imposed on one session start that arrived while the radio was Idle."""

    arrival_time: float
    release_time: float
    flow_id: int

    @property
    def delay(self) -> float:
        """Seconds the session start was held back (0 when promoted immediately)."""
        return self.release_time - self.arrival_time


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Everything the metrics and figures need from one simulated run."""

    policy_name: str
    profile_key: str
    trace_name: str
    breakdown: EnergyBreakdown
    intervals: tuple[StateInterval, ...]
    switches: tuple[SwitchEvent, ...]
    effective_trace: PacketTrace
    gap_decisions: tuple[GapDecision, ...] = field(default=())
    session_delays: tuple[SessionDelay, ...] = field(default=())

    @property
    def total_energy_j(self) -> float:
        """Total energy of the run in joules."""
        return self.breakdown.total_j

    @property
    def switch_count(self) -> int:
        """Signalling-relevant state switches (promotions + demotions to Idle)."""
        return self.breakdown.switch_count

    @property
    def promotion_count(self) -> int:
        """Number of Idle→Active promotions."""
        return self.breakdown.promotions

    @property
    def delays(self) -> tuple[float, ...]:
        """Per-session delays in seconds (empty when MakeActive is not used)."""
        return tuple(d.delay for d in self.session_delays)

    @property
    def mean_delay(self) -> float:
        """Mean session delay in seconds (0 with no recorded sessions)."""
        values = self.delays
        if not values:
            return 0.0
        total = 0.0
        for value in values:  # strict left fold (DESIGN.md §2.1)
            total += value
        return total / len(values)

    @property
    def median_delay(self) -> float:
        """Median session delay in seconds (0 with no recorded sessions)."""
        values = sorted(self.delays)
        if not values:
            return 0.0
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2.0

    def energy_saved_vs(self, baseline: "SimulationResult") -> float:
        """Absolute energy saved relative to ``baseline`` (joules)."""
        return baseline.total_energy_j - self.total_energy_j

    def energy_saved_fraction(self, baseline: "SimulationResult") -> float:
        """Fractional energy saving relative to ``baseline`` (may be negative)."""
        if baseline.total_energy_j <= 0:
            return 0.0
        return self.energy_saved_vs(baseline) / baseline.total_energy_j

    def switches_normalized(self, baseline: "SimulationResult") -> float:
        """This run's switch count divided by the baseline's (>=0)."""
        if baseline.switch_count == 0:
            return float(self.switch_count) if self.switch_count else 1.0
        return self.switch_count / baseline.switch_count

    def energy_saved_per_switch(self, baseline: "SimulationResult") -> float:
        """Joules saved per state switch performed by this scheme."""
        if self.switch_count == 0:
            return 0.0
        return self.energy_saved_vs(baseline) / self.switch_count
