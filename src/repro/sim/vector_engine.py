"""Vectorized (numpy) cell kernel backend — byte-identical to the scalar kernel.

Selected with ``engine="vector"`` on a cell/metro spec, this backend runs
:meth:`~repro.basestation.cell.CellSimulator.run_shard` per-UE in *batch*:
one UE's whole packet stream is materialised into numpy arrays (arrival
times, sizes, uplink flags), and everything the scalar kernel computes per
heap event is computed as array expressions over the
:class:`~repro.rrc.vector_tables.VectorTable` constants — except at the
sparse "interesting" instants, which are replayed through the *real*
per-UE :class:`~repro.rrc.state_machine.RrcStateMachine` so every float
lands bit-for-bit where the scalar kernel would put it.

Why byte-identity holds
-----------------------

The scalar kernel's per-UE work for an *eligible* UE (see
:func:`constant_dormancy_wait`) decomposes into three independent pieces:

1. **The data-energy fold** depends only on the emitted packet sequence
   (timestamps, sizes, directions), never on RRC state.  It is a strict
   left fold of per-packet durations/energies, so ``np.add.accumulate``
   over elementwise float64 expressions — IEEE-754 doubles, the same ops
   in the same order — reproduces it bit-for-bit.

2. **The RRC machine** only does real work at *boundary* instants.
   Between boundaries every packet takes the
   :meth:`~repro.rrc.state_machine.RrcStateMachine.notify_activity` fast
   path (pure overwrites of ``now``/``last_activity``), which
   :meth:`~repro.rrc.state_machine.RrcStateMachine.fast_forward_activity`
   collapses into one step.  Boundary instants are computed as array
   comparisons over the same ``t + const`` sums the scalar kernel pushes
   into its heap:

   * a packet is a boundary when the previous gap fired a scheduled fast
     dormancy (``t[i] + wait <= t[i+1]``: the dormancy event pops before
     the arrival, equality included because DORMANCY sorts before
     ARRIVAL) or when it left the ``t1`` window (``t[i+1] >= t[i] + t1``);
   * an inactivity-timer expiry fires inside a gap when
     ``t[i] + idle_after <= t[i+1]`` (the self-deferring TIMER event pops
     at exactly the deadline; equality included, TIMER sorts before
     ARRIVAL) — and after the last packet, unconditionally at
     ``t_last + idle_after``;
   * a handover cuts the trailing events exactly as the heap does:
     the trailing dormancy still fires iff ``t_last + wait <= detach``
     (DORMANCY sorts before HANDOVER), the trailing timer iff
     ``t_last + idle_after < detach`` (HANDOVER sorts before TIMER), then
     the machine is closed with the same
     :meth:`~repro.rrc.state_machine.RrcStateMachine.finish` call.

   At each such instant the real machine methods run with the same
   arguments in the same order as the scalar kernel's handlers, so the
   fold-at-transition accounting — including the threshold-instant timer
   folds and their one-ulp ``(t+t1)+t2`` vs ``t+(t1+t2)`` corner — is
   reproduced exactly rather than re-derived.

3. **Cell-load bookkeeping** is order-sensitive but replayable: every
   load mutation the scalar kernel performs is keyed by its popped event
   ``(time, kind, ue_id)``.  Vector UEs derive their mutations
   analytically at the instants above; policies that need the scalar
   kernel run as one group with ``load_log=`` capturing theirs; a stable
   sort on ``(time, kind, ue_id)`` interleaves both streams in exact
   heap order (the heap breaks ties the same way, and equal full keys
   only occur within one UE's consecutive ops).  A fresh
   :class:`~repro.sim.engine.CellLoad` is driven through the merged ops,
   and the periodic :class:`~repro.sim.engine.LoadSample` chain is
   re-run on the same grid: sample *k+1* exists iff some real event pops
   after sample *k*, so the chain horizon is the latest real pop — for a
   vector UE that is ``t_last + max(wait, idle_after)``, or for a
   departed UE the latest of its handover instant, its last (stale)
   dormancy pop and the final pop of its self-deferring timer chain.

Eligibility and fallback
------------------------

A UE is vector-eligible when its policy keeps the base-class
``observe_packet`` and ``activation_delay`` hooks (no per-packet hooks,
no MakeActive buffering) and its ``dormancy_wait`` is a known constant —
the base class (never requests dormancy), a
:class:`~repro.core.baselines.FixedTimerPolicy`, or a prepared
:class:`~repro.core.baselines.PercentileIatPolicy`.  Ineligible UEs run
in one scalar kernel group alongside the vector UEs (their per-device
results are the scalar results by construction); a base-station policy
that does not unconditionally grant dormancy — or a missing numpy —
disables the vector path for the whole shard, since request arbitration
observes the live interleaved load.  The choice is automatic and
surfaced as ``CellShard.vector_devices`` / ``CellResult.vector_devices``.
"""

from __future__ import annotations

from operator import itemgetter
from typing import TYPE_CHECKING, Sequence

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via numpy_available()
    _np = None

from ..core.baselines import FixedTimerPolicy, PercentileIatPolicy
from ..core.policy import RadioPolicy
from ..rrc.state_machine import RrcStateMachine
from ..rrc.states import RadioState
from ..rrc.vector_tables import VectorTable, vector_table
from ..traces.packet import Direction, PacketTrace
from .engine import CellLoad, LoadSample, StreamOrderError, UeContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..basestation.cell import CellShard, CellSimulator, DeviceSpec

__all__ = [
    "constant_dormancy_wait",
    "numpy_available",
    "run_shard_vector",
    "station_always_grants",
]

#: Event-kind tie-break priorities, mirroring :class:`~repro.sim.engine.EventKind`
#: (plain ints: these key the replayed load-op ordering).
_RELEASE = 0
_DORMANCY = 1
_HANDOVER = 2
_TIMER = 3
_ARRIVAL = 4

#: One load mutation: ``(event_time, event_kind, ue_id, op)`` with ``op``
#: one of ``"act"`` / ``"deact"`` / ``"switch"`` — the same record the
#: scalar kernel appends to ``load_log``.
_LoadOp = tuple[float, int, int, str]

#: Heap order over merged load ops: ``(time, kind, ue_id)``, stable for
#: equal keys so each UE's generation order survives the global sort.
_OP_KEY = itemgetter(0, 1, 2)


def numpy_available() -> bool:
    """Whether the numpy the vector backend needs is importable."""
    return _np is not None


def station_always_grants(policy: object) -> bool:
    """Whether a base-station dormancy policy unconditionally grants.

    Mirrors the kernel's station fast-path declaration
    (:class:`~repro.basestation.cell._NetworkStation`): the flag must be
    set *and* ``decide`` must really be the accept-all implementation.
    Only then are per-UE outcomes independent of the live cell load, the
    precondition for running UEs out of event order.
    """
    from ..basestation.policies import AcceptAllDormancy

    return (
        bool(getattr(policy, "always_grants", False))
        and type(policy).decide is AcceptAllDormancy.decide
    )


def constant_dormancy_wait(
    policy: RadioPolicy,
) -> tuple[bool, float | None]:
    """Classify a device policy for the vector path.

    Returns ``(eligible, wait)``: ``eligible`` is ``True`` when the
    policy has no per-packet hooks (base-class ``observe_packet`` and
    ``activation_delay`` — so it never buffers sessions either) and its
    ``dormancy_wait`` is a known time-independent constant; ``wait`` is
    that constant (``None`` = never requests fast dormancy).  Call this
    *after* ``policy.prepare()`` — trace-trained timeouts are fixed
    there.  Anything unrecognised falls back to the scalar kernel.
    """
    ptype = type(policy)
    if ptype.observe_packet is not RadioPolicy.observe_packet:
        return False, None
    if ptype.activation_delay is not RadioPolicy.activation_delay:
        return False, None
    wait_fn = ptype.dormancy_wait
    if wait_fn is RadioPolicy.dormancy_wait:
        return True, None
    if wait_fn is FixedTimerPolicy.dormancy_wait and isinstance(
        policy, FixedTimerPolicy
    ):
        return True, policy.timeout
    if wait_fn is PercentileIatPolicy.dormancy_wait and isinstance(
        policy, PercentileIatPolicy
    ):
        return True, policy.timeout
    return False, None


def _materialize(trace, ue_id: int):
    """One UE's packet stream as ``(times, sizes, uplink)`` float64/bool arrays.

    Walks the same block protocol the scalar kernel's arrival source
    walks, validates time order with the scalar kernel's exact rule and
    error text, and keeps Python-float fidelity (float64 round-trips
    exactly).
    """
    uplink = Direction.UPLINK  # hoisted: one load per packet, not three
    parts_t: list[list[float]] = []
    parts_size: list[list[int]] = []
    parts_up: list[list[bool]] = []
    blocks = getattr(trace, "packet_blocks", None)
    if blocks is not None:
        for block in blocks():
            if not block:
                continue
            parts_t.append([p.timestamp for p in block])
            parts_size.append([p.size for p in block])
            parts_up.append([p.direction is uplink for p in block])
    else:
        block = list(trace)
        if block:
            parts_t.append([p.timestamp for p in block])
            parts_size.append([p.size for p in block])
            parts_up.append([p.direction is uplink for p in block])
    if not parts_t:
        empty = _np.empty(0, dtype=_np.float64)
        return empty, empty, _np.empty(0, dtype=bool)
    if len(parts_t) == 1:
        t = _np.asarray(parts_t[0], dtype=_np.float64)
        sizes = _np.asarray(parts_size[0], dtype=_np.float64)
        up = _np.asarray(parts_up[0], dtype=bool)
    else:
        t = _np.concatenate(
            [_np.asarray(p, dtype=_np.float64) for p in parts_t]
        )
        sizes = _np.concatenate(
            [_np.asarray(p, dtype=_np.float64) for p in parts_size]
        )
        up = _np.concatenate([_np.asarray(p, dtype=bool) for p in parts_up])
    if t[0] < 0.0:
        raise StreamOrderError(
            f"packet stream for UE {ue_id} is not time-ordered: "
            f"{t[0]} after 0.0"
        )
    bad = _np.flatnonzero(t[1:] < t[:-1])
    if bad.size:
        i = int(bad[0])
        raise StreamOrderError(
            f"packet stream for UE {ue_id} is not time-ordered: "
            f"{float(t[i + 1])} after {float(t[i])}"
        )
    return t, sizes, up


def _data_fold(
    t, sizes, up, vt: VectorTable
) -> tuple[float, float]:
    """The emitted-packet data-energy fold as array expressions.

    Elementwise float64 mirrors of the scalar kernel's inlined
    ``account_transfer`` arithmetic (same divisions, comparisons and
    products), folded with ``np.add.accumulate`` — a strict left fold,
    unlike pairwise ``np.sum`` — so the running sums accumulate in the
    scalar kernel's order.  Returns ``(data_j, data_time_s)``.
    """
    rates = _np.where(up, vt.uplink_rate, vt.downlink_rate)
    ser = sizes / rates
    ser = _np.where(ser < vt.min_packet_time, vt.min_packet_time, ser)
    dur = _np.empty_like(ser)
    dur[0] = ser[0]
    if ser.shape[0] > 1:
        gaps = t[1:] - t[:-1]
        dur[1:] = _np.where(gaps <= vt.burst_gap, gaps, ser[1:])
    energy = dur * _np.where(up, vt.send_power_w, vt.recv_power_w)
    data_time_s = float(_np.add.accumulate(dur)[-1])
    data_j = float(_np.add.accumulate(energy)[-1])
    return data_j, data_time_s


def _final_timer_pop(
    tl: Sequence[float], idle_after: float, detach: float
) -> float | None:
    """Last pop of a departed UE's self-deferring inactivity-timer chain.

    Walks the TIMER event chain exactly as the heap would: the event
    pushed at the first arrival pops at its scheduled time; a pop before
    the current deadline (last arrival strictly before the pop, plus
    ``idle_after``) re-pushes at the deadline; a pop at the deadline
    fires and the next arrival pushes afresh.  The first pop at-or-after
    ``detach`` hits the departed guard and ends the chain — its time is
    returned because it is still a *real* event extending the load
    sample horizon.  Returns ``None`` when the chain ended (fired with
    no further arrivals) before the handover.
    """
    pop = tl[0] + idle_after
    j = 1
    n = len(tl)
    while True:
        while j < n and tl[j] < pop:
            j += 1
        if pop >= detach:  # HANDOVER (kind 2) pops before TIMER (kind 3)
            return pop
        target = tl[j - 1] + idle_after
        if pop < target:
            pop = target  # stale: defer to the moved deadline
            continue
        # Fires before the handover; the next arrival re-arms the chain.
        if j < n:
            pop = tl[j] + idle_after
            j += 1
            continue
        return None


class _VectorUeOutcome:
    """What one vector-path UE replay produced."""

    __slots__ = (
        "machine",
        "data_j",
        "data_time_s",
        "packets",
        "requests",
        "last_effective",
        "horizon",
        "departed",
    )

    def __init__(self, machine, data_j, data_time_s, packets, requests,
                 last_effective, horizon, departed):
        self.machine = machine
        self.data_j = data_j
        self.data_time_s = data_time_s
        self.packets = packets
        self.requests = requests
        self.last_effective = last_effective
        self.horizon = horizon
        self.departed = departed


def _run_vector_ue(
    spec: "DeviceSpec",
    profile,
    vt: VectorTable,
    wait: float | None,
    ops: list[_LoadOp],
) -> _VectorUeOutcome:
    """Replay one eligible UE: batch folds + sparse real-machine calls."""
    ue_id = spec.device_id
    detach = spec.detach_at
    machine = RrcStateMachine(profile, start_time=spec.attach_at,
                              fold_history=True)
    t, sizes, up = _materialize(spec.trace, ue_id)
    n = int(t.shape[0])
    if n == 0:
        horizon = None
        if detach is not None:
            machine.finish(detach)
            horizon = detach
        return _VectorUeOutcome(machine, 0.0, 0.0, 0, 0, None, horizon,
                                detach is not None)
    tl = t.tolist()  # Python floats for machine calls and op records
    if detach is not None and tl[-1] >= detach:
        # The scalar kernel aborts on this too: the arrival pops after
        # the handover closed the machine.
        raise RuntimeError(
            f"UE {ue_id}: packet at {tl[-1]} is not strictly before its "
            f"departure at {detach} (handover contract)"
        )

    data_j, data_time_s = _data_fold(t, sizes, up, vt)

    t1 = vt.t1
    idle_after = vt.idle_after
    idle_state = RadioState.IDLE
    prev = t[:-1]
    nxt = t[1:]
    # Per-gap fired events and the boundary mask (see module docstring).
    timer_fires = (prev + idle_after) <= nxt
    if wait is not None:
        dorm_fires = (prev + wait) <= nxt
        boundary = dorm_fires | (nxt >= (prev + t1))
    else:
        dorm_fires = None
        boundary = nxt >= (prev + t1)
    bps = [0]
    bps.extend((_np.flatnonzero(boundary) + 1).tolist())

    requests = 0
    was_active = False

    def do_dormancy(at: float, sched_t: float) -> None:
        nonlocal requests, was_active
        requests += 1  # always-grants station: granted == requests
        # A zero-effective-wait dormancy (``at == sched_t``) pops right
        # behind the arrival that scheduled it, after the kind-1 slot of
        # its timestamp, so its ops carry the arrival kind — the same
        # remap the scalar kernel's load log applies (see engine.run).
        log_kind = _ARRIVAL if at == sched_t else _DORMANCY
        if machine.request_fast_dormancy(at):
            ops.append((at, log_kind, ue_id, "switch"))
        active = machine.state is not idle_state
        if active != was_active:
            ops.append((at, log_kind, ue_id, "act" if active else "deact"))
            was_active = active

    def do_timer(at: float) -> None:
        nonlocal was_active
        machine.advance_to(at)
        active = machine.state is not idle_state
        if active != was_active:
            ops.append((at, _TIMER, ue_id, "act" if active else "deact"))
            was_active = active

    # Bound methods and list handles hoisted out of the boundary loop:
    # the loop body runs once per boundary packet and these lookups are
    # its only non-arithmetic overhead.
    fast_forward = machine.fast_forward_activity
    notify = machine.notify_activity
    append_op = ops.append
    for pos in range(len(bps)):
        b = bps[pos]
        if pos:
            prev_b = bps[pos - 1]
            if b - 1 > prev_b:
                # Packets strictly inside the t1 window of their
                # predecessor: the fast path's pure overwrites, collapsed.
                fast_forward(tl[b - 1])
            g = b - 1  # the gap that made packet b a boundary
            gt = tl[g]
            if dorm_fires is not None and dorm_fires[g]:
                at = gt + wait
                if timer_fires[g]:
                    tt = gt + idle_after
                    # Heap order of the two fired events: (time, kind),
                    # DORMANCY (1) before TIMER (3) on equal times.
                    if tt < at:
                        do_timer(tt)
                        do_dormancy(at, gt)
                    else:
                        do_dormancy(at, gt)
                        do_timer(tt)
                else:
                    do_dormancy(at, gt)
            elif timer_fires[g]:
                do_timer(gt + idle_after)
        tb = tl[b]
        if notify(tb):
            append_op((tb, _ARRIVAL, ue_id, "switch"))
        if not was_active:
            append_op((tb, _ARRIVAL, ue_id, "act"))
            was_active = True

    last = n - 1
    if last > bps[-1]:
        machine.fast_forward_activity(tl[last])
    t_last = tl[last]

    # Trailing events after the last packet: the scheduled dormancy and
    # the final timer-chain pop, cut by a handover exactly as the heap
    # tie-breaks them (see module docstring).
    trailing: list[tuple[float, int]] = []
    if wait is not None:
        at = t_last + wait
        if detach is None or at <= detach:
            trailing.append((at, _DORMANCY))
    tt = t_last + idle_after
    if detach is None or tt < detach:
        trailing.append((tt, _TIMER))
    if len(trailing) == 2:
        trailing.sort()
    for etime, ekind in trailing:
        if ekind == _DORMANCY:
            do_dormancy(etime, t_last)
        else:
            do_timer(etime)

    if detach is not None:
        machine.finish(detach)
        if was_active:
            ops.append((detach, _HANDOVER, ue_id, "deact"))
            was_active = False
        horizon = detach
        tau = _final_timer_pop(tl, idle_after, detach)
        if tau is not None and tau > horizon:
            horizon = tau
        if wait is not None and t_last + wait > horizon:
            horizon = t_last + wait
    else:
        horizon = t_last + idle_after
        if wait is not None and t_last + wait > horizon:
            horizon = t_last + wait

    return _VectorUeOutcome(machine, data_j, data_time_s, n, requests,
                            t_last, horizon, detach is not None)


def _rebuild_load_and_samples(
    ops: list[_LoadOp],
    total_devices: int,
    window_s: float,
    sample_interval_s: float | None,
    any_events: bool,
    horizon: float | None,
) -> tuple[CellLoad, tuple[LoadSample, ...]]:
    """Drive a fresh :class:`CellLoad` through the merged op stream.

    ``ops`` must already be in global heap order.  Sample instants
    interleave exactly as SAMPLE events do: every op at ``time <= s``
    precedes the sample at ``s`` (op kinds all sort before SAMPLE), the
    grid accumulates ``s + interval`` left-to-right, the first sample
    exists iff the heap was primed with any real event, and sample
    ``k+1`` exists iff a real event pops after sample ``k`` (``horizon``
    is the latest real pop).
    """
    load = CellLoad(total_devices=total_devices, window_s=window_s)
    samples: list[LoadSample] = []
    i = 0
    count = len(ops)
    if sample_interval_s is not None and any_events:
        s = sample_interval_s
        while True:
            while i < count and ops[i][0] <= s:
                op = ops[i]
                kind = op[3]
                if kind == "act":
                    load.activate()
                elif kind == "deact":
                    load.deactivate()
                else:
                    load.note_switch(op[0])
                i += 1
            samples.append(
                LoadSample(
                    time=s,
                    active_devices=load.active_devices,
                    switches_last_minute=load.switches_within_window(s),
                )
            )
            if horizon is not None and horizon > s:
                s = s + sample_interval_s
            else:
                break
    while i < count:
        op = ops[i]
        kind = op[3]
        if kind == "act":
            load.activate()
        elif kind == "deact":
            load.deactivate()
        else:
            load.note_switch(op[0])
        i += 1
    return load, tuple(samples)


def run_shard_vector(
    simulator: "CellSimulator", devices: Sequence["DeviceSpec"]
) -> "CellShard":
    """Vector-backend implementation of :meth:`CellSimulator.run_shard`.

    Produces a :class:`~repro.basestation.cell.CellShard` byte-identical
    to the scalar shard run over the same devices: eligible UEs take the
    batch path, the rest run in one scalar kernel group, and the shared
    cell-load state (ordered switch timeline, running peak, sample
    series) is reconstructed by replaying both groups' load mutations in
    exact heap order.  Callers must have checked
    :func:`station_always_grants` and :func:`numpy_available`.
    """
    from ..basestation.cell import (
        _LOAD_WINDOW_S,
        _NetworkStation,
        _shard_device_state,
        CellShard,
        ShardDeviceState,
    )

    if _np is None:  # pragma: no cover - callers gate on numpy_available()
        raise RuntimeError("engine='vector' requires numpy")
    if not devices:
        raise ValueError("at least one device is required")
    ids = [d.device_id for d in devices]
    if len(set(ids)) != len(ids):
        raise ValueError("device ids must be unique")

    engine = simulator.engine
    profile = engine.profile
    dormancy_policy = simulator.dormancy_policy
    sample_interval_s = simulator.sample_interval_s
    dormancy_policy.reset()

    # Identical per-device policy lifecycle to the scalar shard run.
    eligible: list["DeviceSpec"] = []
    waits: dict[int, float | None] = {}
    fallback: list["DeviceSpec"] = []
    for spec in devices:
        if isinstance(spec.trace, PacketTrace):
            spec.policy.prepare(spec.trace, profile)
        elif getattr(spec.policy, "requires_trace", False):
            raise ValueError(
                f"device {spec.device_id}: policy {spec.policy.name!r} "
                "requires the full trace in prepare() and cannot run "
                "on a lazy packet source; materialise the trace "
                "(PacketTrace) for this device instead"
            )
        else:
            # Streaming path: profile-only binding (see RadioPolicy.bind_profile).
            spec.policy.bind_profile(profile)
        spec.policy.reset()
        ok, wait = constant_dormancy_wait(spec.policy)
        if ok:
            eligible.append(spec)
            waits[spec.device_id] = wait
        else:
            fallback.append(spec)

    ops: list[_LoadOp] = []
    states: dict[int, object] = {}
    horizons: list[float] = []
    last_emitted: float | None = None
    max_now = 0.0

    # Scalar kernel group: hook-bearing policies keep the event-driven
    # path, with their load mutations captured for the global replay.
    fb_outcome = None
    if fallback:
        contexts: dict[int, UeContext] = {}
        streams: dict[int, object] = {}
        fb_handovers: dict[int, float] = {}
        for spec in fallback:
            contexts[spec.device_id] = UeContext(
                spec.device_id, profile, spec.policy, collect=False,
                start_time=spec.attach_at,
            )
            streams[spec.device_id] = spec.trace
            if spec.detach_at is not None:
                fb_handovers[spec.device_id] = spec.detach_at
        fb_outcome = engine.run(
            streams,
            contexts,
            station=_NetworkStation(dormancy_policy),
            load=CellLoad(total_devices=len(fallback),
                          window_s=_LOAD_WINDOW_S),
            sample_interval_s=None,
            finish=False,
            handovers=fb_handovers or None,
            load_log=ops,
        )
        for spec in fallback:
            states[spec.device_id] = _shard_device_state(
                spec, contexts[spec.device_id]
            )
        last_emitted = fb_outcome.last_emitted
        max_now = fb_outcome.end_time
        if fb_outcome.last_event_time is not None:
            horizons.append(fb_outcome.last_event_time)

    vt = vector_table(profile, engine.accountant.data_model)
    any_packets = False
    for spec in eligible:
        outcome = _run_vector_ue(
            spec, profile, vt, waits[spec.device_id], ops
        )
        machine = outcome.machine
        (active_s, high_idle_s, idle_s, switch_j, promotions,
         timer_demotions, fast_demotions) = machine.folded_state_totals()
        states[spec.device_id] = ShardDeviceState(
            device_id=spec.device_id,
            policy_name=spec.policy.name,
            data_j=outcome.data_j,
            data_time_s=outcome.data_time_s,
            active_time_s=active_s,
            high_idle_time_s=high_idle_s,
            idle_time_s=idle_s,
            switch_j=switch_j,
            promotions=promotions,
            timer_demotions=timer_demotions,
            fast_demotions=fast_demotions,
            open_state=machine.state,
            open_since=machine.segment_start,
            last_activity=machine.last_activity,
            packets=outcome.packets,
            dormancy_requests=outcome.requests,
            dormancy_granted=outcome.requests,
            dormancy_denied=0,
            session_delays=(),
            delayed_sessions=0,
            total_session_delay_s=0.0,
            cohort=spec.cohort,
            closed=outcome.departed,
        )
        if outcome.packets:
            any_packets = True
            if last_emitted is None or outcome.last_effective > last_emitted:
                last_emitted = outcome.last_effective
        if machine.now > max_now:
            max_now = machine.now
        if outcome.horizon is not None:
            horizons.append(outcome.horizon)

    # Global load replay: merge both groups' mutations into heap order.
    ops.sort(key=_OP_KEY)
    any_events = (
        any_packets
        or any(spec.detach_at is not None for spec in devices)
        or (fb_outcome is not None
            and fb_outcome.last_event_time is not None)
    )
    horizon = max(horizons) if horizons else None
    load, samples = _rebuild_load_and_samples(
        ops,
        total_devices=len(devices),
        window_s=_LOAD_WINDOW_S,
        sample_interval_s=sample_interval_s,
        any_events=any_events,
        horizon=horizon,
    )

    return CellShard(
        dormancy_policy_name=dormancy_policy.name,
        profile=profile,
        trailing_time=engine.trailing_time,
        devices=tuple(states[spec.device_id] for spec in devices),
        last_emitted=last_emitted,
        max_now=max_now,
        load=load,
        load_samples=samples,
        sample_interval_s=sample_interval_s,
        vector_devices=len(eligible),
    )
