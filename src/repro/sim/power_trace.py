"""Power-versus-time reconstruction of a simulated run (Figure 3).

Figure 3 of the paper shows the instantaneous power drawn by the phone over
one radio state-switch cycle: a burst of data at full transfer power, the
Active (DCH / RRC_CONNECTED) tail at ``P_t1``, the High-power-idle (FACH)
tail at ``P_t2`` where the carrier has one, and finally the near-zero Idle
level.  This module converts a simulated radio timeline plus the effective
packet trace into a step function of power over time, which the Figure 3
benchmark samples and renders as a text plot.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Sequence

from ..energy.accounting import DataEnergyModel
from ..rrc.profiles import CarrierProfile
from ..rrc.state_machine import StateInterval
from ..traces.packet import PacketTrace

__all__ = ["PowerSample", "PowerTrace", "build_power_trace"]


@dataclass(frozen=True, slots=True)
class PowerSample:
    """Power draw over one homogeneous span of time."""

    start: float
    end: float
    power_w: float
    label: str

    @property
    def duration(self) -> float:
        """Length of the span in seconds."""
        return self.end - self.start

    @property
    def energy_j(self) -> float:
        """Energy of the span in joules."""
        return self.duration * self.power_w


class PowerTrace:
    """A piecewise-constant power profile with sampling helpers."""

    def __init__(self, samples: Sequence[PowerSample]) -> None:
        self._samples = tuple(sorted(samples, key=lambda s: s.start))
        self._starts = tuple(s.start for s in self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self):
        return iter(self._samples)

    @property
    def samples(self) -> tuple[PowerSample, ...]:
        """All spans, ordered by start time."""
        return self._samples

    @property
    def duration(self) -> float:
        """Total span of the profile in seconds."""
        if not self._samples:
            return 0.0
        return self._samples[-1].end - self._samples[0].start

    @property
    def total_energy_j(self) -> float:
        """Integral of power over the profile, joules."""
        total = 0.0
        for sample in self._samples:  # strict left fold (DESIGN.md §2.1)
            total += sample.energy_j
        return total

    def power_at(self, time: float) -> float:
        """Instantaneous power at ``time`` (0 outside the profile)."""
        if not self._samples:
            return 0.0
        index = bisect_right(self._starts, time) - 1
        if index < 0:
            return 0.0
        sample = self._samples[index]
        if time > sample.end:
            return 0.0
        return sample.power_w

    def sample_grid(self, step: float) -> list[tuple[float, float]]:
        """Sample the profile every ``step`` seconds as ``(time, power)`` pairs."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if not self._samples:
            return []
        start = self._samples[0].start
        points: list[tuple[float, float]] = []
        time = start
        end = self._samples[-1].end
        while time <= end:
            points.append((time, self.power_at(time)))
            time += step
        return points


def build_power_trace(
    profile: CarrierProfile,
    intervals: Sequence[StateInterval],
    trace: PacketTrace,
    data_model: DataEnergyModel | None = None,
) -> PowerTrace:
    """Build the power step function of one simulated run.

    Each state interval contributes a span at that state's tail power; the
    spans covered by packet transfers are overridden with the direction-
    specific transfer power.  Transfers are placed immediately before their
    packet's timestamp (the same convention the accounting uses) and clipped
    to the interval they fall into.
    """
    model = data_model or DataEnergyModel(profile)
    samples: list[PowerSample] = []

    transfer_spans: list[tuple[float, float, float]] = []
    for transfer in model.packet_transfers(trace):
        start = max(0.0, transfer.timestamp - transfer.duration_s)
        power = profile.transfer_power_w(transfer.uplink)
        transfer_spans.append((start, transfer.timestamp, power))
    transfer_spans.sort()

    for interval in intervals:
        base_power = profile.state_power_w(interval.state)
        cursor = interval.start
        for t_start, t_end, t_power in transfer_spans:
            if t_end <= interval.start or t_start >= interval.end:
                continue
            clipped_start = max(t_start, interval.start)
            clipped_end = min(t_end, interval.end)
            if clipped_start > cursor:
                samples.append(
                    PowerSample(cursor, clipped_start, base_power,
                                interval.state.value)
                )
            if clipped_end > clipped_start:
                samples.append(
                    PowerSample(clipped_start, clipped_end, t_power, "data")
                )
                cursor = max(cursor, clipped_end)
        if interval.end > cursor:
            samples.append(
                PowerSample(cursor, interval.end, base_power, interval.state.value)
            )
    return PowerTrace(samples)
